"""Experiment harness: one entry point per table/figure of the paper.

The expensive part — simulating every (benchmark, configuration) pair
over several seeds — is factored into :func:`run_config_matrix`; each
``figN_*`` function is a cheap projection of that matrix into exactly
the rows/series the corresponding paper figure reports.

Configurations follow the paper's naming: **B** requester-wins,
**P** PowerTM, **C** CLEAR over requester-wins, **W** CLEAR over
PowerTM (Fig. 8-13 group bars as B P C W).
"""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortCategory
from repro.analysis.report import geometric_mean
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.engine import ExperimentEngine, RunSpec
from repro.sim.runner import AggregateResult, select_best_threshold
from repro.workloads import ALL_NAMES, make_workload

CONFIG_LETTERS = ("B", "P", "C", "W")


class ExperimentSettings:
    """Scale knobs for the experiment suite.

    ``paper()`` approximates the paper's methodology (32 cores, 10
    seeds, trimmed mean removing 3, retry-threshold sweep);
    ``quick()`` is the CI-sized variant used by the benchmark harness
    defaults so every figure regenerates in minutes on a laptop.
    """

    def __init__(self, benchmarks=ALL_NAMES, num_cores=8, ops_per_thread=12,
                 seeds=(1, 2, 3), trim=0, retry_threshold=5, retry_sweep=False,
                 sweep_thresholds=(1, 2, 4, 6, 8, 10), config_overrides=None):
        self.benchmarks = tuple(benchmarks)
        self.num_cores = num_cores
        self.ops_per_thread = ops_per_thread
        self.seeds = tuple(seeds)
        self.trim = trim
        self.retry_threshold = retry_threshold
        self.retry_sweep = retry_sweep
        self.sweep_thresholds = tuple(sweep_thresholds)
        # Extra SimConfig fields applied to every configuration — how
        # chaos/oracle runs reuse the whole harness (e.g.
        # {"fault_spurious_rate": 0.05, "oracle": "online"}).
        self.config_overrides = dict(config_overrides or {})

    @classmethod
    def quick(cls, benchmarks=ALL_NAMES):
        """CI-sized settings: 8 cores, 3 seeds, fixed threshold."""
        return cls(benchmarks=benchmarks)

    @classmethod
    def micro(cls, benchmarks=ALL_NAMES):
        """Smallest full-matrix scale: 4 cores, 2 seeds, tiny regions.

        Runs all 19 benchmarks across B/P/C/W in seconds; used by the
        conflict-equivalence suite (whose goldens are generated at this
        scale) and anywhere a complete but cheap matrix is needed.
        """
        return cls(benchmarks=benchmarks, num_cores=4, ops_per_thread=6,
                   seeds=(1, 2), trim=0)

    @classmethod
    def paper(cls, benchmarks=ALL_NAMES):
        """The paper's methodology: 32 cores, 10 seeds, trimmed mean, sweep."""
        return cls(
            benchmarks=benchmarks,
            num_cores=32,
            ops_per_thread=30,
            seeds=tuple(range(1, 11)),
            trim=3,
            retry_sweep=True,
        )

    def config_for(self, letter):
        """SimConfig for a configuration (legacy letter or design name)."""
        return SimConfig.for_design(
            design_name(letter), num_cores=self.num_cores,
            retry_threshold=self.retry_threshold,
            **self.config_overrides
        )

    def workload_factory(self, name):
        """Factory building a fresh scaled workload instance."""
        return lambda: make_workload(name, ops_per_thread=self.ops_per_thread)

    def cell_thresholds(self):
        """Retry thresholds simulated per cell (one unless sweeping)."""
        if self.retry_sweep:
            return self.sweep_thresholds
        return (self.retry_threshold,)

    def expand_specs(self):
        """The flat engine job list covering the whole matrix.

        Ordered benchmark-major, then configuration letter, then retry
        threshold, then seed — the order :func:`run_config_matrix`
        regroups results in.
        """
        return [
            RunSpec(
                workload=name,
                config=self.config_for(letter).replaced(
                    retry_threshold=threshold
                ),
                seed=seed,
                ops_per_thread=self.ops_per_thread,
            )
            for name in self.benchmarks
            for letter in CONFIG_LETTERS
            for threshold in self.cell_thresholds()
            for seed in self.seeds
        ]


def run_config_matrix(settings=None, progress=None, *, jobs=1,
                      cache_dir=None, engine=None, engine_progress=None,
                      cell_timeout=None, allow_partial=False, journal=None):
    """Simulate every (benchmark, configuration) pair.

    Returns {benchmark: {letter: AggregateResult}}. With
    ``settings.retry_sweep`` the per-application best retry threshold is
    selected exactly as in the paper ("best of 1 to 10 retries").

    The matrix is expanded into independent (workload, config, seed)
    cells and dispatched through the experiment engine: ``jobs`` worker
    processes (1 = strictly serial, ``None`` = all cores) with optional
    on-disk memoization under ``cache_dir``. Pass a pre-built
    ``engine`` to share a cache/pool across calls; ``engine_progress``
    receives per-cell :class:`~repro.sim.engine.ProgressEvent` updates,
    while ``progress(name, letter, aggregate)`` still fires once per
    aggregated matrix cell.

    ``cell_timeout`` bounds each cell's wall-clock time (see
    :class:`~repro.sim.engine.ExperimentEngine`). With
    ``allow_partial=True`` the return value becomes ``(matrix,
    report)``: failed cells no longer raise; instead any benchmark
    missing data for *any* configuration is dropped from the matrix
    (every figure normalizes across B/P/C/W, so a partial row would be
    misleading) and the :class:`~repro.sim.engine.SweepReport` says
    exactly what failed and why.

    ``journal`` (a job-folder path or
    :class:`~repro.sim.journal.SweepJournal`) makes the sweep
    crash-safe: finished cells are durably logged and a resumed call
    replays them with exactly-once execution.
    """
    settings = settings or ExperimentSettings.quick()
    if engine is None:
        engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir,
                                  progress=engine_progress,
                                  cell_timeout=cell_timeout)
    specs = settings.expand_specs()
    report = None
    if allow_partial:
        report = engine.run_specs_report(specs, journal=journal)
        results = report.results
    else:
        results = engine.run_specs(specs, journal=journal)

    thresholds = settings.cell_thresholds()
    seeds_per_threshold = len(settings.seeds)
    matrix = {}
    offset = 0
    for name in settings.benchmarks:
        per_config = {}
        for letter in CONFIG_LETTERS:
            aggregates = {}
            for threshold in thresholds:
                runs = results[offset:offset + seeds_per_threshold]
                offset += seeds_per_threshold
                if any(run is None for run in runs):
                    continue  # this threshold lost a seed to a failure
                aggregates[threshold] = AggregateResult(
                    runs[0].workload_name, runs[0].config, runs,
                    settings.trim,
                )
            if not aggregates:
                continue
            aggregate, _ = select_best_threshold(aggregates)
            per_config[letter] = aggregate
            if progress is not None:
                progress(name, letter, aggregate)
        if len(per_config) == len(CONFIG_LETTERS):
            matrix[name] = per_config
    if allow_partial:
        return matrix, report
    return matrix


# ---------------------------------------------------------------------------
# Figure projections
# ---------------------------------------------------------------------------

def fig1_retry_immutability(matrix):
    """Fig. 1: ratio of retrying ARs with a small, unchanged footprint.

    Measured on the baseline (B) runs, as in the paper's motivation.
    Returns {benchmark: ratio} plus an ``average`` entry.
    """
    ratios = {
        name: per_config["B"].first_retry_immutable_ratio
        for name, per_config in matrix.items()
    }
    observed = [ratio for ratio in ratios.values()]
    ratios["average"] = sum(observed) / len(observed) if observed else 0.0
    return ratios


def fig8_execution_time(matrix):
    """Fig. 8: execution time normalized to B, plus discovery overlay.

    Returns {benchmark: {letter: normalized_time}} with a ``geomean``
    pseudo-benchmark, and a parallel {benchmark: {letter:
    discovery_fraction}} map for the "time running aborted in
    discovery" overlay.
    """
    normalized = {}
    discovery = {}
    for name, per_config in matrix.items():
        base = per_config["B"].cycles or 1.0
        normalized[name] = {
            letter: per_config[letter].cycles / base for letter in CONFIG_LETTERS
        }
        discovery[name] = {
            letter: per_config[letter].discovery_time_fraction
            for letter in CONFIG_LETTERS
        }
    normalized["geomean"] = {
        letter: geometric_mean(
            [normalized[name][letter] for name in matrix]
        )
        for letter in CONFIG_LETTERS
    }
    return normalized, discovery


def fig9_aborts_per_commit(matrix):
    """Fig. 9: aborts per committed transaction, plus an average row."""
    rows = {
        name: {
            letter: per_config[letter].aborts_per_commit
            for letter in CONFIG_LETTERS
        }
        for name, per_config in matrix.items()
    }
    rows["average"] = {
        letter: sum(rows[name][letter] for name in matrix) / max(1, len(matrix))
        for letter in CONFIG_LETTERS
    }
    return rows


def fig10_energy(matrix):
    """Fig. 10: energy normalized to B, plus a geomean row."""
    rows = {}
    for name, per_config in matrix.items():
        base = per_config["B"].energy or 1.0
        rows[name] = {
            letter: per_config[letter].energy / base for letter in CONFIG_LETTERS
        }
    rows["geomean"] = {
        letter: geometric_mean([rows[name][letter] for name in matrix])
        for letter in CONFIG_LETTERS
    }
    return rows


#: The four categories Fig. 11 of the paper stacks. Categories outside
#: this set (e.g. the chaos layer's ``Injected``) only appear in a row
#: when their share is nonzero, so fault-free figure output is
#: byte-identical to a build without the chaos layer.
FIG11_PAPER_CATEGORIES = (
    AbortCategory.MEMORY_CONFLICT,
    AbortCategory.EXPLICIT_FALLBACK,
    AbortCategory.OTHER_FALLBACK,
    AbortCategory.OTHERS,
)


def fig11_abort_breakdown(matrix):
    """Fig. 11: abort shares by category per benchmark and config."""
    rows = {}
    for name, per_config in matrix.items():
        rows[name] = {}
        for letter in CONFIG_LETTERS:
            shares = per_config[letter].abort_category_shares()
            row = {
                category: shares.get(category, 0.0)
                for category in FIG11_PAPER_CATEGORIES
            }
            for category in AbortCategory:
                if category not in row and shares.get(category, 0.0) > 0.0:
                    row[category] = shares[category]
            rows[name][letter] = row
    return rows


def fig12_commit_modes(matrix):
    """Fig. 12: commit shares by execution mode per benchmark and config."""
    rows = {}
    for name, per_config in matrix.items():
        rows[name] = {
            letter: per_config[letter].commit_mode_shares()
            for letter in CONFIG_LETTERS
        }
    return rows


def fig13_retry_bound(matrix):
    """Fig. 13: (1-retry, n-retry, fallback) shares among retried commits.

    Includes an ``average`` row — the basis for the paper's headline
    "64.4% first-retry / 15.4% fallback" numbers.
    """
    rows = {}
    for name, per_config in matrix.items():
        rows[name] = {
            letter: per_config[letter].retry_shares() for letter in CONFIG_LETTERS
        }
    rows["average"] = {
        letter: tuple(
            sum(rows[name][letter][index] for name in matrix) / max(1, len(matrix))
            for index in range(3)
        )
        for letter in CONFIG_LETTERS
    }
    return rows


def headline_summary(matrix):
    """The abstract's headline numbers, measured on this matrix."""
    times, _ = fig8_execution_time(matrix)
    energy = fig10_energy(matrix)
    aborts = fig9_aborts_per_commit(matrix)
    retries = fig13_retry_bound(matrix)
    return {
        "time_reduction_C_vs_B": 1.0 - times["geomean"]["C"],
        "time_reduction_W_vs_B": 1.0 - times["geomean"]["W"],
        "time_reduction_W_vs_P": 1.0 - (
            times["geomean"]["W"] / times["geomean"]["P"]
            if times["geomean"]["P"] else 1.0
        ),
        "energy_reduction_C_vs_B": 1.0 - energy["geomean"]["C"],
        "energy_reduction_W_vs_B": 1.0 - energy["geomean"]["W"],
        "aborts_per_commit_B": aborts["average"]["B"],
        "aborts_per_commit_C": aborts["average"]["C"],
        "aborts_per_commit_W": aborts["average"]["W"],
        "first_retry_share_B": retries["average"]["B"][0],
        "first_retry_share_P": retries["average"]["P"][0],
        "first_retry_share_C": retries["average"]["C"][0],
        "first_retry_share_W": retries["average"]["W"][0],
        "fallback_share_B": retries["average"]["B"][2],
        "fallback_share_C": retries["average"]["C"][2],
        "fallback_share_W": retries["average"]["W"][2],
    }


def figure_payload(matrix):
    """Every figure's data as one JSON-serializable dict.

    The single source of the figure-JSON shape: the experiment script
    wraps this with run metadata (scale, seeds, elapsed time), and the
    equivalence suite compares it byte-for-byte against committed
    goldens — so any change to a figure projection shows up in both.
    """
    times, discovery = fig8_execution_time(matrix)
    return {
        "fig1": fig1_retry_immutability(matrix),
        "fig8_times": {k: v for k, v in times.items()},
        "fig8_discovery": discovery,
        "fig9": fig9_aborts_per_commit(matrix),
        "fig10": fig10_energy(matrix),
        "fig11": {
            name: {
                letter: {cat.value: share for cat, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig11_abort_breakdown(matrix).items()
        },
        "fig12": {
            name: {
                letter: {mode.value: share for mode, share in shares.items()}
                for letter, shares in per_config.items()
            }
            for name, per_config in fig12_commit_modes(matrix).items()
        },
        "fig13": {
            name: {letter: list(triple) for letter, triple in per_config.items()}
            for name, per_config in fig13_retry_bound(matrix).items()
        },
        "headline": headline_summary(matrix),
    }
