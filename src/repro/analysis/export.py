"""CSV export of figure data.

Plotting lives outside this library (no plotting dependency is assumed
offline), so every figure's series can be dumped to CSV for external
tooling: one file per figure, benchmarks as rows, configurations (and
sub-series) as columns.
"""

import csv

from repro.analysis.experiments import (
    CONFIG_LETTERS,
    fig1_retry_immutability,
    fig8_execution_time,
    fig9_aborts_per_commit,
    fig10_energy,
    fig11_abort_breakdown,
    fig12_commit_modes,
    fig13_retry_bound,
)


def _write(path, headers, rows):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def export_fig1(matrix, path):
    """benchmark,ratio rows for Fig. 1."""
    ratios = fig1_retry_immutability(matrix)
    _write(path, ["benchmark", "first_retry_immutable_ratio"],
           [(name, ratios[name]) for name in ratios])


def export_fig8(matrix, path):
    """benchmark,B,P,C,W,discovery_C rows for Fig. 8."""
    times, discovery = fig8_execution_time(matrix)
    rows = []
    for name, per_config in times.items():
        disc = discovery.get(name, {}).get("C", "")
        rows.append([name] + [per_config[letter] for letter in CONFIG_LETTERS] + [disc])
    _write(path, ["benchmark", "B", "P", "C", "W", "discovery_fraction_C"], rows)


def export_fig9(matrix, path):
    """benchmark,B,P,C,W rows of aborts per commit."""
    data = fig9_aborts_per_commit(matrix)
    _write(path, ["benchmark", "B", "P", "C", "W"],
           [[name] + [data[name][letter] for letter in CONFIG_LETTERS]
            for name in data])


def export_fig10(matrix, path):
    """benchmark,B,P,C,W rows of normalized energy."""
    data = fig10_energy(matrix)
    _write(path, ["benchmark", "B", "P", "C", "W"],
           [[name] + [data[name][letter] for letter in CONFIG_LETTERS]
            for name in data])


def export_fig11(matrix, path):
    """Long-format abort-category shares."""
    data = fig11_abort_breakdown(matrix)
    rows = []
    for name, per_config in data.items():
        for letter in CONFIG_LETTERS:
            for category, share in per_config[letter].items():
                rows.append([name, letter, category.value, share])
    _write(path, ["benchmark", "config", "category", "share"], rows)


def export_fig12(matrix, path):
    """Long-format commit-mode shares."""
    data = fig12_commit_modes(matrix)
    rows = []
    for name, per_config in data.items():
        for letter in CONFIG_LETTERS:
            for mode, share in per_config[letter].items():
                rows.append([name, letter, mode.value, share])
    _write(path, ["benchmark", "config", "mode", "share"], rows)


def export_fig13(matrix, path):
    """benchmark,config,first,n_retry,fallback rows for Fig. 13."""
    data = fig13_retry_bound(matrix)
    rows = []
    for name, per_config in data.items():
        for letter in CONFIG_LETTERS:
            first, n_retry, fallback = per_config[letter]
            rows.append([name, letter, first, n_retry, fallback])
    _write(path, ["benchmark", "config", "first_retry", "n_retry", "fallback"],
           rows)


def export_all(matrix, directory):
    """Write every figure's CSV into ``directory``; returns the paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = {}
    for name, exporter in [
        ("fig01", export_fig1),
        ("fig08", export_fig8),
        ("fig09", export_fig9),
        ("fig10", export_fig10),
        ("fig11", export_fig11),
        ("fig12", export_fig12),
        ("fig13", export_fig13),
    ]:
        path = os.path.join(directory, "{}.csv".format(name))
        exporter(matrix, path)
        paths[name] = path
    return paths
