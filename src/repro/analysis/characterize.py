"""AR characterization: derives Table 1 and the Fig. 1 measurement.

The paper classifies every static AR as *immutable* (no indirection, no
branch on AR-loaded data), *likely immutable* (indirections whose values
concurrent ARs do not modify), or *mutable* (the footprint genuinely
changes across executions).

This module re-derives the classes dynamically, mirroring the hardware:

1. **Probe executions** run AR bodies against real simulated memory with
   taint tracking (the indirection bits). No indirection in any sample
   → immutable.
2. For tainted regions, each sampled invocation is probed twice with a
   burst of *other* invocations applied in between (simulating
   concurrent ARs committing between an abort and its retry). If the
   footprint never changes, the region is likely immutable; otherwise
   mutable.

Probes buffer their stores (like failed-mode discovery) unless asked to
commit, so probing is side-effect-free where it needs to be.
"""

from repro.common.rng import DeterministicRng
from repro.memory.shared import Allocator, SharedMemory
from repro.sim.replay import ReplayResult, replay_body
from repro.workloads.base import Mutability

# The characterization probe is the simulator's replay machinery.
ProbeResult = ReplayResult
probe_body = replay_body


class RegionCharacterization:
    """Aggregated observations for one static AR."""

    def __init__(self, region_name, declared):
        self.region_name = region_name
        self.declared = declared
        self.samples = 0
        self.tainted_samples = 0
        self.footprint_changed_samples = 0
        self.max_footprint = 0

    def note(self, first, second):
        """Record one probe pair (before/after perturbations)."""
        self.samples += 1
        if first.indirection_seen:
            self.tainted_samples += 1
        if first.footprint != second.footprint:
            self.footprint_changed_samples += 1
        self.max_footprint = max(
            self.max_footprint, first.footprint_size, second.footprint_size
        )

    @property
    def measured(self):
        """Derived Mutability class (paper §3 definitions)."""
        if self.tainted_samples == 0:
            return Mutability.IMMUTABLE
        if self.footprint_changed_samples == 0:
            return Mutability.LIKELY_IMMUTABLE
        return Mutability.MUTABLE

    def __repr__(self):
        return "RegionCharacterization({!r}, measured={})".format(
            self.region_name, self.measured.value
        )


def characterize_workload(workload_factory, samples_per_region=24,
                          perturbations=12, num_threads=8, seed=7):
    """Probe a workload's regions; returns {region_name: characterization}.

    For every sampled invocation, the body is probed, ``perturbations``
    other random invocations are committed (the "concurrent ARs" that
    run between an abort and its retry), and the body is probed again;
    footprint equality across the pair feeds the likely-immutable /
    mutable split.
    """
    workload = workload_factory()
    memory = SharedMemory()
    allocator = Allocator()
    rng = DeterministicRng(seed)
    # A characterization probe must never exhaust the action quota.
    workload.ops_per_thread = max(
        workload.ops_per_thread,
        samples_per_region * (perturbations + 1) * len(workload.region_specs()),
    )
    workload.setup(memory, allocator, num_threads=num_threads, rng=rng.child("setup"))
    results = {
        spec.name: RegionCharacterization(spec.name, spec.mutability)
        for spec in workload.region_specs()
    }
    pick_rng = rng.child("pick")
    perturb_rng = rng.child("perturb")
    pending = {name: samples_per_region for name in results}
    budget = samples_per_region * len(results) * 50
    thread_cycle = 0
    while any(count > 0 for count in pending.values()) and budget > 0:
        budget -= 1
        thread_cycle = (thread_cycle + 1) % num_threads
        invocation = workload.make_invocation(thread_cycle, pick_rng)
        region_name = invocation.region_id[1]
        if pending.get(region_name, 0) <= 0:
            # Still commit it so the structures keep evolving.
            probe_body(invocation.body_factory, memory, commit=True)
            continue
        first = probe_body(invocation.body_factory, memory, commit=False)
        for _ in range(perturbations):
            other_thread = perturb_rng.randint(0, num_threads - 1)
            other = workload.make_invocation(other_thread, perturb_rng)
            probe_body(other.body_factory, memory, commit=True)
        second = probe_body(invocation.body_factory, memory, commit=True)
        results[region_name].note(first, second)
        pending[region_name] -= 1
    return results


def characterization_table(workload_factories, **kwargs):
    """Table 1 rows: (benchmark, #ARs, immutable, likely, mutable) measured."""
    rows = []
    for factory in workload_factories:
        workload = factory()
        characterizations = characterize_workload(factory, **kwargs)
        counts = {m: 0 for m in Mutability}
        for characterization in characterizations.values():
            counts[characterization.measured] += 1
        rows.append(
            {
                "benchmark": workload.name,
                "num_ars": len(characterizations),
                "immutable": counts[Mutability.IMMUTABLE],
                "likely_immutable": counts[Mutability.LIKELY_IMMUTABLE],
                "mutable": counts[Mutability.MUTABLE],
                "per_region": characterizations,
            }
        )
    return rows
