"""Plain-text rendering of tables and bar-style figures.

The benchmark harnesses use these to print the same rows/series the
paper's tables and figures report.
"""

import math


def format_ratio(value, digits=2):
    """A float formatted compactly ('1.00', '0.35', ...)."""
    return "{:.{}f}".format(value, digits)


def render_table(headers, rows, title=None):
    """A boxed, column-aligned ASCII table."""
    columns = [str(header) for header in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(columns))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_bar_chart(series, title=None, width=40, fmt="{:.2f}"):
    """Horizontal text bars for {label: value} (values >= 0)."""
    if not series:
        return title or ""
    peak = max(series.values()) or 1.0
    label_width = max(len(str(label)) for label in series)
    parts = []
    if title:
        parts.append(title)
    for label, value in series.items():
        bar = "#" * max(0, int(round(width * value / peak)))
        parts.append(
            "{} | {} {}".format(
                str(label).ljust(label_width), bar, fmt.format(value)
            )
        )
    return "\n".join(parts)


def render_stacked_shares(rows, categories, title=None, width=30):
    """Rows of stacked 0..1 shares, one char per category.

    ``rows`` is a list of (label, {category: share}); each printed row
    shows a ``width``-character strip partitioned by category symbol
    plus the numeric shares.
    """
    symbols = "#=+.ox*"
    parts = []
    if title:
        parts.append(title)
    label_width = max((len(str(label)) for label, _ in rows), default=0)
    for label, shares in rows:
        strip = ""
        for index, category in enumerate(categories):
            share = shares.get(category, 0.0)
            strip += symbols[index % len(symbols)] * int(round(width * share))
        strip = strip[:width].ljust(width)
        numbers = " ".join(
            "{}={:.2f}".format(category, shares.get(category, 0.0))
            for category in categories
        )
        parts.append("{} |{}| {}".format(str(label).ljust(label_width), strip, numbers))
    return "\n".join(parts)


def geometric_mean(values):
    """Geometric mean of positive values (the paper's Fig. 8 aggregate)."""
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(value) for value in filtered) / len(filtered))
