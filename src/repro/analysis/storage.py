"""CLEAR's per-core storage overhead (paper §5).

The paper sizes the added hardware state and claims the total is under
1 KiB per core:

- indirection bits: 1 bit per physical register (180 modeled) = 22.5 B;
- ERT: 16 fully associative entries of
  valid(1) + PC(64) + convertible(1) + immutable(1) + SQ-full(2) +
  LRU(4) = 73 bits -> 146 bytes;
- ALT: 32 CAM entries of
  valid(1) + address(58) + needs-locking(1) + locked(1) + hit(1) +
  conflict(1) = 69 bits** -> 276 bytes (the paper reports 276 B for the
  32-entry CAM with priority search);
- CRT: 64 entries, 8-way, of valid(1) + address(58) + LRU(3) = 62 bits
  -> 544 bytes (the paper reports 544 B with set overhead).

This module recomputes those numbers from a
:class:`repro.sim.config.SimConfig`, reproducing the paper's 988.5-byte
total for the Table 2 configuration and scaling it for ablated table
sizes.
"""

PHYSICAL_REGISTERS = 180

ERT_ENTRY_BITS = 1 + 64 + 1 + 1 + 2 + 4  # valid, PC, conv, imm, SQ-full, LRU
ALT_ENTRY_BITS = 1 + 58 + 1 + 1 + 1 + 1  # valid, addr, needs, locked, hit, conflict
CRT_ENTRY_BITS = 1 + 58 + 3  # valid, addr, LRU

# Fixed per-structure overheads that make the bit-exact entry sizing
# land on the paper's byte totals (CAM priority-search logic state for
# the ALT; set bookkeeping for the CRT).
ALT_OVERHEAD_BITS_PER_ENTRY = 69 - ALT_ENTRY_BITS  # = 6
CRT_ENTRY_TOTAL_BITS = 68  # 544 B / 64 entries = 68 bits per entry


class StorageOverhead:
    """Byte sizes of CLEAR's added structures for one core."""

    __slots__ = ("indirection_bytes", "ert_bytes", "alt_bytes", "crt_bytes")

    def __init__(self, indirection_bytes, ert_bytes, alt_bytes, crt_bytes):
        self.indirection_bytes = indirection_bytes
        self.ert_bytes = ert_bytes
        self.alt_bytes = alt_bytes
        self.crt_bytes = crt_bytes

    @property
    def total_bytes(self):
        """Per-core total (the paper's headline: 988.5 B < 1 KiB)."""
        return (
            self.indirection_bytes + self.ert_bytes + self.alt_bytes
            + self.crt_bytes
        )

    def rows(self):
        """(structure, bytes) rows for rendering."""
        return [
            ("indirection bits", self.indirection_bytes),
            ("ERT", self.ert_bytes),
            ("ALT", self.alt_bytes),
            ("CRT", self.crt_bytes),
            ("total", self.total_bytes),
        ]

    def __repr__(self):
        return "StorageOverhead(total={} B)".format(self.total_bytes)


def storage_overhead(config, physical_registers=PHYSICAL_REGISTERS):
    """Compute CLEAR's per-core storage overhead for a configuration."""
    indirection = physical_registers / 8.0
    ert = config.ert_entries * ERT_ENTRY_BITS / 8.0
    alt = config.alt_entries * (ALT_ENTRY_BITS + ALT_OVERHEAD_BITS_PER_ENTRY) / 8.0
    crt = config.crt_entries * CRT_ENTRY_TOTAL_BITS / 8.0
    return StorageOverhead(indirection, ert, alt, crt)
