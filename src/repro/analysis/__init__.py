"""Analysis layer: characterization, experiments, and rendering.

- :mod:`repro.analysis.characterize` — derives Table 1 (AR mutability
  classes) and feeds Fig. 1 from probe executions.
- :mod:`repro.analysis.experiments` — one entry point per figure of the
  evaluation, producing the same rows/series the paper reports.
- :mod:`repro.analysis.report` — plain-text table/figure rendering.
"""

from repro.analysis.characterize import (
    RegionCharacterization,
    characterize_workload,
    characterization_table,
)
from repro.analysis.experiments import (
    CONFIG_LETTERS,
    ExperimentSettings,
    run_config_matrix,
    fig1_retry_immutability,
    fig8_execution_time,
    fig9_aborts_per_commit,
    fig10_energy,
    fig11_abort_breakdown,
    fig12_commit_modes,
    fig13_retry_bound,
    headline_summary,
)
from repro.analysis.report import render_table, render_bar_chart, format_ratio
from repro.analysis.storage import StorageOverhead, storage_overhead
from repro.analysis.export import export_all

__all__ = [
    "RegionCharacterization",
    "characterize_workload",
    "characterization_table",
    "CONFIG_LETTERS",
    "ExperimentSettings",
    "run_config_matrix",
    "fig1_retry_immutability",
    "fig8_execution_time",
    "fig9_aborts_per_commit",
    "fig10_energy",
    "fig11_abort_breakdown",
    "fig12_commit_modes",
    "fig13_retry_bound",
    "headline_summary",
    "render_table",
    "render_bar_chart",
    "format_ratio",
    "StorageOverhead",
    "storage_overhead",
    "export_all",
]
