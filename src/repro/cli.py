"""Shared command-line flag layer for the repro scripts.

``scripts/run_experiments.py`` and ``scripts/bench_perf.py`` (and any
future tool) get their common knobs from here, so ``--jobs``,
``--cache-dir``/``--no-cache``, ``--scale`` and the tracing flags parse
and validate identically everywhere instead of drifting per script.

Usage::

    parser = argparse.ArgumentParser(...)
    cli.add_engine_flags(parser)           # --jobs/--cache-dir/--no-cache
    cli.add_scale_flag(parser, ("micro", "full"), default="full")
    cli.add_trace_flags(parser)            # --trace/--trace-report
    args = parser.parse_args(argv)
    cli.validate_engine_flags(parser, args)
    engine = cli.build_engine(args, progress=..., cell_timeout=...)
"""

import argparse
import os

from repro.htm.design import DESIGN_REGISTRY
from repro.sim.engine import DEFAULT_CACHE_DIR, ExperimentEngine


def add_engine_flags(parser, cache_default=DEFAULT_CACHE_DIR):
    """Attach the experiment-engine knobs every script shares."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=cache_default, metavar="DIR",
        help="on-disk result cache root (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache entirely",
    )
    return parser


def add_design_flag(parser, default="baseline"):
    """Attach the shared ``--design`` knob selecting the HTM backend.

    Choices come from :data:`~repro.htm.design.DESIGN_REGISTRY`, so
    designs registered by the calling script automatically appear.
    """
    parser.add_argument(
        "--design", choices=sorted(DESIGN_REGISTRY), default=default,
        help="HTM design backend (default: %(default)s)",
    )
    return parser


def add_backend_flag(parser, default="reference"):
    """Attach the shared ``--backend`` knob selecting the event loop.

    Choices come from :data:`~repro.sim.config.BACKENDS` — the
    reference heap loop and the batched calendar-queue loop. Both
    produce bit-identical results; the flag is a pure performance
    choice and is threaded into ``SimConfig.backend`` (and therefore
    cache fingerprints and sweep journals) by the calling script.
    """
    from repro.sim.config import BACKENDS

    parser.add_argument(
        "--backend", choices=BACKENDS, default=default,
        help="simulation event loop (default: %(default)s; 'batch' is "
             "the fused calendar-queue loop, bit-identical results)",
    )
    return parser


def add_oracle_flag(parser, default=None):
    """Attach the shared ``--oracle`` checker-mode knob.

    Choices come from :data:`~repro.sim.config.ORACLE_MODES`. A bare
    ``--oracle`` (no value) arms the shadow-replay oracle — the
    spelling the old boolean flag had — while ``--oracle online`` and
    ``--oracle cross-check`` select the commit-order monitor and the
    differential mode. The default of None means "leave the script's
    config untouched".
    """
    from repro.sim.config import ORACLE_MODES

    parser.add_argument(
        "--oracle", nargs="?", const="shadow", default=default,
        choices=ORACLE_MODES, metavar="MODE",
        help="serializability checker mode: off, shadow (replay "
             "oracle; the bare-flag default), online (commit-order "
             "monitor), or cross-check (both, verdicts compared)",
    )
    return parser


def add_journal_flags(parser):
    """Attach the crash-safe sweep-journal knobs.

    ``--journal DIR`` records every finished cell into a durable job
    folder (created on first use, replayed when it already exists);
    ``--resume DIR`` is the explicit resume spelling — the folder must
    already hold a journal manifest, so a typo'd path fails loudly
    instead of silently starting a fresh sweep.
    """
    parser.add_argument(
        "--journal", metavar="DIR", default=None,
        help="crash-safe job folder: durably log per-cell outcomes and "
             "replay completed cells on restart (created if missing)",
    )
    parser.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume a previous --journal job folder (must already "
             "contain a manifest); implies --journal DIR",
    )
    return parser


def validate_journal_flags(parser, args):
    """Shared post-parse validation for :func:`add_journal_flags`.

    Folds ``--resume`` into ``args.journal`` after checking the folder
    is actually resumable.
    """
    if getattr(args, "resume", None) is not None:
        if args.journal is not None and args.journal != args.resume:
            parser.error(
                "--journal {} and --resume {} disagree; pass one".format(
                    args.journal, args.resume
                )
            )
        from repro.sim.journal import SweepJournal

        if not SweepJournal(args.resume).exists():
            parser.error(
                "--resume {}: no journal manifest found (was this sweep "
                "started with --journal?)".format(args.resume)
            )
        args.journal = args.resume
    return args


def resolve_journal(args):
    """The :class:`~repro.sim.journal.SweepJournal`, or None."""
    path = getattr(args, "journal", None)
    if not path:
        return None
    from repro.sim.journal import SweepJournal

    return SweepJournal(path)


def add_scale_flag(parser, choices, default):
    """Attach the shared ``--scale`` knob (same name in every script)."""
    parser.add_argument(
        "--scale", choices=tuple(choices), default=default,
        help="experiment scale (default: %(default)s)",
    )
    return parser


def add_trace_flags(parser):
    """Attach the shared observability flags.

    ``--trace OUT.json`` exports a Chrome/Perfetto ``trace_event`` file
    for a representative traced run; ``--trace-report OUT.txt`` writes
    the per-region forensic text report of the same run. Tracing never
    changes simulated results.
    """
    parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="export a Chrome/Perfetto trace of a representative run",
    )
    parser.add_argument(
        "--trace-report", metavar="OUT.txt", default=None,
        help="write the per-region forensic abort report of the traced run",
    )
    return parser


def add_explore_flags(parser):
    """Attach the schedule-exploration knobs (``scripts/verify_schedules.py``).

    ``--explore N`` sets how many schedules each workload/config cell
    explores (for the exhaustive mode it is the tree-size cap instead),
    ``--explore-mode`` picks the explorer, ``--explore-cores`` shrinks
    the simulated machine to a micro core count, and ``--explore-seed``
    seeds the fuzzing schedulers.
    """
    parser.add_argument(
        "--explore", type=int, default=20, metavar="N",
        help="schedules to explore per cell (exhaustive: max tree size; "
             "default: %(default)s)",
    )
    parser.add_argument(
        "--explore-mode", choices=("random", "pct", "exhaustive"),
        default="random",
        help="schedule explorer (default: %(default)s)",
    )
    parser.add_argument(
        "--explore-cores", type=int, default=2, metavar="N",
        help="cores in the explored machine (default: %(default)s)",
    )
    parser.add_argument(
        "--explore-seed", type=int, default=0, metavar="S",
        help="base seed for the fuzzing schedulers (default: %(default)s)",
    )
    return parser


def validate_explore_flags(parser, args):
    """Shared post-parse validation for :func:`add_explore_flags`."""
    if args.explore < 1:
        parser.error("--explore must be >= 1, not {}".format(args.explore))
    if args.explore_cores < 2:
        parser.error(
            "--explore-cores must be >= 2 (schedule choice needs at least "
            "two cores), not {}".format(args.explore_cores)
        )
    return args


def resolve_workload_names(parser, names):
    """Canonicalize workload names from any namespace, or exit cleanly.

    Accepts built-in benchmark names, ``gen:<spec|fingerprint|folder>``
    spellings, and ``trace:<folder>`` paths; returns the list of
    self-contained canonical names. An unknown or malformed name
    becomes ``parser.error`` (a one-line message and exit status 2)
    instead of a traceback.
    """
    from repro.common.errors import ConfigurationError
    from repro.workloads import canonical_workload_name

    resolved = []
    for name in names:
        try:
            resolved.append(canonical_workload_name(name))
        except ConfigurationError as exc:
            parser.error(str(exc))
    return resolved


def validate_engine_flags(parser, args):
    """Shared post-parse validation for :func:`add_engine_flags`."""
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1, not {}".format(args.jobs))
    return args


def resolve_jobs(args):
    """The effective worker count (``--jobs`` or every core)."""
    if args.jobs is not None:
        return args.jobs
    return os.cpu_count() or 1


def resolve_cache_dir(args):
    """The effective cache root, or None when caching is off."""
    if getattr(args, "no_cache", False):
        return None
    return args.cache_dir


def build_engine(args, *, progress=None, cell_timeout=None, profile_dir=None,
                 **extra):
    """An :class:`ExperimentEngine` wired from the shared flags."""
    return ExperimentEngine(
        jobs=resolve_jobs(args),
        cache_dir=resolve_cache_dir(args),
        progress=progress,
        cell_timeout=cell_timeout,
        profile_dir=profile_dir,
        **extra,
    )


def wants_trace(args):
    """True when any tracing output was requested."""
    return bool(
        getattr(args, "trace", None) or getattr(args, "trace_report", None)
    )


__all__ = [
    "add_engine_flags",
    "add_backend_flag",
    "add_design_flag",
    "add_oracle_flag",
    "add_journal_flags",
    "validate_journal_flags",
    "resolve_journal",
    "add_scale_flag",
    "add_trace_flags",
    "add_explore_flags",
    "validate_explore_flags",
    "validate_engine_flags",
    "resolve_jobs",
    "resolve_cache_dir",
    "build_engine",
    "wants_trace",
    "argparse",
]
