"""ddmin-style minimization of failing schedules.

A schedule is a decision list; decision 0 is the default tie-break, so
a schedule's "interesting" content is its sparse set of *non-default*
decisions ``{position: choice}``. :func:`shrink_decisions` minimizes
that sparse set with Zeller's ddmin — repeatedly re-running the
schedule with subsets removed (removed positions fall back to the
default choice) and keeping any reduction that still reproduces the
failure — then rebuilds the shortest dense decision list. Replay is
deterministic, so every probe is exact, and the replay scheduler's
default-past-the-end behaviour means truncation is always safe.
"""


def _to_sparse(decisions):
    """Non-default entries of a dense decision list as (position, choice)."""
    return [
        (position, choice)
        for position, choice in enumerate(decisions)
        if choice != 0
    ]


def _to_dense(sparse):
    """Rebuild the shortest dense decision list from sparse entries."""
    if not sparse:
        return []
    length = max(position for position, _ in sparse) + 1
    dense = [0] * length
    for position, choice in sparse:
        dense[position] = choice
    return dense


def ddmin(items, predicate):
    """Zeller's ddmin: a 1-minimal subset of ``items`` satisfying ``predicate``.

    ``predicate`` must hold for ``items`` itself. The result is
    1-minimal: removing any single remaining element breaks the
    predicate (assuming a deterministic predicate).
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        size = len(items)
        chunk = -(-size // granularity)  # ceil
        chunks = [items[start:start + chunk] for start in range(0, size, chunk)]
        reduced = False
        for index in range(len(chunks)):
            candidate = [
                element
                for position, part in enumerate(chunks)
                if position != index
                for element in part
            ]
            if predicate(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(granularity * 2, len(items))
    return items


def shrink_decisions(decisions, still_fails):
    """Minimal decision list still satisfying ``still_fails``.

    ``still_fails`` receives a dense decision list and returns whether
    the failure reproduces. The original list must fail. Shrinks the
    sparse non-default set via :func:`ddmin`, with an all-default
    fast path (the failure may not depend on the decisions at all —
    e.g. a bug the default schedule also triggers).
    """
    if not still_fails(list(decisions)):
        raise ValueError("the original schedule must reproduce the failure")
    if still_fails([]):
        return []
    sparse = _to_sparse(decisions)
    minimal = ddmin(sparse, lambda subset: still_fails(_to_dense(subset)))
    return _to_dense(minimal)
