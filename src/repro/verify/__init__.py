"""Schedule exploration & differential verification (DESIGN.md §11).

The simulator's only nondeterminism-shaped degree of freedom is the
event loop's tie-break among same-cycle runnable cores. This package
makes that tie-break pluggable (:class:`Scheduler`), explores the
resulting schedule space (random / PCT fuzzing, DPOR-lite exhaustive
DFS), verifies every explored schedule against three oracles
(serializability, the single-retry bound, cross-schedule state
equivalence), and shrinks failures to minimal replayable
:class:`ScheduleArtifact` JSON files.

Entry points: :func:`verify` (also surfaced as ``repro.api.verify``)
and ``scripts/verify_schedules.py``.
"""

from repro.verify.explore import (
    ExplorationCell,
    ScheduleOutcome,
    VerificationReport,
    execute_exploration_cell,
    explore_exhaustive,
    explore_fuzzing,
    replay_artifact,
    run_schedule,
    verify,
)
from repro.verify.oracles import (
    COMMUTATIVE_WORKLOADS,
    RetryLedger,
    check_equivalence,
    check_retry_bound,
)
from repro.verify.schedule import (
    DefaultScheduler,
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    ScheduleArtifact,
    Scheduler,
)
from repro.verify.shrink import ddmin, shrink_decisions

__all__ = [
    "Scheduler",
    "DefaultScheduler",
    "RandomScheduler",
    "PCTScheduler",
    "ReplayScheduler",
    "RecordingScheduler",
    "ScheduleArtifact",
    "ScheduleOutcome",
    "VerificationReport",
    "ExplorationCell",
    "RetryLedger",
    "COMMUTATIVE_WORKLOADS",
    "check_retry_bound",
    "check_equivalence",
    "run_schedule",
    "explore_fuzzing",
    "explore_exhaustive",
    "execute_exploration_cell",
    "replay_artifact",
    "verify",
    "ddmin",
    "shrink_decisions",
]
