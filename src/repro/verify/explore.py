"""Schedule exploration and differential verification.

:func:`verify` is the driver: it runs a workload under many schedules —
the default deterministic one, a seeded random/PCT fuzzing batch, or a
DPOR-lite exhaustive enumeration of the decision tree for micro
configurations — and checks every run against the three oracles
(serializability via the online commit-order monitor by default, the
single-retry bound via the
:class:`~repro.verify.oracles.RetryLedger`, and cross-schedule
state/commit equivalence). A failing schedule is ddmin-shrunk
(:mod:`repro.verify.shrink`) to a minimal replayable
:class:`~repro.verify.schedule.ScheduleArtifact`.

The exploration space is exactly the machine's same-cycle tie-breaks
(see :mod:`repro.verify.schedule`); everything else in a run is
deterministic, so a decision list *is* a schedule and replaying it
reproduces the run bit-for-bit.
"""

import dataclasses
import hashlib
import json

from repro.common.errors import (
    ConfigurationError,
    OracleViolation,
    SimulationError,
    SimulationStallError,
)
from repro.obs.trace import EventTrace
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.verify.oracles import (
    COMMUTATIVE_WORKLOADS,
    RetryLedger,
    is_commutative_workload,
    check_equivalence,
    check_retry_bound,
    violation,
)
from repro.verify.schedule import (
    DefaultScheduler,
    PCTScheduler,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    ScheduleArtifact,
)
from repro.verify.shrink import shrink_decisions

#: Safety cap on DFS tree size when the caller does not set one: micro
#: configurations stay well under it; anything larger should be fuzzed,
#: not enumerated.
DEFAULT_MAX_SCHEDULES = 4096


def _sha256_of(obj):
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ScheduleOutcome:
    """Everything one explored schedule produced."""

    def __init__(self, decisions, arities, violations, *, stats=None,
                 state_sha256=None, stats_sha256=None, commit_counts=None,
                 error=None, trace=None):
        self.decisions = list(decisions)
        self.arities = list(arities)
        self.violations = list(violations)
        self.stats = stats
        self.state_sha256 = state_sha256
        self.stats_sha256 = stats_sha256
        self.commit_counts = commit_counts
        self.error = error
        self.trace = trace

    @property
    def ok(self):
        return not self.violations

    def to_dict(self):
        """JSON-friendly summary (what exploration cells send back)."""
        return {
            "decisions": list(self.decisions),
            "arities": list(self.arities),
            "violations": list(self.violations),
            "state_sha256": self.state_sha256,
            "stats_sha256": self.stats_sha256,
            "commit_counts": self.commit_counts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["decisions"], data["arities"], data["violations"],
            state_sha256=data.get("state_sha256"),
            stats_sha256=data.get("stats_sha256"),
            commit_counts=data.get("commit_counts"),
            error=data.get("error"),
        )

    def __repr__(self):
        return "ScheduleOutcome(decisions={}, violations={})".format(
            len(self.decisions), len(self.violations)
        )


def run_schedule(factory, config, seed, scheduler, *, trace=None,
                 machine_hook=None):
    """Run one schedule under full instrumentation; never raises.

    The machine runs with a serializability checker armed (``config``
    must have ``oracle`` set to a checking mode; :func:`verify` defaults
    to the online monitor when the caller left it off), a
    :class:`RetryLedger` attached, and the given scheduler wrapped in a
    recorder. Oracle violations, stalls, and simulation errors are
    converted into violation records on the returned
    :class:`ScheduleOutcome` instead of propagating — an exploration
    sweep must survive its own findings.

    ``machine_hook`` (test seam) receives the built machine before the
    run — how the planted-bug tests wrap the arbiter.
    """
    scheduler.reset()
    recording = RecordingScheduler(scheduler)
    ledger = RetryLedger()
    workload = factory()
    machine = Machine(
        config, workload, seed, trace=trace, scheduler=recording,
        retry_ledger=ledger,
    )
    if machine_hook is not None:
        machine_hook(machine)
    violations = []
    error = None
    completed = False
    try:
        machine.run()
        completed = True
    except OracleViolation as exc:
        error = "{}: {}".format(type(exc).__name__, exc)
        violations.append(violation(
            "serializability", str(exc), **dict(exc.details)
        ))
    except SimulationStallError as exc:
        error = "{}: {}".format(type(exc).__name__, exc)
        violations.append(violation(
            "stall", str(exc), stall_kind=type(exc).__name__,
        ))
    except SimulationError as exc:
        error = "{}: {}".format(type(exc).__name__, exc)
        violations.append(violation("simulation-error", str(exc)))
    violations.extend(check_retry_bound(ledger, config))
    if violations:
        # Canonicalize through JSON so tuples inside oracle details become
        # lists; artifact round-trips must be exact.
        violations = json.loads(json.dumps(violations))
    stats = machine.stats
    state_sha256 = None
    stats_sha256 = None
    commit_counts = None
    if completed:
        snapshot = machine.memory.snapshot()
        state_sha256 = _sha256_of(
            sorted((str(addr), value) for addr, value in snapshot.items())
        )
        stats_sha256 = _sha256_of(stats.to_dict())
        commit_counts = sorted(
            (str(region), count)
            for region, count in stats.per_region_commits.items()
        )
    return ScheduleOutcome(
        recording.decisions, recording.arities, violations,
        stats=stats, state_sha256=state_sha256, stats_sha256=stats_sha256,
        commit_counts=commit_counts, error=error, trace=trace,
    )


# -- explorers ---------------------------------------------------------------


def explore_fuzzing(run_one, *, schedules, explorer, explore_seed, num_cores):
    """Random or PCT fuzzing: one seeded scheduler per schedule."""
    outcomes = []
    for index in range(schedules):
        seed = explore_seed + index
        if explorer == "pct":
            scheduler = PCTScheduler(seed, num_cores=num_cores)
        else:
            scheduler = RandomScheduler(seed)
        outcomes.append(run_one(scheduler))
    return outcomes, True


def explore_exhaustive(run_one, *, max_schedules, max_depth=None):
    """DPOR-lite DFS over the decision tree.

    Runs the all-default schedule first, then for every choice point at
    or past each run's forced prefix pushes one branch per untaken
    alternative (depth-first). ``max_depth`` bounds which choice points
    may branch (the "lite" in DPOR-lite: a bounded frontier instead of
    persistent sets); ``max_schedules`` caps total runs. Returns
    ``(outcomes, complete)`` where ``complete`` means the tree was
    fully enumerated within both bounds.
    """
    outcomes = []
    complete = True
    seen = set()
    stack = [[]]
    while stack:
        if len(outcomes) >= max_schedules:
            complete = False
            break
        prefix = stack.pop()
        outcome = run_one(ReplayScheduler(prefix))
        full = tuple(outcome.decisions)
        if full in seen:
            continue
        seen.add(full)
        outcomes.append(outcome)
        decisions = outcome.decisions
        arities = outcome.arities
        # Reversed so lower alternatives pop first (stable DFS order);
        # branching below len(prefix) would re-enumerate the ancestors'
        # subtrees.
        for index in range(len(decisions) - 1, len(prefix) - 1, -1):
            if max_depth is not None and index >= max_depth:
                continue
            for alternative in range(arities[index]):
                if alternative != decisions[index]:
                    stack.append(decisions[:index] + [alternative])
    return outcomes, complete


# -- engine fan-out ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ExplorationCell:
    """One picklable chunk of a fuzzing sweep for the process pool.

    Field names mirror :class:`~repro.sim.engine.RunSpec` where the
    engine's progress/failure reporting reads them.
    """

    workload: str
    config: SimConfig
    seed: int
    explorer: str
    explore_seed: int
    schedules: int
    ops_per_thread: int = None
    trace: bool = False


def execute_exploration_cell(cell):
    """Run one cell's schedules; module-level so the pool can pickle it."""
    from repro.workloads import make_workload

    kwargs = {}
    if cell.ops_per_thread is not None:
        kwargs["ops_per_thread"] = cell.ops_per_thread
    factory = lambda: make_workload(cell.workload, **kwargs)  # noqa: E731

    def run_one(scheduler):
        return run_schedule(factory, cell.config, cell.seed, scheduler)

    outcomes, _ = explore_fuzzing(
        run_one, schedules=cell.schedules, explorer=cell.explorer,
        explore_seed=cell.explore_seed, num_cores=cell.config.num_cores,
    )
    return {"outcomes": [outcome.to_dict() for outcome in outcomes]}


# -- the driver --------------------------------------------------------------


class VerificationReport:
    """What :func:`verify` found across every explored schedule."""

    def __init__(self, *, workload_name, config, seed, explorer, outcomes,
                 complete, violations, artifacts, state_checked):
        self.workload_name = workload_name
        self.config = config
        self.seed = seed
        self.explorer = explorer
        self.outcomes = outcomes
        self.complete = complete
        self.violations = violations
        self.artifacts = artifacts
        self.state_checked = state_checked

    @property
    def ok(self):
        return not self.violations

    @property
    def schedules_explored(self):
        return len(self.outcomes)

    @property
    def distinct_schedules(self):
        return len({tuple(outcome.decisions) for outcome in self.outcomes})

    @property
    def distinct_states(self):
        return len({
            outcome.state_sha256 for outcome in self.outcomes
            if outcome.state_sha256 is not None
        })

    def summary(self):
        """One human-readable line per verification run."""
        status = "OK" if self.ok else "{} VIOLATION(S)".format(
            len(self.violations)
        )
        return (
            "{}: {} schedules ({} distinct, {} final states, "
            "explorer={}{}, state-equivalence {}) -> {}".format(
                self.workload_name or "<factory>",
                self.schedules_explored, self.distinct_schedules,
                self.distinct_states, self.explorer,
                "" if self.complete else ", truncated",
                "checked" if self.state_checked else "skipped",
                status,
            )
        )

    def to_dict(self):
        return {
            "workload": self.workload_name,
            "config": self.config.to_dict(),
            "seed": self.seed,
            "explorer": self.explorer,
            "complete": self.complete,
            "schedules_explored": self.schedules_explored,
            "distinct_schedules": self.distinct_schedules,
            "distinct_states": self.distinct_states,
            "state_checked": self.state_checked,
            "violations": list(self.violations),
            "artifacts": [artifact.to_dict() for artifact in self.artifacts],
        }


def verify(workload, config=None, *, cores=None, seed=1, schedules=20,
           explorer="random", explore_seed=0, ops_per_thread=None,
           max_schedules=None, max_depth=None, shrink=True,
           machine_hook=None, expect_state_equal=None, engine=None):
    """Explore a workload's schedule space and verify every schedule.

    Parameters
    ----------
    workload:
        A benchmark name from the registry or a zero-argument factory
        (factories cannot cross process boundaries or be recorded into
        artifacts by name, so prefer names).
    config:
        :class:`SimConfig`, paper letter, or None; a config with
        ``oracle="off"`` is upgraded to the ``"online"`` monitor (an
        explicit ``"shadow"``/``"cross-check"`` choice is kept) and
        ``cores`` (when given) overrides ``num_cores``.
    schedules:
        Fuzzing budget for ``explorer="random"``/``"pct"``.
    explorer:
        ``"random"``, ``"pct"``, or ``"exhaustive"`` (DPOR-lite DFS;
        ``schedules`` is ignored, ``max_schedules``/``max_depth`` bound
        the tree).
    shrink:
        ddmin-shrink the first violating schedule to a minimal
        replayable artifact.
    machine_hook:
        Optional callable receiving each built machine (test seam for
        planted bugs); forces inline execution.
    expect_state_equal:
        Require the final shared-memory digest to be identical across
        schedules. Default: only for workloads whose regions commute
        (:data:`~repro.verify.oracles.COMMUTATIVE_WORKLOADS`).
    engine:
        An :class:`~repro.sim.engine.ExperimentEngine` to fan fuzzing
        batches out across the process pool (named workloads, no
        machine_hook; exhaustive exploration is inherently sequential).
    """
    from repro.api import _resolve_config

    config = _resolve_config(config)
    if cores is not None and cores != config.num_cores:
        config = config.replaced(num_cores=cores)
    if not config.oracle_armed:
        config = config.replaced(oracle="online")
    named = isinstance(workload, str)
    workload_name = workload if named else None
    if named:
        from repro.workloads import canonical_workload_name, make_workload

        # Self-contained spelling so engine fan-out workers (and saved
        # artifacts) can re-resolve gen:/trace: names from scratch.
        workload = workload_name = canonical_workload_name(workload)
        kwargs = {}
        if ops_per_thread is not None:
            kwargs["ops_per_thread"] = ops_per_thread
        factory = lambda: make_workload(workload, **kwargs)  # noqa: E731
    elif callable(workload):
        if ops_per_thread is not None:
            raise ValueError(
                "ops_per_thread only scales named workloads; bake it into "
                "the factory instead"
            )
        factory = workload
    else:
        raise TypeError(
            "workload must be a benchmark name or a zero-argument factory"
        )
    if explorer not in ("random", "pct", "exhaustive"):
        raise ConfigurationError(
            "explorer must be random, pct, or exhaustive, not "
            "{!r}".format(explorer)
        )
    if expect_state_equal is None:
        expect_state_equal = is_commutative_workload(workload_name)

    def run_one(scheduler):
        return run_schedule(
            factory, config, seed, scheduler, machine_hook=machine_hook
        )

    # Schedule 0 is always the default deterministic schedule: it is
    # the equivalence reference and pins the golden behaviour.
    baseline = run_one(DefaultScheduler())
    cap = max_schedules if max_schedules is not None else DEFAULT_MAX_SCHEDULES

    if explorer == "exhaustive":
        explored, complete = explore_exhaustive(
            run_one, max_schedules=cap, max_depth=max_depth
        )
        # The DFS root *is* the default schedule; drop the duplicate.
        outcomes = [baseline] + [
            outcome for outcome in explored
            if outcome.decisions != baseline.decisions
        ]
    elif engine is not None and named and machine_hook is None:
        outcomes = [baseline] + _fan_out(
            engine, workload_name, config, seed, explorer, explore_seed,
            schedules, ops_per_thread,
        )
        complete = True
    else:
        explored, complete = explore_fuzzing(
            run_one, schedules=schedules, explorer=explorer,
            explore_seed=explore_seed, num_cores=config.num_cores,
        )
        outcomes = [baseline] + explored

    violations = []
    for index, outcome in enumerate(outcomes):
        for entry in outcome.violations:
            violations.append(dict(entry, schedule=index))
    equivalence = check_equivalence(
        outcomes, expect_state_equal=expect_state_equal
    )
    for entry in equivalence:
        outcomes[entry["details"]["schedule"]].violations.append(entry)
        violations.append(dict(entry, schedule=entry["details"]["schedule"]))

    artifacts = []
    if violations and shrink:
        artifacts.append(_shrink_first_failure(
            outcomes, run_one, workload_name, config, seed, ops_per_thread,
            expect_state_equal,
        ))
    return VerificationReport(
        workload_name=workload_name, config=config, seed=seed,
        explorer=explorer, outcomes=outcomes, complete=complete,
        violations=violations, artifacts=artifacts,
        state_checked=expect_state_equal,
    )


def _fan_out(engine, workload_name, config, seed, explorer, explore_seed,
             schedules, ops_per_thread):
    """Split a fuzzing budget into per-worker cells and merge outcomes."""
    jobs = max(1, engine.jobs)
    chunk = max(1, -(-schedules // (jobs * 2)))  # ceil; ~2 cells per worker
    cells = []
    start = 0
    while start < schedules:
        count = min(chunk, schedules - start)
        cells.append(ExplorationCell(
            workload=workload_name, config=config, seed=seed,
            explorer=explorer, explore_seed=explore_seed + start,
            schedules=count, ops_per_thread=ops_per_thread,
        ))
        start += count
    outcomes = []
    for payload in engine.map_cells(cells, execute_exploration_cell):
        outcomes.extend(
            ScheduleOutcome.from_dict(entry) for entry in payload["outcomes"]
        )
    return outcomes


def _violation_kinds(outcome):
    return {entry["kind"] for entry in outcome.violations}


def _shrink_first_failure(outcomes, run_one, workload_name, config, seed,
                          ops_per_thread, expect_state_equal):
    """ddmin the first failing schedule into a replayable artifact."""
    failing = next(outcome for outcome in outcomes if outcome.violations)
    target_kinds = _violation_kinds(failing)
    reference = outcomes[0] if outcomes[0].ok else None

    def still_fails(decisions):
        outcome = run_one(ReplayScheduler(decisions))
        kinds = _violation_kinds(outcome)
        if reference is not None and expect_state_equal:
            if (outcome.state_sha256 is not None
                    and outcome.state_sha256 != reference.state_sha256):
                kinds.add("state-divergence")
            if (outcome.commit_counts is not None
                    and outcome.commit_counts != reference.commit_counts):
                kinds.add("commit-count-divergence")
        return bool(kinds & target_kinds)

    minimal = shrink_decisions(failing.decisions, still_fails)
    final = run_one(ReplayScheduler(minimal))
    return ScheduleArtifact(
        workload_name, config, seed, minimal,
        ops_per_thread=ops_per_thread,
        violations=failing.violations,
        decision_points=len(failing.decisions),
        stats_sha256=final.stats_sha256,
        state_sha256=final.state_sha256,
        notes="ddmin-shrunk from {} decisions; violation kinds: {}".format(
            len(failing.decisions), ", ".join(sorted(target_kinds))
        ),
    )


def replay_artifact(artifact, *, trace=False, machine_hook=None):
    """Re-execute an artifact's schedule; returns its ScheduleOutcome.

    ``trace=True`` captures the full event trace on the outcome for
    forensic reporting (:mod:`repro.obs`).
    """
    if artifact.workload is None:
        raise ValueError(
            "artifact has no workload name; factory-based runs cannot be "
            "replayed from JSON"
        )
    from repro.workloads import make_workload

    kwargs = {}
    if artifact.ops_per_thread is not None:
        kwargs["ops_per_thread"] = artifact.ops_per_thread
    factory = lambda: make_workload(artifact.workload, **kwargs)  # noqa: E731
    sink = EventTrace() if trace else None
    return run_schedule(
        factory, artifact.config, artifact.seed, artifact.scheduler(),
        trace=sink, machine_hook=machine_hook,
    )
