"""Schedulers: who runs when the event loop has a choice.

The machine's discrete-event loop is deterministic except for one
degree of freedom: when several cores are runnable at the same cycle,
*something* must pick which one steps first. The default machine
behaviour (no scheduler attached) breaks the tie by core id — one
point in the schedule space. A :class:`Scheduler` makes that tie-break
pluggable, which turns the simulator into a schedule-space explorer:

- :class:`DefaultScheduler` reproduces the built-in lowest-core-first
  order (attaching it is bit-identical to attaching nothing).
- :class:`RandomScheduler` picks uniformly at random from a seeded
  stream — a cheap schedule fuzzer.
- :class:`PCTScheduler` is a PCT-style priority fuzzer (Burckhardt et
  al., "A Randomized Scheduler with Probabilistic Guarantees of
  Finding Bugs"): cores run by random priority, with ``depth - 1``
  priority-change points scattered over the run, which concentrates
  probability on low-depth ordering bugs.
- :class:`ReplayScheduler` replays a recorded decision list — the
  deterministic re-execution backing :class:`ScheduleArtifact`.
- :class:`RecordingScheduler` wraps any of the above and records the
  ``(arity, choice)`` trace the explorers and the shrinker consume.

A "decision" is one call to :meth:`Scheduler.pick` — the machine only
asks when two or more cores are ready at the same cycle, so decision
lists stay short and every entry is a real scheduling choice.
"""

import json

from repro.common.rng import DeterministicRng, split_seed

#: Bumped when the artifact JSON layout changes; replay rejects
#: artifacts written by a different schema.
ARTIFACT_SCHEMA_VERSION = 1


class Scheduler:
    """Tie-break policy for same-cycle runnable cores.

    ``pick(now, ready)`` receives the simulated cycle and the ready
    core ids in ascending order (always at least two — the machine does
    not consult the scheduler when there is nothing to choose), and
    returns an *index* into ``ready``. ``reset()`` returns the
    scheduler to its initial state so one instance can drive several
    runs reproducibly.
    """

    def pick(self, now, ready):
        raise NotImplementedError

    def reset(self):
        """Restore initial state (default: stateless, nothing to do)."""


class DefaultScheduler(Scheduler):
    """Lowest-core-first: the machine's built-in tie-break, made explicit."""

    def pick(self, now, ready):
        return 0


class RandomScheduler(Scheduler):
    """Uniform random tie-break from a seeded deterministic stream."""

    def __init__(self, seed=0):
        self.seed = seed
        self.reset()

    def pick(self, now, ready):
        return self._rng.randint(0, len(ready) - 1)

    def reset(self):
        self._rng = DeterministicRng(split_seed(self.seed, "schedule-random"))


class PCTScheduler(Scheduler):
    """PCT-style priority fuzzing.

    Every core gets a distinct random base priority; :meth:`pick`
    always runs the highest-priority ready core. ``depth - 1`` change
    points are pre-drawn over an estimated ``horizon`` of decisions; at
    each one, the currently highest-priority ready core is demoted
    below every other priority, forcing a different ordering suffix.
    Low ``depth`` targets bugs that need only a few badly-timed
    preemptions — which is most of them.
    """

    def __init__(self, seed=0, num_cores=2, depth=3, horizon=256):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.seed = seed
        self.num_cores = num_cores
        self.depth = depth
        self.horizon = max(1, horizon)
        self.reset()

    def reset(self):
        rng = DeterministicRng(split_seed(self.seed, "schedule-pct"))
        order = list(range(self.num_cores))
        rng.shuffle(order)
        # Higher value = higher priority; all distinct.
        self._priority = {core: rank for rank, core in enumerate(order)}
        self._floor = -1
        self._change_points = frozenset(
            rng.randint(0, self.horizon - 1) for _ in range(self.depth - 1)
        )
        self._decision = 0

    def pick(self, now, ready):
        priority = self._priority
        best = max(
            range(len(ready)),
            key=lambda index: priority.get(ready[index], 0),
        )
        if self._decision in self._change_points:
            # Demote the core we were about to run below everything.
            self._priority[ready[best]] = self._floor
            self._floor -= 1
            best = max(
                range(len(ready)),
                key=lambda index: priority.get(ready[index], 0),
            )
        self._decision += 1
        return best


class ReplayScheduler(Scheduler):
    """Replay a recorded decision list, defaulting past its end.

    Decision ``i`` is consumed at the ``i``-th choice point; once the
    list is exhausted (or for an empty list) every further pick takes
    index 0, the built-in lowest-core-first order. Out-of-range entries
    are clamped, so a shrunk or hand-edited decision list always
    replays to *some* schedule instead of crashing.
    """

    def __init__(self, decisions=()):
        self.decisions = list(decisions)
        self._cursor = 0

    def pick(self, now, ready):
        if self._cursor >= len(self.decisions):
            return 0
        choice = self.decisions[self._cursor]
        self._cursor += 1
        return max(0, min(choice, len(ready) - 1))

    def reset(self):
        self._cursor = 0


class RecordingScheduler(Scheduler):
    """Record the ``(arity, choice)`` trace of an inner scheduler.

    ``decisions`` is the replayable choice list; ``arities`` the number
    of ready cores at each choice point (what the exhaustive explorer
    branches on).
    """

    def __init__(self, inner):
        self.inner = inner
        self.decisions = []
        self.arities = []

    def pick(self, now, ready):
        choice = self.inner.pick(now, ready)
        choice = max(0, min(choice, len(ready) - 1))
        self.decisions.append(choice)
        self.arities.append(len(ready))
        return choice

    def reset(self):
        self.inner.reset()
        self.decisions = []
        self.arities = []


class ScheduleArtifact:
    """A minimal, replayable description of one explored schedule.

    Everything needed to re-execute the exact interleaving: the
    workload (by registry name), its scaling, the configuration, the
    run seed, and the decision list a :class:`ReplayScheduler` feeds
    back into the machine. A failing exploration attaches the
    ``violations`` it observed plus the run's stats/state digests, so
    the artifact is simultaneously the bug report and the one-command
    reproduction (``scripts/verify_schedules.py --replay artifact.json``).
    """

    def __init__(self, workload, config, seed, decisions, *,
                 ops_per_thread=None, violations=(), decision_points=None,
                 stats_sha256=None, state_sha256=None, notes=""):
        self.workload = workload
        self.config = config
        self.seed = seed
        self.decisions = list(decisions)
        self.ops_per_thread = ops_per_thread
        self.violations = list(violations)
        self.decision_points = decision_points
        self.stats_sha256 = stats_sha256
        self.state_sha256 = state_sha256
        self.notes = notes

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """JSON-serializable form (the on-disk artifact format)."""
        return {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "workload": self.workload,
            "ops_per_thread": self.ops_per_thread,
            "config": self.config.to_dict(),
            "seed": self.seed,
            "decisions": list(self.decisions),
            "decision_points": self.decision_points,
            "violations": [dict(violation) for violation in self.violations],
            "stats_sha256": self.stats_sha256,
            "state_sha256": self.state_sha256,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild an artifact from :meth:`to_dict` output."""
        from repro.sim.config import SimConfig

        version = data.get("schema_version")
        if version != ARTIFACT_SCHEMA_VERSION:
            raise ValueError(
                "unsupported ScheduleArtifact schema {!r} (expected {})".format(
                    version, ARTIFACT_SCHEMA_VERSION
                )
            )
        return cls(
            workload=data["workload"],
            config=SimConfig.from_dict(data["config"]),
            seed=data["seed"],
            decisions=data["decisions"],
            ops_per_thread=data.get("ops_per_thread"),
            violations=data.get("violations", ()),
            decision_points=data.get("decision_points"),
            stats_sha256=data.get("stats_sha256"),
            state_sha256=data.get("state_sha256"),
            notes=data.get("notes", ""),
        )

    def to_json(self, indent=2):
        """The artifact as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        """Parse an artifact from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path):
        """Write the artifact JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        """Read an artifact back from :meth:`save` output."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    def scheduler(self):
        """A fresh :class:`ReplayScheduler` for this artifact."""
        return ReplayScheduler(self.decisions)

    def replay(self, *, trace=False, machine_hook=None):
        """Re-execute this schedule; returns a ScheduleOutcome.

        The workload is rebuilt from the registry by name; the machine
        runs under a :class:`ReplayScheduler` with the runtime oracles
        armed, exactly like the exploration run that produced the
        artifact. Pass ``trace=True`` to also capture the event trace
        (for the forensic report of a failure).
        """
        from repro.verify.explore import replay_artifact

        return replay_artifact(self, trace=trace, machine_hook=machine_hook)

    def __repr__(self):
        return "ScheduleArtifact({!r}, {}, seed={}, decisions={}, violations={})".format(
            self.workload, self.config.config_letter, self.seed,
            len(self.decisions), len(self.violations),
        )
