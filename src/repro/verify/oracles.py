"""Verification oracles checked on every explored schedule.

Three properties, matching the paper's claims:

1. **Serializability** — every run under exploration executes with a
   serializability checker armed: by default the
   :class:`~repro.sim.monitor.OnlineMonitor` (incremental commit-order
   epoch checking, cheap enough for large exploration batches), or the
   :class:`~repro.sim.oracle.RuntimeOracle` shadow replay when the
   caller picks ``oracle="shadow"``/``"cross-check"``. Both raise
   :class:`~repro.common.errors.OracleViolation`; the explorer converts
   that exception (and any stall) into a violation record; nothing here
   re-implements it.

2. **The single-retry bound** (this module) — CLEAR's headline claim:
   once a region's footprint is cacheline-locked non-speculatively
   (NS-CL), the retry succeeds, so no region pays more than one bounded
   speculative retry after locking. Checked from a
   :class:`RetryLedger`, an opt-in per-invocation recording of every
   attempt begin / abort / commit that the executors populate when a
   machine is built with one (zero cost otherwise).

3. **Cross-schedule state equivalence** (:func:`check_equivalence`) —
   per-core action streams are drawn from per-core child RNGs, so the
   *work* is schedule-independent; for workloads whose regions commute
   (declared in ``COMMUTATIVE_WORKLOADS``) the final shared-memory
   digest must therefore be identical across every explored schedule,
   and per-region commit counts must match across schedules for every
   workload.

A violation is a plain JSON-friendly dict (``kind`` / ``message`` /
``details``) so it can ride inside a
:class:`~repro.verify.schedule.ScheduleArtifact` unchanged.
"""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason, NON_MEMORY_REASONS
from repro.htm.design import DESIGN_REGISTRY

#: Abort reasons an NS-CL attempt may legitimately suffer. NS-CL holds
#: every learned line locked, so memory conflicts cannot reach it; what
#: remains is a wrong footprint prediction (deviation), failure to pin
#: the lock set, or a NACK from a power/CL holder met while *acquiring*
#: the locks. Fault injection never strikes NS-CL by design.
NS_CL_ALLOWED_REASONS = frozenset(
    {
        AbortReason.FOOTPRINT_DEVIATION,
        AbortReason.LOCK_SET_FAILURE,
        AbortReason.NACKED,
    }
)

#: Invocations with any abort in this set are excluded from the retry
#: bound, mirroring the paper's caveats: non-memory causes (capacity,
#: overflow, explicit xabort, injected faults, ...) void the locking
#: guarantee, a footprint deviation means the learned set was wrong (a
#: fresh discovery is legitimate), and NACK-park-retry cycles resolve by
#: waiting on a guaranteed-to-finish holder rather than by re-locking.
BOUND_EXEMPT_REASONS = frozenset(NON_MEMORY_REASONS) | {
    AbortReason.FOOTPRINT_DEVIATION,
    AbortReason.NACKED,
    AbortReason.EXPLICIT_FALLBACK,
    AbortReason.OTHER_FALLBACK,
}

#: Maximum speculative attempts that may begin after a region's first
#: NS-CL attempt (for non-exempt invocations). The paper bounds the
#: post-locking cost to a single retry.
MAX_SPECULATIVE_AFTER_NS_CL = 1


def violation(kind, message, **details):
    """One oracle violation as a JSON-friendly dict."""
    return {"kind": kind, "message": message, "details": details}


class InvocationRecord:
    """Attempt history of one atomic-region invocation."""

    __slots__ = ("core", "region", "begins", "aborts", "commit_mode",
                 "commit_retries", "via_abort")

    def __init__(self, core, region):
        self.core = core
        self.region = region
        self.begins = []   # ExecMode per attempt that actually began
        self.aborts = []   # (ExecMode-or-None, AbortReason) per abort
        self.commit_mode = None
        self.commit_retries = None
        self.via_abort = False

    def to_dict(self):
        return {
            "core": self.core,
            "region": list(self.region) if isinstance(self.region, tuple)
                      else self.region,
            "begins": [mode.value for mode in self.begins],
            "aborts": [
                [mode.value if mode is not None else None, reason.value]
                for mode, reason in self.aborts
            ],
            "commit_mode": (
                self.commit_mode.value if self.commit_mode is not None else None
            ),
            "commit_retries": self.commit_retries,
            "via_abort": self.via_abort,
        }


class RetryLedger:
    """Opt-in per-invocation attempt accounting for the bound oracle.

    Attach one via ``Machine(..., retry_ledger=RetryLedger())``; the
    executors call the ``note_*`` hooks next to their existing stats
    recording. ``completed`` holds every committed invocation in commit
    order; an in-flight invocation lives in ``open`` until its commit.
    """

    def __init__(self):
        self.completed = []
        self.open = {}  # core -> InvocationRecord

    def note_invoke(self, core, region):
        self.open[core] = InvocationRecord(core, region)

    def note_begin(self, core, mode):
        record = self.open.get(core)
        if record is not None:
            record.begins.append(mode)

    def note_abort(self, core, mode, reason):
        record = self.open.get(core)
        if record is not None:
            record.aborts.append((mode, reason))

    def note_commit(self, core, mode, counting_retries, via_abort=False):
        record = self.open.pop(core, None)
        if record is not None:
            record.commit_mode = mode
            record.commit_retries = counting_retries
            record.via_abort = via_abort
            self.completed.append(record)


def check_retry_bound(ledger, config):
    """Check the single-retry bound over a completed run's ledger.

    Returns a list of violation dicts (empty = bound holds). Three
    sub-checks per invocation:

    - **ns-cl-abort-reason**: NS-CL attempts only ever abort for
      reasons in :data:`NS_CL_ALLOWED_REASONS` (locking makes memory
      conflicts unreachable).
    - **retry-bound**: for invocations free of
      :data:`BOUND_EXEMPT_REASONS` aborts, at most
      :data:`MAX_SPECULATIVE_AFTER_NS_CL` speculative attempts begin
      after the first NS-CL attempt.
    - **fallback-threshold**: a non-fallback commit spent fewer counting
      retries than ``retry_threshold``; a fallback commit spent at least
      that many (the budget is neither overshot nor undershot). The
      design's ``early_fallback_reasons`` exempt an invocation from the
      undershoot half: such aborts legitimately skip the budget.
    """
    violations = []
    threshold = config.retry_threshold
    for record in ledger.completed:
        context = {"core": record.core, "record": record.to_dict()}
        for mode, reason in record.aborts:
            if mode is ExecMode.NS_CL and reason not in NS_CL_ALLOWED_REASONS:
                violations.append(violation(
                    "ns-cl-abort-reason",
                    "NS-CL attempt aborted with {} (locking should make "
                    "this unreachable)".format(reason.value),
                    reason=reason.value, **context,
                ))
        exempt = any(reason in BOUND_EXEMPT_REASONS
                     for _, reason in record.aborts)
        if not exempt:
            begins = record.begins
            first_ns_cl = next(
                (index for index, mode in enumerate(begins)
                 if mode is ExecMode.NS_CL),
                None,
            )
            if first_ns_cl is not None:
                speculative_after = sum(
                    1 for mode in begins[first_ns_cl + 1:]
                    if mode is ExecMode.SPECULATIVE
                )
                if speculative_after > MAX_SPECULATIVE_AFTER_NS_CL:
                    violations.append(violation(
                        "retry-bound",
                        "{} speculative attempts began after the first "
                        "NS-CL attempt (bound is {})".format(
                            speculative_after, MAX_SPECULATIVE_AFTER_NS_CL
                        ),
                        speculative_after=speculative_after, **context,
                    ))
        if record.commit_mode is ExecMode.FALLBACK:
            # Designs may legitimately route certain aborts straight to
            # the fallback path before the budget is spent (e.g. lrw on
            # a bounded-tracking overflow); such invocations are exempt
            # from the undershoot check.
            early = DESIGN_REGISTRY[config.design].early_fallback_reasons
            early_fallback = early and any(
                reason in early for _, reason in record.aborts
            )
            if record.commit_retries < threshold and not early_fallback:
                violations.append(violation(
                    "fallback-threshold",
                    "fallback commit after only {} counting retries "
                    "(threshold {})".format(record.commit_retries, threshold),
                    **context,
                ))
        elif record.commit_retries is not None and record.commit_retries >= threshold:
            violations.append(violation(
                "fallback-threshold",
                "non-fallback commit with {} counting retries reached the "
                "fallback threshold {}".format(record.commit_retries, threshold),
                **context,
            ))
    return violations


#: Workloads whose atomic regions commute, making the final
#: shared-memory state schedule-invariant (per-core action streams are
#: already schedule-independent by construction). Structural workloads
#: (queues, trees, ...) reach different — individually serializable —
#: final shapes depending on commit interleaving, so only commit-count
#: invariance applies to them.
COMMUTATIVE_WORKLOADS = frozenset({"mwobject"})


def is_commutative_workload(name):
    """Whether ``name``'s final memory state is schedule-invariant.

    Beyond the built-in :data:`COMMUTATIVE_WORKLOADS`, every ``gen:``
    workload qualifies by construction: the generator emits only
    commutative increments over thread-deterministic address streams
    (see :class:`repro.workloads.gen.GeneratedWorkload`).
    """
    if not isinstance(name, str):
        return False
    return name in COMMUTATIVE_WORKLOADS or name.startswith("gen:")


def check_equivalence(outcomes, *, expect_state_equal):
    """Differential check across the outcomes of every explored schedule.

    ``outcomes`` is a non-empty list of ScheduleOutcomes; the first is
    the reference (the default schedule). Per-region commit counts must
    agree everywhere; with ``expect_state_equal`` the final-memory
    digest must as well. Returns (violations, per-outcome index) where
    each violation dict names the diverging schedule by its position.
    """
    violations = []
    reference = outcomes[0]
    for index, outcome in enumerate(outcomes[1:], start=1):
        if outcome.commit_counts != reference.commit_counts:
            violations.append(violation(
                "commit-count-divergence",
                "schedule {} committed a different per-region profile "
                "than the default schedule".format(index),
                schedule=index,
                expected=reference.commit_counts,
                actual=outcome.commit_counts,
            ))
        elif expect_state_equal and outcome.state_sha256 != reference.state_sha256:
            violations.append(violation(
                "state-divergence",
                "schedule {} reached a different final shared-memory "
                "state than the default schedule".format(index),
                schedule=index,
                expected=reference.state_sha256,
                actual=outcome.state_sha256,
            ))
    return violations
