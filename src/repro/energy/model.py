"""A linear static + dynamic energy model standing in for McPAT.

The paper derives its energy results from two effects (§7): CLEAR runs
*faster* (less static energy) and executes *fewer instructions* because
it aborts less (less dynamic energy). Both effects are linear in
quantities the simulator already measures, so a linear event model
preserves the trends:

- static: per-core leakage power integrated over the makespan;
- dynamic: per-event energies for compute ops, cache/memory accesses at
  each level, transaction begins/commits/aborts, and cacheline lock
  operations. Work wasted in aborted attempts (including failed-mode
  discovery) is counted because it was executed.

Units are arbitrary ("nanojoule-ish"); every figure normalizes to the
baseline configuration, exactly as the paper's Fig. 10 does.
"""


class EnergyBreakdown:
    """Static/dynamic decomposition of one run's energy."""

    __slots__ = ("static", "dynamic")

    def __init__(self, static, dynamic):
        self.static = static
        self.dynamic = dynamic

    @property
    def total(self):
        """Static plus dynamic energy."""
        return self.static + self.dynamic

    def to_dict(self):
        """The decomposition as a JSON-serializable dict."""
        return {"static": self.static, "dynamic": self.dynamic}

    @classmethod
    def from_dict(cls, data):
        """Rebuild a breakdown from :meth:`to_dict` output."""
        return cls(static=data["static"], dynamic=data["dynamic"])

    def __repr__(self):
        return "EnergyBreakdown(static={:.1f}, dynamic={:.1f})".format(
            self.static, self.dynamic
        )


class EnergyModel:
    """Per-event energy coefficients (22nm-flavoured relative values)."""

    def __init__(
        self,
        static_power_per_core=0.02,
        compute_op=1.0,
        branch_op=1.0,
        access_l1=1.5,
        access_l2=6.0,
        access_l3=20.0,
        access_mem=60.0,
        access_c2c=26.0,
        access_upgrade=20.0,
        lock_op=2.0,
        tx_begin=12.0,
        tx_commit=10.0,
        tx_abort=25.0,
        multiword_commit=4.0,
    ):
        self.static_power_per_core = static_power_per_core
        self.compute_op = compute_op
        self.branch_op = branch_op
        self.access_energy = {
            "L1": access_l1,
            "L2": access_l2,
            "L3": access_l3,
            "MEM": access_mem,
            "C2C": access_c2c,
            "UPG": access_upgrade,
            "LOCK": lock_op,
        }
        self.tx_begin = tx_begin
        self.tx_commit = tx_commit
        self.tx_abort = tx_abort
        # Constant-time multiword-atomic commits (the bigatomics
        # design) publish the whole write set in one step and cost
        # less than a full commit sequence.
        self.multiword_commit = multiword_commit

    def evaluate(self, stats):
        """Energy of a run from its :class:`MachineStats`."""
        static = (
            self.static_power_per_core * stats.num_cores * stats.makespan_cycles
        )
        dynamic = 0.0
        for level, count in stats.accesses_by_level.items():
            dynamic += self.access_energy.get(level, self.access_energy["L1"]) * count
        dynamic += self.compute_op * stats.compute_ops
        dynamic += self.branch_op * stats.branch_ops
        dynamic += self.tx_begin * stats.tx_begins
        # Design annotations may reclassify some commits as multiword
        # (bigatomics); zero for every other design, where the math is
        # float-identical to charging tx_commit for all commits.
        multiword = getattr(stats, "design_annotations", {}).get(
            "multiword_commits", 0
        )
        if multiword:
            dynamic += self.tx_commit * (stats.total_commits - multiword)
            dynamic += self.multiword_commit * multiword
        else:
            dynamic += self.tx_commit * stats.total_commits
        dynamic += self.tx_abort * stats.total_aborts
        return EnergyBreakdown(static=static, dynamic=dynamic)
