"""Energy model (McPAT substitute)."""

from repro.energy.model import EnergyModel, EnergyBreakdown

__all__ = ["EnergyModel", "EnergyBreakdown"]
