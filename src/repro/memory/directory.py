"""Directory-based ownership tracking (MESI-like, message-free).

The directory records, per cacheline, the set of sharer cores and the
exclusive owner (if any). It is the ground truth used to classify access
latencies (local hit / cache-to-cache transfer / memory) and to find
coherence victims for eager conflict detection.

The directory's set index also defines the lexicographical order for
deadlock-free cacheline locking (paper §5): the paper picks "the set
index of the smallest shared structure, in our case the directory
cache". Addresses sharing a set form a lexicographical *group* and are
locked with the group protocol (probe private cache; if all hit
exclusive, lock silently; otherwise lock the directory set).
"""

from repro.memory.address import directory_set_of_line

_NO_SHARERS = frozenset()


class DirectoryEntry:
    """Coherence metadata for one cacheline."""

    __slots__ = ("sharers", "owner")

    def __init__(self):
        self.sharers = set()
        self.owner = None

    def is_idle(self):
        """No sharers and no owner."""
        return not self.sharers and self.owner is None

    def __repr__(self):
        return "DirectoryEntry(sharers={}, owner={})".format(
            sorted(self.sharers), self.owner
        )


class Directory:
    """Tracks per-line sharers/owner and per-set lock state.

    ``num_sets`` controls the lexicographical group granularity. The
    modeled directory has 800% coverage (Table 2), so entries are never
    evicted; we keep them in a sparse dict.
    """

    def __init__(self, num_sets=4096):
        self.num_sets = num_sets
        self._entries = {}
        # Directory-set locks used by the group locking protocol: set
        # index -> core id holding the whole set locked.
        self._set_locks = {}

    def entry(self, line):
        """The (auto-created) entry for a cacheline."""
        found = self._entries.get(line)
        if found is None:
            found = DirectoryEntry()
            self._entries[line] = found
        return found

    def set_of(self, line):
        """Directory set index for a line (the lexicographical key)."""
        return directory_set_of_line(line, self.num_sets)

    # -- coherence transitions -------------------------------------------

    def record_read(self, core, line):
        """Core obtains a shared copy.

        Returns the previous exclusive owner if the data had to be
        sourced from a remote modified copy, else None. The previous
        owner is downgraded to sharer.
        """
        found = self.entry(line)
        previous_owner = found.owner if found.owner not in (None, core) else None
        if found.owner is not None and found.owner != core:
            found.sharers.add(found.owner)
            found.owner = None
        found.sharers.add(core)
        return previous_owner

    def record_write(self, core, line):
        """Core obtains an exclusive copy.

        Returns (previous_owner, invalidated_sharers): the remote owner
        whose modified copy sourced the data (or None), and the set of
        remote cores whose shared copies were invalidated.
        """
        found = self.entry(line)
        previous_owner = found.owner if found.owner not in (None, core) else None
        sharers = found.sharers
        if sharers:
            invalidated = {c for c in sharers if c != core}
            if previous_owner is not None:
                invalidated.add(previous_owner)
            sharers.clear()
        elif previous_owner is not None:
            invalidated = {previous_owner}
        else:
            # Private re-write, the overwhelmingly common case: nothing
            # to invalidate and nothing to allocate.
            invalidated = _NO_SHARERS
        found.owner = core
        return previous_owner, invalidated

    def drop(self, core, line):
        """Core evicted its copy of the line."""
        found = self._entries.get(line)
        if found is None:
            return
        found.sharers.discard(core)
        if found.owner == core:
            found.owner = None
        if found.is_idle():
            del self._entries[line]

    def is_owner(self, core, line):
        """True if ``core`` holds the line exclusively."""
        found = self._entries.get(line)
        return found is not None and found.owner == core

    def holders(self, line):
        """All cores with a copy (sharers plus owner)."""
        found = self._entries.get(line)
        if found is None:
            return set()
        held = set(found.sharers)
        if found.owner is not None:
            held.add(found.owner)
        return held

    def held_elsewhere(self, core, line):
        """True if any core other than ``core`` holds a copy.

        Allocation-free equivalent of ``holders(line) - {core}`` for the
        per-write upgrade classification.
        """
        found = self._entries.get(line)
        if found is None:
            return False
        owner = found.owner
        if owner is not None and owner != core:
            return True
        sharers = found.sharers
        if not sharers:
            return False
        return len(sharers) > 1 or core not in sharers

    # -- directory-set (group) locks --------------------------------------

    def lock_set(self, core, set_index):
        """Lock a whole directory set for the group protocol.

        Returns True on success, False if another core holds it.
        """
        holder = self._set_locks.get(set_index)
        if holder is not None and holder != core:
            return False
        self._set_locks[set_index] = core
        return True

    def unlock_set(self, core, set_index):
        """Release a directory-set lock held by ``core``."""
        if self._set_locks.get(set_index) == core:
            del self._set_locks[set_index]

    def set_lock_holder(self, set_index):
        """Core currently holding the directory-set lock, or None."""
        return self._set_locks.get(set_index)
