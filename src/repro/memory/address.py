"""Address arithmetic.

The simulator is word addressed (8-byte words). A cacheline holds 8
words. The directory — the smallest shared structure in the hierarchy —
defines the *lexicographical order* used for deadlock-free cacheline
locking (paper §5): addresses are ordered by their directory set index,
and addresses that map to the same set form a lexicographical *group*.
"""

from repro.common.constants import WORDS_PER_LINE


def line_of_word(word_addr):
    """Cacheline id containing the given word address."""
    return word_addr // WORDS_PER_LINE


def word_of_line(line):
    """First word address of the given cacheline."""
    return line * WORDS_PER_LINE


def directory_set_of_line(line, num_sets):
    """Directory set index of a cacheline (the lexicographical order key)."""
    if num_sets <= 0:
        raise ValueError("directory must have at least one set")
    return line % num_sets


def lexicographical_key(line, num_sets):
    """Total order used for deadlock-free lock acquisition.

    Primary key is the directory set index (the paper's lexicographical
    order); the line id breaks ties deterministically *within* a group
    so that group members are themselves acquired in a stable order.
    """
    return (directory_set_of_line(line, num_sets), line)
