"""The assembled memory system: private L1/L2, shared L3, directory, locks.

Latencies follow Table 2 of the paper (L1 1 cycle, L2 10, L3 45, memory
80); cache-to-cache transfers of remote modified data cost a directory
round plus the remote private-cache access.

The memory system performs *performance* state transitions (cache fills,
ownership moves, invalidations). Architectural data movement is handled
by the callers against :class:`repro.memory.shared.SharedMemory`, which
lets the HTM layer buffer speculative stores while still acquiring write
permission eagerly, exactly as a TSX-like eager HTM does.
"""

from repro.common.errors import ProtocolError
from repro.memory.cache import SetAssocCache
from repro.memory.directory import Directory
from repro.memory.locking import LockManager


_NO_CORES = frozenset()


class AccessResult:
    """Outcome of a performance-model memory access."""

    __slots__ = ("latency", "level", "invalidated_cores", "source_core")

    def __init__(self, latency, level, invalidated_cores=(), source_core=None):
        self.latency = latency
        self.level = level
        self.invalidated_cores = (
            frozenset(invalidated_cores) if invalidated_cores else _NO_CORES
        )
        self.source_core = source_core

    def __repr__(self):
        return "AccessResult(latency={}, level={!r})".format(self.latency, self.level)


class MemorySystem:
    """Private L1 + L2 per core, shared L3, directory, and lock manager."""

    def __init__(
        self,
        num_cores,
        l1_size=48 * 1024,
        l1_assoc=12,
        l2_size=512 * 1024,
        l2_assoc=8,
        l3_size=4 * 1024 * 1024,
        l3_assoc=16,
        l1_latency=1,
        l2_latency=10,
        l3_latency=45,
        mem_latency=80,
        directory_sets=4096,
    ):
        self.num_cores = num_cores
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.l3_latency = l3_latency
        self.mem_latency = mem_latency
        self.c2c_latency = l3_latency + l2_latency
        self.l1 = [SetAssocCache(l1_size, l1_assoc) for _ in range(num_cores)]
        self.l2 = [SetAssocCache(l2_size, l2_assoc) for _ in range(num_cores)]
        self.l3 = SetAssocCache(l3_size, l3_assoc)
        self.directory = Directory(directory_sets)
        self.locks = LockManager()

    # -- plain accesses ----------------------------------------------------

    def access(self, core, line, is_write):
        """Perform a performance-model access and return its cost.

        Callers gate accesses against the lock table *before* calling
        this (see :meth:`repro.memory.locking.LockManager.check_access`);
        the memory system assumes the access is allowed to proceed.
        """
        if is_write:
            return self._write(core, line)
        return self._read(core, line)

    def _read(self, core, line):
        # Classification for reads needs no directory state: a private
        # hit is a hit wherever the other copies live.
        if self.l1[core].contains(line):
            level, latency = "L1", self.l1_latency
        elif self.l2[core].contains(line):
            level, latency = "L2", self.l2_latency
        elif self.l3.contains(line):
            level, latency = "L3", self.l3_latency
        else:
            level, latency = "MEM", self.mem_latency
        source = None
        previous_owner = self.directory.record_read(core, line)
        if previous_owner is not None and (level == "L3" or level == "MEM"):
            level, latency, source = "C2C", self.c2c_latency, previous_owner
        self._fill(core, line)
        return AccessResult(latency, level, source_core=source)

    def _write(self, core, line):
        in_l1 = self.l1[core].contains(line)
        if in_l1 or self.l2[core].contains(line):
            if self.directory.is_owner(core, line):
                level, latency = (
                    ("L1", self.l1_latency) if in_l1 else ("L2", self.l2_latency)
                )
            elif self.directory.held_elsewhere(core, line):
                # Upgrade: invalidation round through the directory.
                level, latency = "UPG", self.l3_latency
            elif in_l1:
                level, latency = "L1", self.l1_latency
            else:
                level, latency = "L2", self.l2_latency
        elif self.l3.contains(line):
            level, latency = "L3", self.l3_latency
        else:
            level, latency = "MEM", self.mem_latency
        source = None
        previous_owner, invalidated = self.directory.record_write(core, line)
        if previous_owner is not None and (level == "L3" or level == "MEM"):
            level, latency, source = "C2C", self.c2c_latency, previous_owner
        for victim in invalidated:
            self._invalidate_private(victim, line)
        self._fill(core, line)
        return AccessResult(latency, level, invalidated, source)

    def _fill(self, core, line):
        self.l3.install(line)
        l2 = self.l2[core]
        l2_evicted = l2.install(line)
        if l2_evicted is not None:
            self._drop_private_line(core, l2_evicted)
        l1_evicted = self.l1[core].install(line)
        if l1_evicted is not None and not l2.contains(l1_evicted):
            self.directory.drop(core, l1_evicted)

    def _drop_private_line(self, core, line):
        """A line left the private L2: enforce inclusion and update directory."""
        if self.l1[core].is_pinned(line):
            raise ProtocolError(
                "L2 evicted line {} that core {} holds locked".format(line, core)
            )
        self.l1[core].invalidate(line)
        self.directory.drop(core, line)

    def _invalidate_private(self, victim, line):
        if self.l1[victim].is_pinned(line):
            raise ProtocolError(
                "invalidating line {} locked by core {}".format(line, victim)
            )
        self.l1[victim].invalidate(line)
        self.l2[victim].invalidate(line)

    # -- cacheline locking ---------------------------------------------------

    def acquire_line_lock(self, core, line):
        """Obtain exclusive ownership of a line, pin it, and lock it.

        Returns the access latency paid. Raises
        :class:`repro.memory.locking.LockDenied` if another core holds
        the line locked (the caller parks and retries on release) and
        :class:`OverflowError` if the L1 set has no unpinned way left
        (the caller aborts the cacheline-locked attempt).
        """
        holder = self.locks.holder(line)
        if holder is not None and holder != core:
            from repro.memory.locking import LockDenied

            raise LockDenied(line, holder)
        result = self._write(core, line)
        self.l1[core].pin(line)
        self.l2[core].pin(line)
        self.locks.try_lock(core, line)
        return result.latency

    def release_all_locks(self, core):
        """Bulk-release every lock held by a core; returns released lines."""
        released = self.locks.unlock_all(core)
        for line in released:
            self.l1[core].unpin(line)
            self.l2[core].unpin(line)
        return released

    def probe_exclusive_hit(self, core, line):
        """Group-lock probe: line resident in L1 with exclusive permission?"""
        return self.l1[core].contains(line) and self.directory.is_owner(core, line)

    def evict_core_state(self, core):
        """Drop all private-cache state of a core (used by tests)."""
        for line in list(self.l1[core].resident_lines()):
            self.l1[core].unpin(line)
            self.l1[core].invalidate(line)
        for line in list(self.l2[core].resident_lines()):
            self.l2[core].unpin(line)
            self.l2[core].invalidate(line)
            self.directory.drop(core, line)
