"""Simulated shared memory and a bump allocator.

`SharedMemory` is the architectural state of the machine: a sparse map
from word address to 64-bit integer value. All workload data structures
(arrays, linked lists, trees, hash tables) live here, so atomic-region
bodies perform *real* loads and stores and their footprints genuinely
mutate as the structures mutate.
"""

from repro.common.constants import WORDS_PER_LINE


class SharedMemory:
    """Word-addressed shared memory with zero-initialized contents."""

    def __init__(self):
        self._words = {}
        self.load_count = 0
        self.store_count = 0
        # Optional (addr, value) callback observing every poke. The
        # runtime oracle mirrors workload-level initialization writes
        # (e.g. node-pool refills issued outside any AR) into its
        # shadow memory through this; None outside oracle runs.
        self.poke_mirror = None

    def load(self, word_addr):
        """Architectural load of one word."""
        self.load_count += 1
        return self._words.get(word_addr, 0)

    def store(self, word_addr, value):
        """Architectural store of one word."""
        self.store_count += 1
        self._words[word_addr] = value

    def peek(self, word_addr):
        """Read without counting as an access (for tests and debugging)."""
        return self._words.get(word_addr, 0)

    def poke(self, word_addr, value):
        """Write without counting as an access (workload initialization)."""
        self._words[word_addr] = value
        if self.poke_mirror is not None:
            self.poke_mirror(word_addr, value)

    def snapshot(self):
        """Copy of the current contents (for invariant checks in tests)."""
        return dict(self._words)


class Allocator:
    """Bump allocator handing out word-addressed regions of memory.

    Workloads use it to lay out their data structures. ``align_line=True``
    starts the allocation at a cacheline boundary, which several of the
    paper's benchmarks rely on (e.g. mwobject puts four counters in one
    cacheline; arrayswap spreads elements over distinct lines).
    """

    def __init__(self, base=WORDS_PER_LINE):
        if base <= 0:
            raise ValueError("allocator base must be positive (0 is reserved)")
        self._next = base

    def alloc(self, num_words, align_line=False):
        """Allocate ``num_words`` words, returning the base word address."""
        if num_words <= 0:
            raise ValueError("allocation size must be positive")
        if align_line and self._next % WORDS_PER_LINE != 0:
            self._next += WORDS_PER_LINE - (self._next % WORDS_PER_LINE)
        addr = self._next
        self._next += num_words
        return addr

    def alloc_lines(self, num_lines):
        """Allocate whole cachelines, returning the base word address."""
        return self.alloc(num_lines * WORDS_PER_LINE, align_line=True)

    @property
    def high_water(self):
        """First unallocated word address."""
        return self._next
