"""Set-associative cache model with LRU replacement and line pinning.

Caches track only cacheline ids (tags), not data — data lives in
:class:`repro.memory.shared.SharedMemory`. Pinning models cacheline
locking residency: a locked line may not be evicted, and a cache set
whose every way is pinned cannot accept a new line. The same mechanism
answers the discovery-phase assessment *"can we simultaneously lock the
cachelines accessed within the AR?"* (paper §4.1, item 2).
"""

from collections import OrderedDict

from repro.common.errors import ConfigurationError


class CacheLookup:
    """Result of a cache probe."""

    __slots__ = ("hit", "evicted")

    def __init__(self, hit, evicted=None):
        self.hit = hit
        self.evicted = evicted

    def __repr__(self):
        return "CacheLookup(hit={}, evicted={})".format(self.hit, self.evicted)


class SetAssocCache:
    """An LRU set-associative cache over cacheline ids.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes.
    assoc:
        Number of ways per set.
    line_bytes:
        Cacheline size in bytes (64 in the modeled machine).
    """

    def __init__(self, size_bytes, assoc, line_bytes=64):
        num_lines = size_bytes // line_bytes
        if num_lines <= 0 or assoc <= 0:
            raise ConfigurationError("cache must hold at least one line")
        if num_lines % assoc != 0:
            raise ConfigurationError(
                "cache size {} with associativity {} does not divide evenly".format(
                    size_bytes, assoc
                )
            )
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        # Each set is an OrderedDict line -> pinned flag; insertion order is
        # LRU order (least recently used first).
        self._sets = [OrderedDict() for _ in range(self.num_sets)]

    def set_index(self, line):
        """Cache set an address maps to."""
        return line % self.num_sets

    def contains(self, line):
        """True if the line is currently resident."""
        return line in self._sets[line % self.num_sets]

    def touch(self, line):
        """Mark the line most recently used. Returns True if resident."""
        entries = self._sets[self.set_index(line)]
        if line not in entries:
            return False
        entries.move_to_end(line)
        return True

    def insert(self, line):
        """Install a line, evicting the LRU unpinned victim if needed.

        Returns a :class:`CacheLookup` whose ``hit`` reflects prior
        residency and whose ``evicted`` is the victim line id or None.
        Raises :class:`OverflowError` if the set is full of pinned lines.
        """
        hit = line in self._sets[line % self.num_sets]
        return CacheLookup(hit=hit, evicted=self.install(line))

    def install(self, line):
        """Allocation-free :meth:`insert`: returns the victim line or None.

        The per-access fill path only needs the eviction victim, so this
        skips the :class:`CacheLookup` construction (three per memory
        access otherwise).
        """
        entries = self._sets[line % self.num_sets]
        if line in entries:
            entries.move_to_end(line)
            return None
        if len(entries) >= self.assoc:
            victim = self._find_victim(entries)
            if victim is None:
                raise OverflowError(
                    "cache set {} has all ways pinned".format(line % self.num_sets)
                )
            del entries[victim]
            entries[line] = False
            return victim
        entries[line] = False
        return None

    @staticmethod
    def _find_victim(entries):
        for candidate, pinned in entries.items():
            if not pinned:
                return candidate
        return None

    def pin(self, line):
        """Pin a resident line so it cannot be evicted (cacheline lock)."""
        entries = self._sets[self.set_index(line)]
        if line not in entries:
            raise KeyError("cannot pin non-resident line {}".format(line))
        entries[line] = True

    def unpin(self, line):
        """Release a pin. Missing lines are ignored (already evicted)."""
        entries = self._sets[self.set_index(line)]
        if line in entries:
            entries[line] = False

    def is_pinned(self, line):
        """True if the line is resident and pinned."""
        entries = self._sets[self.set_index(line)]
        return entries.get(line, False)

    def invalidate(self, line):
        """Drop a line (remote invalidation). Pinned lines cannot be dropped."""
        entries = self._sets[self.set_index(line)]
        if line in entries:
            if entries[line]:
                raise OverflowError("cannot invalidate pinned (locked) line")
            del entries[line]

    def pinned_count(self, set_index):
        """Number of pinned ways in the given set."""
        return sum(1 for pinned in self._sets[set_index].values() if pinned)

    def can_coreside(self, lines):
        """True if all given lines could be resident simultaneously.

        This is the discovery lockability test: for every cache set, the
        number of distinct lines (from ``lines``) mapping to it must not
        exceed the associativity. Duplicate lines are collapsed.
        """
        per_set = {}
        for line in set(lines):
            idx = self.set_index(line)
            per_set[idx] = per_set.get(idx, 0) + 1
            if per_set[idx] > self.assoc:
                return False
        return True

    def resident_lines(self):
        """All resident line ids (for tests)."""
        lines = []
        for entries in self._sets:
            lines.extend(entries.keys())
        return lines
