"""Cacheline lock manager.

Implements the multi-address cacheline locking used by the NS-CL and
S-CL execution modes, including the two deadlock-avoidance rules from
paper §4.4.2:

- *NACK rule* (Fig. 5): a request from a non-locking load (an S-CL or
  plain-speculative access that does not itself intend to lock the line)
  that reaches a locked cacheline is NACKed; the requester must abort.
- *Directory-retry rule* (Fig. 6): requests to locked cachelines are
  retried rather than parked inside the directory, so the directory
  entry never blocks in a transient state; in this model the requester
  simply re-issues when the line unlocks, which is expressed as a
  :class:`LockDenied` with the current holder so the engine can park the
  *core* (not the directory) and wake it on release.

Locks are only acquired in lexicographical (directory-set) order by the
callers, which rules out cycles among lockers; NACKs rule out cycles
between lockers and non-locking accessors.
"""

from repro.common.errors import ProtocolError


class NackError(Exception):
    """A non-locking access reached a locked line and was NACKed.

    The requester must abort its atomic region (paper §4.4.2).
    """

    def __init__(self, line, holder):
        super().__init__("line {} locked by core {}".format(line, holder))
        self.line = line
        self.holder = holder


class LockDenied(Exception):
    """A lock or blocking access must wait for the current holder.

    Unlike :class:`NackError` this is not an abort: the engine parks the
    requesting core and retries when the holder releases (the
    directory-retry rule keeps the directory itself unblocked).
    """

    def __init__(self, line, holder):
        super().__init__("line {} held by core {}".format(line, holder))
        self.line = line
        self.holder = holder


class LockManager:
    """Tracks which core holds each cacheline locked."""

    def __init__(self):
        self._holders = {}
        self._held_by_core = {}

    def holder(self, line):
        """Core holding the line locked, or None."""
        return self._holders.get(line)

    def is_locked(self, line):
        """True if any core holds the line locked."""
        return line in self._holders

    def held_lines(self, core):
        """Frozen view of the lines a core currently holds locked."""
        return set(self._held_by_core.get(core, ()))

    def try_lock(self, core, line):
        """Attempt to lock a line for ``core``.

        Returns True on success (idempotent for re-locking an owned
        line); raises :class:`LockDenied` if another core holds it.
        """
        current = self._holders.get(line)
        if current is not None and current != core:
            raise LockDenied(line, current)
        self._holders[line] = core
        self._held_by_core.setdefault(core, set()).add(line)
        return True

    def check_access(self, core, line, nackable):
        """Gate a plain (non-locking) access against the lock table.

        Accesses by the lock holder pass. Other accesses raise
        :class:`NackError` when ``nackable`` (speculative requesters,
        which abort) or :class:`LockDenied` otherwise (the requester
        waits for release).
        """
        current = self._holders.get(line)
        if current is None or current == core:
            return
        if nackable:
            raise NackError(line, current)
        raise LockDenied(line, current)

    def unlock(self, core, line):
        """Release one line held by ``core``."""
        if self._holders.get(line) != core:
            raise ProtocolError(
                "core {} unlocking line {} it does not hold".format(core, line)
            )
        del self._holders[line]
        held = self._held_by_core.get(core)
        held.discard(line)
        if not held:
            del self._held_by_core[core]

    def unlock_all(self, core):
        """Bulk release (paper §5.1: "unlocked with a bulk operation").

        Returns the set of lines released.
        """
        held = self._held_by_core.pop(core, set())
        for line in held:
            if self._holders.get(line) != core:
                raise ProtocolError("lock table inconsistent for core {}".format(core))
            del self._holders[line]
        return held

    def locked_line_count(self):
        """Total number of locked lines (for invariant checks)."""
        return len(self._holders)

    def snapshot(self):
        """JSON-serializable ``{holder_core: sorted locked lines}`` map.

        Used by the end-of-run leak oracle and the stall diagnostic
        dump, where naming the exact leaked lines (not just a count)
        makes the failure actionable.
        """
        return {
            core: sorted(lines)
            for core, lines in sorted(self._held_by_core.items())
        }
