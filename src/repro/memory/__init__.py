"""Memory substrate: addresses, shared memory, caches, directory, locking.

This package models the parts of the gem5/Ruby memory system that CLEAR's
behaviour depends on, at cacheline granularity:

- :mod:`repro.memory.address` — word/cacheline/directory-set mapping.
- :mod:`repro.memory.shared` — the simulated shared memory and allocator.
- :mod:`repro.memory.cache` — set-associative caches with LRU and pinning
  (pinning models cacheline locking residency).
- :mod:`repro.memory.directory` — ownership/sharer tracking (MESI-like)
  used for conflict detection and cache-to-cache transfer latencies.
- :mod:`repro.memory.locking` — the cacheline lock manager with the
  NACK and directory-retry deadlock-avoidance rules of the paper.
- :mod:`repro.memory.system` — ties the above into a `MemorySystem` with
  Table 2 latencies.
"""

from repro.memory.address import line_of_word, word_of_line, directory_set_of_line
from repro.memory.shared import SharedMemory, Allocator
from repro.memory.cache import SetAssocCache, CacheLookup
from repro.memory.directory import Directory, DirectoryEntry
from repro.memory.locking import LockManager, LockDenied, NackError
from repro.memory.system import MemorySystem, AccessResult

__all__ = [
    "line_of_word",
    "word_of_line",
    "directory_set_of_line",
    "SharedMemory",
    "Allocator",
    "SetAssocCache",
    "CacheLookup",
    "Directory",
    "DirectoryEntry",
    "LockManager",
    "LockDenied",
    "NackError",
    "MemorySystem",
    "AccessResult",
]
