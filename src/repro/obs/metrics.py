"""Named counters and histograms backing the measurement surface.

:class:`MetricRegistry` is always on — unlike tracing it costs only the
increments themselves, and every observation is a pure function of
simulated state (cycle counts, retry counts), so results are identical
whether or not a trace sink is attached.

Histograms use power-of-two buckets: an observation ``v`` lands in
bucket ``v.bit_length()`` (bucket ``k`` holds ``2**(k-1) <= v <
2**k``; bucket 0 holds exactly 0). That keeps ``observe()`` to one
integer op on the hot path while preserving the order-of-magnitude
shape that latency distributions are read for.
"""


class MetricCounter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name, value=0):
        self.name = name
        self.value = value

    def inc(self, amount=1):
        self.value += amount

    def __repr__(self):
        return "MetricCounter({!r}, {})".format(self.name, self.value)


class Histogram:
    """A named power-of-two-bucket histogram of non-negative integers."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets = {}

    def observe(self, value):
        """Record one observation (clamped below at 0)."""
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        """Arithmetic mean of every observation (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_dict(self):
        """JSON-serializable form (bucket keys stringified)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(bucket): count
                for bucket, count in sorted(self.buckets.items())
            },
        }

    @classmethod
    def from_dict(cls, name, data):
        """Rebuild a histogram from :meth:`to_dict` output."""
        histogram = cls(name)
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        histogram.buckets = {
            int(bucket): count for bucket, count in data["buckets"].items()
        }
        return histogram

    def __repr__(self):
        return "Histogram({!r}, count={}, mean={:.1f})".format(
            self.name, self.count, self.mean
        )


class MetricRegistry:
    """A flat namespace of counters and histograms.

    ``counter(name)``/``histogram(name)`` return the existing metric or
    create it, so callers bind metrics once at construction time and
    pay plain attribute access afterwards.
    """

    __slots__ = ("_counters", "_histograms")

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    def counter(self, name):
        """The counter registered under ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = MetricCounter(name)
        return counter

    def histogram(self, name):
        """The histogram registered under ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self):
        """Name-sorted list of every registered counter."""
        return [self._counters[name] for name in sorted(self._counters)]

    def histograms(self):
        """Name-sorted list of every registered histogram."""
        return [self._histograms[name] for name in sorted(self._histograms)]

    def counter_value(self, name, default=0):
        """Current value of a counter (``default`` if never registered)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def to_dict(self):
        """The whole registry as a JSON-serializable dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = MetricCounter(name, value)
        for name, histogram in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(name, histogram)
        return registry
