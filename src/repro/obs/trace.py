"""Trace sinks: where the simulator's event stream goes.

The simulator takes an optional sink (``Machine(..., trace=sink)``) and
emits :mod:`repro.obs.events` objects into it behind ``if trace`` /
``is not None`` guards — with no sink attached the hot path pays one
skipped comparison per emission site and allocates nothing.

:class:`EventTrace` is the standard sink: a bounded ring buffer that
keeps the most recent ``capacity`` events and counts what it had to
drop, so tracing a pathological run cannot exhaust host memory and a
stall diagnostic can still ship the tail of the story.
"""

from collections import deque

from repro.obs.events import event_from_dict


class TraceSink:
    """Protocol for trace sinks: anything with an ``emit(event)``.

    A sink must be *truthy* (the emission guard is ``if trace:``), must
    accept every :class:`~repro.obs.events.TraceEvent` subclass, and
    must not raise — the simulator treats emission as infallible.
    :class:`EventTrace` is the reference implementation; a custom sink
    (e.g. streaming events straight to a file or a socket) only needs
    this one method.
    """

    def emit(self, event):
        raise NotImplementedError


class EventTrace(TraceSink):
    """Bounded in-memory event ring buffer.

    Keeps the newest ``capacity`` events; older ones are dropped and
    counted in ``dropped``. ``emitted`` counts every event ever offered,
    so ``emitted - dropped == len(trace)``.
    """

    __slots__ = ("capacity", "emitted", "dropped", "_events")

    #: Default ring capacity — large enough to hold every event of the
    #: micro/quick scales outright, bounded for pathological runs.
    DEFAULT_CAPACITY = 1 << 20

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.emitted = 0
        self.dropped = 0
        self._events = deque(maxlen=capacity)

    def __bool__(self):
        # Always truthy: the emission guard is ``if trace:``, and an
        # empty (or newly cleared) buffer must still record.
        return True

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def emit(self, event):
        """Append one event, evicting the oldest when full."""
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        events.append(event)

    def events(self):
        """The buffered events, oldest first, as a list."""
        return list(self._events)

    def tail(self, count):
        """The newest ``count`` events, oldest-of-the-tail first."""
        if count <= 0:
            return []
        events = self._events
        return list(events)[max(0, len(events) - count):]

    def clear(self):
        """Drop every buffered event (counters keep accumulating)."""
        self._events.clear()

    def counts_by_kind(self):
        """``{kind: occurrences}`` over the buffered events."""
        counts = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def to_dicts(self):
        """Every buffered event in dict form (oldest first)."""
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_dicts(cls, dicts, capacity=None):
        """Rebuild a trace from :meth:`to_dicts` output."""
        trace = cls(capacity if capacity is not None else cls.DEFAULT_CAPACITY)
        for data in dicts:
            trace.emit(event_from_dict(data))
        return trace
