"""Chrome ``trace_event`` JSON exporter.

Converts an :class:`~repro.obs.trace.EventTrace` into the JSON object
format understood by Perfetto and ``chrome://tracing``:

- one lane (thread) per simulated core, named via ``"M"`` metadata
  events;
- one complete (``"ph": "X"``) span per AR attempt, from its
  ``ar_begin`` to its ``ar_commit``/``ar_abort``, colored by outcome;
- a flow arrow (``"s"``/``"f"``) from the enemy core's lane to every
  abort that names one, so conflict chains read directly off the
  timeline;
- instant (``"i"``) events for cacheline locks, fallback and
  power-token transitions, parks/wakeups, and injected faults.

One simulated cycle is rendered as one microsecond of trace time.
"""

import json

from repro.core.modes import ExecMode

#: Catapult reserved color names, keyed by how the AR attempt ended.
COMMIT_COLORS = {
    ExecMode.SPECULATIVE: "good",
    ExecMode.NS_CL: "vsync_highlight_color",
    ExecMode.S_CL: "thread_state_runnable",
    ExecMode.FALLBACK: "bad",
    ExecMode.FAILED_DISCOVERY: "olive",
}
ABORT_COLOR = "terrible"

_MODE_LABELS = {
    ExecMode.SPECULATIVE: "spec",
    ExecMode.FAILED_DISCOVERY: "failed",
    ExecMode.NS_CL: "NS-CL",
    ExecMode.S_CL: "S-CL",
    ExecMode.FALLBACK: "fallback",
}


def _region_label(region):
    if isinstance(region, (tuple, list)):
        return ":".join(str(part) for part in region)
    return str(region)


def _span(begin, end_cycle, name, color, args):
    return {
        "name": name,
        "cat": "ar",
        "ph": "X",
        "ts": begin.cycle,
        "dur": max(1, end_cycle - begin.cycle),
        "pid": 0,
        "tid": begin.core,
        "cname": color,
        "args": args,
    }


def _instant(event, name, args=None):
    return {
        "name": name,
        "cat": event.kind,
        "ph": "i",
        "s": "t",
        "ts": event.cycle,
        "pid": 0,
        "tid": event.core,
        "args": args or {},
    }


def chrome_trace(trace, num_cores=None):
    """The trace as a Chrome ``trace_event`` JSON object (a dict)."""
    events = []
    cores = set(range(num_cores)) if num_cores else set()
    open_begins = {}  # core -> ARBegin of the attempt in flight
    flow_id = 0
    for event in trace:
        kind = event.kind
        cores.add(event.core)
        if kind == "ar_begin":
            open_begins[event.core] = event
        elif kind == "ar_commit":
            begin = open_begins.pop(event.core, None)
            if begin is not None:
                events.append(_span(
                    begin, event.cycle,
                    "AR {} [{}]".format(
                        _region_label(event.region),
                        _MODE_LABELS.get(event.mode, "?"),
                    ),
                    COMMIT_COLORS.get(event.mode, "good"),
                    {
                        "outcome": "commit",
                        "mode": event.mode.value,
                        "attempt": event.attempt,
                        "retries": event.retries,
                    },
                ))
        elif kind == "ar_abort":
            begin = open_begins.pop(event.core, None)
            args = {
                "outcome": "abort",
                "reason": event.reason.value,
                "attempt": event.attempt,
            }
            if event.line is not None:
                args["line"] = event.line
            if event.enemy is not None:
                args["enemy_core"] = event.enemy
                args["enemy_write"] = bool(event.enemy_write)
            if begin is not None:
                # ``begin.mode``: an attempt that slid into failed-mode
                # discovery still reports the mode it began in.
                events.append(_span(
                    begin, event.cycle,
                    "AR {} [{}] aborted: {}".format(
                        _region_label(event.region),
                        _MODE_LABELS.get(begin.mode, "?"),
                        event.reason.value,
                    ),
                    ABORT_COLOR, args,
                ))
            else:
                # Explicit Fallback: aborted at begin, no span to close.
                events.append(_instant(
                    event, "abort: {}".format(event.reason.value), args
                ))
            if event.enemy is not None and event.enemy != event.core:
                cores.add(event.enemy)
                flow_id += 1
                events.append({
                    "name": "conflict", "cat": "abort-arrow", "ph": "s",
                    "id": flow_id, "ts": event.cycle, "pid": 0,
                    "tid": event.enemy,
                })
                events.append({
                    "name": "conflict", "cat": "abort-arrow", "ph": "f",
                    "bp": "e", "id": flow_id, "ts": event.cycle, "pid": 0,
                    "tid": event.core,
                })
        elif kind == "lock_acquire":
            events.append(_instant(
                event, "lock 0x{:x}".format(event.line), {"line": event.line}
            ))
        elif kind == "locks_release":
            events.append(_instant(
                event, "unlock {} line(s)".format(len(event.lines)),
                {"lines": list(event.lines)},
            ))
        elif kind == "fallback_acquire":
            events.append(_instant(
                event,
                "fallback guard (read)" if event.shared else "fallback lock",
                {"shared": event.shared},
            ))
        elif kind == "fallback_release":
            events.append(_instant(
                event,
                "fallback guard released" if event.shared
                else "fallback released",
                {"shared": event.shared},
            ))
        elif kind == "power_acquire":
            events.append(_instant(event, "power token"))
        elif kind == "power_release":
            events.append(_instant(event, "power token released"))
        elif kind == "park":
            events.append(_instant(
                event, "park ({})".format(event.waiting_on),
                {"waiting_on": event.waiting_on},
            ))
        elif kind == "wakeup":
            events.append(_instant(
                event, "wakeup", {"parked_cycles": event.parked_cycles}
            ))
        elif kind == "fault_injected":
            events.append(_instant(
                event, "injected fault: {}".format(event.reason.value),
                {"reason": event.reason.value, "attempt": event.attempt},
            ))
    metadata = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "repro simulated machine"},
    }]
    for core in sorted(cores):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": core,
            "args": {"name": "core {}".format(core)},
        })
        metadata.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0, "tid": core,
            "args": {"sort_index": core},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "metadata": {
            "unit": "1 trace microsecond = 1 simulated cycle",
            "emitted": trace.emitted,
            "dropped": trace.dropped,
        },
    }


def write_chrome_trace(trace, path, num_cores=None):
    """Serialize :func:`chrome_trace` output to ``path``."""
    payload = chrome_trace(trace, num_cores=num_cores)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload
