"""The typed, timestamped event taxonomy of the simulator.

Every event is a slotted class with a ``kind`` tag and a ``cycle``
timestamp (simulated cycles). The taxonomy (DESIGN.md §10):

=================== =====================================================
kind                meaning
=================== =====================================================
``ar_begin``        an AR attempt started (any execution mode)
``ar_commit``       the AR committed (mode, counted retries)
``ar_abort``        an attempt aborted: reason, conflicting line, enemy
``lock_acquire``    a CL-mode attempt locked one cacheline
``locks_release``   bulk release of a core's cacheline locks
``fallback_acquire`` fallback lock taken (``shared`` = CL read guard)
``fallback_release`` fallback lock dropped
``power_acquire``   the PowerTM token was granted
``power_release``   the PowerTM token was returned
``park``            a core blocked on a lock/guard (``waiting_on``)
``wakeup``          a parked core was released (``parked_cycles``)
``fault_injected``  the chaos layer forced an abort on this attempt
=================== =====================================================

Events round-trip losslessly through ``to_dict()``/
:func:`event_from_dict`: enums are stored by value, tuple region ids
become lists (the same convention as
:meth:`repro.sim.stats.MachineStats.to_dict`). The dict form is what
traces serialize as, what crosses process boundaries, and what the
golden trace suite pins byte-for-byte.

The serializability checkers emit *no* events and consume none: the
online monitor (:mod:`repro.sim.monitor`) hooks commits and first
reads directly, so ``machine.event_count`` — and therefore every
events/second throughput comparison — is identical with checking on
or off.
"""

import enum

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason

#: kind -> event class, populated as subclasses are defined.
EVENT_KINDS = {}


def _jsonify(value):
    """JSON-safe form of one event field (enums by value, tuples as lists)."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, tuple):
        return list(value)
    return value


#: Field-name driven parsers inverting :func:`_jsonify` where the JSON
#: form is ambiguous. Fields are named consistently across the taxonomy
#: so one table covers every class.
_FIELD_PARSERS = {
    "mode": lambda value: None if value is None else ExecMode(value),
    "reason": lambda value: None if value is None else AbortReason(value),
    "region": lambda value: tuple(value) if isinstance(value, list) else value,
    "lines": lambda value: tuple(value),
}


class TraceEvent:
    """Base of every trace event: a kind tag plus slotted payload."""

    __slots__ = ()
    kind = None

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        if cls.kind is None:
            raise TypeError("{} must define a kind tag".format(cls.__name__))
        if cls.kind in EVENT_KINDS:
            raise TypeError("duplicate event kind {!r}".format(cls.kind))
        EVENT_KINDS[cls.kind] = cls

    def to_dict(self):
        """JSON-serializable form; :func:`event_from_dict` inverts it."""
        data = {"kind": self.kind}
        for name in self.__slots__:
            data[name] = _jsonify(getattr(self, name))
        return data

    def __eq__(self, other):
        return (
            type(other) is type(self)
            and all(
                getattr(self, name) == getattr(other, name)
                for name in self.__slots__
            )
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((self.kind,) + tuple(
            getattr(self, name) for name in self.__slots__
        ))

    def __repr__(self):
        fields = ", ".join(
            "{}={!r}".format(name, getattr(self, name))
            for name in self.__slots__
        )
        return "{}({})".format(type(self).__name__, fields)


def event_from_dict(data):
    """Rebuild a typed event from its ``to_dict()`` form."""
    cls = EVENT_KINDS.get(data.get("kind"))
    if cls is None:
        raise ValueError("unknown trace event kind {!r}".format(data.get("kind")))
    kwargs = {}
    for name in cls.__slots__:
        value = data[name]
        parser = _FIELD_PARSERS.get(name)
        kwargs[name] = parser(value) if parser is not None else value
    return cls(**kwargs)


class ARBegin(TraceEvent):
    """An AR attempt began (speculative, CL, or fallback)."""

    __slots__ = ("cycle", "core", "region", "mode", "attempt")
    kind = "ar_begin"

    def __init__(self, cycle, core, region, mode, attempt):
        self.cycle = cycle
        self.core = core
        self.region = region
        self.mode = mode
        self.attempt = attempt


class ARCommit(TraceEvent):
    """The AR committed after ``retries`` counted retries."""

    __slots__ = ("cycle", "core", "region", "mode", "attempt", "retries")
    kind = "ar_commit"

    def __init__(self, cycle, core, region, mode, attempt, retries):
        self.cycle = cycle
        self.core = core
        self.region = region
        self.mode = mode
        self.attempt = attempt
        self.retries = retries


class ARAbort(TraceEvent):
    """An attempt aborted.

    ``line``/``enemy``/``enemy_write`` carry the forensic detail for
    memory conflicts and NACKs: the conflicting cacheline, the core
    whose access doomed us, and whether that access was a write.
    ``mode`` is None for an Explicit Fallback abort (the attempt never
    started — the fallback lock was found taken at begin).
    """

    __slots__ = ("cycle", "core", "region", "mode", "attempt", "reason",
                 "line", "enemy", "enemy_write")
    kind = "ar_abort"

    def __init__(self, cycle, core, region, mode, attempt, reason,
                 line=None, enemy=None, enemy_write=None):
        self.cycle = cycle
        self.core = core
        self.region = region
        self.mode = mode
        self.attempt = attempt
        self.reason = reason
        self.line = line
        self.enemy = enemy
        self.enemy_write = enemy_write


class LockAcquire(TraceEvent):
    """A CL-mode attempt locked one cacheline."""

    __slots__ = ("cycle", "core", "line")
    kind = "lock_acquire"

    def __init__(self, cycle, core, line):
        self.cycle = cycle
        self.core = core
        self.line = line


class LocksRelease(TraceEvent):
    """Bulk release of every cacheline lock a core held."""

    __slots__ = ("cycle", "core", "lines")
    kind = "locks_release"

    def __init__(self, cycle, core, lines):
        self.cycle = cycle
        self.core = core
        self.lines = lines


class FallbackAcquire(TraceEvent):
    """The fallback lock was taken (``shared``: CL read guard vs writer)."""

    __slots__ = ("cycle", "core", "shared")
    kind = "fallback_acquire"

    def __init__(self, cycle, core, shared):
        self.cycle = cycle
        self.core = core
        self.shared = shared


class FallbackRelease(TraceEvent):
    """The fallback lock was dropped."""

    __slots__ = ("cycle", "core", "shared")
    kind = "fallback_release"

    def __init__(self, cycle, core, shared):
        self.cycle = cycle
        self.core = core
        self.shared = shared


class PowerAcquire(TraceEvent):
    """The PowerTM token was granted to ``core``."""

    __slots__ = ("cycle", "core")
    kind = "power_acquire"

    def __init__(self, cycle, core):
        self.cycle = cycle
        self.core = core


class PowerRelease(TraceEvent):
    """The PowerTM token was returned by ``core``."""

    __slots__ = ("cycle", "core")
    kind = "power_release"

    def __init__(self, cycle, core):
        self.cycle = cycle
        self.core = core


class Park(TraceEvent):
    """A core blocked on a contended resource.

    ``waiting_on`` is a compact string: ``"line:<id>"`` (cacheline
    lock), ``"dirset:<id>"`` (directory-set lock), ``"fallback"`` (the
    fallback lock), or ``"nack"`` (post-NACK backoff park).
    """

    __slots__ = ("cycle", "core", "waiting_on")
    kind = "park"

    def __init__(self, cycle, core, waiting_on):
        self.cycle = cycle
        self.core = core
        self.waiting_on = waiting_on


class Wakeup(TraceEvent):
    """A parked core was woken by some lock/guard release."""

    __slots__ = ("cycle", "core", "parked_cycles")
    kind = "wakeup"

    def __init__(self, cycle, core, parked_cycles):
        self.cycle = cycle
        self.core = core
        self.parked_cycles = parked_cycles


class FaultInjected(TraceEvent):
    """The chaos layer struck this attempt with an injected abort."""

    __slots__ = ("cycle", "core", "reason", "attempt")
    kind = "fault_injected"

    def __init__(self, cycle, core, reason, attempt):
        self.cycle = cycle
        self.core = core
        self.reason = reason
        self.attempt = attempt
