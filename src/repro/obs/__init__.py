"""Observability: structured tracing, metrics, and exporters.

The subsystem every profiling and regression harness hangs off:

- :mod:`repro.obs.events` — the typed, timestamped event taxonomy
  (AR begin/abort/commit, cacheline lock/unlock, fallback entry/exit,
  power-token handoff, park/wakeup, injected faults).
- :mod:`repro.obs.trace` — the :class:`TraceSink` protocol and the
  ring-buffer :class:`EventTrace` the simulator emits into when (and
  only when) a trace is attached; with no sink attached every hook is
  a skipped ``None`` check, so default runs pay nothing.
- :mod:`repro.obs.metrics` — always-on :class:`MetricRegistry` of
  named counters and power-of-two-bucket histograms backing
  :class:`~repro.sim.stats.MachineStats`.
- :mod:`repro.obs.chrome` — Chrome ``trace_event`` JSON exporter (one
  lane per core, AR spans colored by outcome, abort arrows to the
  enemy core; loads in Perfetto / ``chrome://tracing``).
- :mod:`repro.obs.report` — the per-region forensic text report
  ("AR 17 on core 3: 1 speculative abort (WRITE conflict on line
  0x4a80 with core 9, cycle 12402) -> NS-CL commit at 12873").

Tracing never changes simulated behaviour: figure JSON is
byte-identical with tracing off and on (enforced by the golden suite).
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.events import (
    EVENT_KINDS,
    ARAbort,
    ARBegin,
    ARCommit,
    FallbackAcquire,
    FallbackRelease,
    FaultInjected,
    LockAcquire,
    LocksRelease,
    Park,
    PowerAcquire,
    PowerRelease,
    TraceEvent,
    Wakeup,
)
from repro.obs.metrics import Histogram, MetricCounter, MetricRegistry
from repro.obs.report import forensic_report, region_records, write_forensic_report
from repro.obs.trace import EventTrace, TraceSink

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "ARBegin",
    "ARCommit",
    "ARAbort",
    "LockAcquire",
    "LocksRelease",
    "FallbackAcquire",
    "FallbackRelease",
    "PowerAcquire",
    "PowerRelease",
    "Park",
    "Wakeup",
    "FaultInjected",
    "TraceSink",
    "EventTrace",
    "MetricRegistry",
    "MetricCounter",
    "Histogram",
    "chrome_trace",
    "write_chrome_trace",
    "forensic_report",
    "region_records",
    "write_forensic_report",
]
