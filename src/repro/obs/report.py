"""Per-region forensic report: every AR's life story in plain text.

Folds the flat event stream back into per-invocation records — one
record per committed AR, carrying each attempt's mode, outcome, and
(for conflicts) the precise cause — and renders lines like::

    AR 17 on core 3: 1 speculative abort (WRITE conflict on line
    0x4a80 with core 9, cycle 12402) -> NS-CL commit at 12873

The record form (:func:`region_records`) is what tests assert against;
:func:`forensic_report` is the human rendering.
"""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason

_MODE_LABELS = {
    ExecMode.SPECULATIVE: "speculative",
    ExecMode.FAILED_DISCOVERY: "failed-discovery",
    ExecMode.NS_CL: "NS-CL",
    ExecMode.S_CL: "S-CL",
    ExecMode.FALLBACK: "fallback",
    None: "pre-begin",
}

#: Reasons the chaos layer injects; their aborts carry no enemy core.
_INJECTED_REASONS = frozenset(
    reason for reason in AbortReason if reason.value.startswith("injected")
)


def _region_label(region):
    if isinstance(region, (tuple, list)):
        return ":".join(str(part) for part in region)
    return str(region)


def region_records(trace):
    """Fold a trace into per-invocation records, commit order per core.

    Each record: ``{"core", "region", "attempts", "commit_cycle",
    "commit_mode", "retries"}``; each attempt: ``{"mode", "begin_cycle",
    "end_cycle", "outcome", "reason", "line", "enemy", "enemy_write"}``.
    An uncommitted invocation still in flight when the trace ends is
    dropped (its story has no ending to report).
    """
    records = []
    open_records = {}  # core -> record under construction

    def attempt_for(record, event, mode):
        attempts = record["attempts"]
        if attempts and attempts[-1]["outcome"] is None:
            return attempts[-1]
        attempt = {
            "mode": mode, "begin_cycle": event.cycle, "end_cycle": None,
            "outcome": None, "reason": None, "line": None, "enemy": None,
            "enemy_write": None,
        }
        attempts.append(attempt)
        return attempt

    def record_for(event):
        record = open_records.get(event.core)
        if record is None:
            record = open_records[event.core] = {
                "core": event.core, "region": event.region, "attempts": [],
                "commit_cycle": None, "commit_mode": None, "retries": None,
            }
        return record

    for event in trace:
        kind = event.kind
        if kind == "ar_begin":
            record = record_for(event)
            attempt_for(record, event, event.mode)
        elif kind == "ar_abort":
            record = record_for(event)
            attempt = attempt_for(record, event, event.mode)
            attempt["end_cycle"] = event.cycle
            attempt["outcome"] = "abort"
            attempt["reason"] = event.reason
            attempt["line"] = event.line
            attempt["enemy"] = event.enemy
            attempt["enemy_write"] = event.enemy_write
        elif kind == "ar_commit":
            record = open_records.pop(event.core, None)
            if record is None:
                record = {
                    "core": event.core, "region": event.region,
                    "attempts": [], "commit_cycle": None,
                    "commit_mode": None, "retries": None,
                }
            if record["attempts"] and record["attempts"][-1]["outcome"] is None:
                last = record["attempts"][-1]
                last["end_cycle"] = event.cycle
                last["outcome"] = "commit"
            record["region"] = event.region
            record["commit_cycle"] = event.cycle
            record["commit_mode"] = event.mode
            record["retries"] = event.retries
            records.append(record)
    return records


def describe_abort(attempt):
    """One attempt's abort cause as forensic prose."""
    reason = attempt["reason"]
    cycle = attempt["end_cycle"]
    line = attempt["line"]
    enemy = attempt["enemy"]
    if line is not None and enemy is not None:
        access = "WRITE" if attempt["enemy_write"] else "READ"
        if reason is AbortReason.NACKED:
            return "NACKed on line 0x{:x} by core {}, cycle {}".format(
                line, enemy, cycle
            )
        return "{} conflict on line 0x{:x} with core {}, cycle {}".format(
            access, line, enemy, cycle
        )
    if reason in _INJECTED_REASONS:
        return "injected {}, cycle {}".format(reason.value, cycle)
    return "{}, cycle {}".format(reason.value, cycle)


def _describe_record(record):
    aborts = [
        attempt for attempt in record["attempts"]
        if attempt["outcome"] == "abort"
    ]
    head = "AR {} on core {}: ".format(
        _region_label(record["region"]), record["core"]
    )
    if not aborts:
        body = "no aborts"
    else:
        parts = []
        for attempt in aborts:
            parts.append("1 {} abort ({})".format(
                _MODE_LABELS.get(attempt["mode"], "?"),
                describe_abort(attempt),
            ))
        body = ", ".join(parts)
    tail = " -> {} commit at {}".format(
        _MODE_LABELS.get(record["commit_mode"], "?"), record["commit_cycle"]
    )
    return head + body + tail


def forensic_report(trace, max_regions=None):
    """The per-region report as one printable string.

    Records appear in commit order; ``max_regions`` truncates long runs
    (with an explicit truncation line, so a cut report cannot be
    mistaken for a complete one).
    """
    records = region_records(trace)
    shown = records if max_regions is None else records[:max_regions]
    lines = [_describe_record(record) for record in shown]
    aborted = sum(
        1 for record in records
        if any(a["outcome"] == "abort" for a in record["attempts"])
    )
    lines.append("")
    lines.append(
        "{} committed region(s), {} with at least one abort; trace held "
        "{} of {} emitted event(s) ({} dropped)".format(
            len(records), aborted, len(trace), trace.emitted, trace.dropped
        )
    )
    if max_regions is not None and len(records) > max_regions:
        lines.append("(report truncated to the first {} regions)".format(
            max_regions
        ))
    return "\n".join(lines)


def write_forensic_report(trace, path, max_regions=None):
    """Render :func:`forensic_report` to ``path``."""
    text = forensic_report(trace, max_regions=max_regions)
    with open(path, "w") as handle:
        handle.write(text)
        handle.write("\n")
    return text
