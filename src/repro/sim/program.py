"""The operation vocabulary atomic-region bodies are written in.

An AR body is a Python *generator function*: it yields operation objects
and receives load results back, so the executor can interleave cores at
single-operation granularity and charge per-operation latencies::

    def swap_body():
        value_a = yield Load(addr_a)
        value_b = yield Load(addr_b)
        yield Store(addr_a, value_b)
        yield Store(addr_b, value_a)

Loads return :class:`repro.core.indirection.TaintedValue` (the loaded
value with its indirection bit set); using such a value — or anything
arithmetically derived from it — as a later ``Load``/``Store`` address
is detected by discovery as an indirection. Branching on an AR-loaded
value must be routed through ``Branch`` so the control-dependence rule
of §3 applies::

    head = yield Load(head_addr)
    yield Branch(head)           # footprint now depends on loaded data
    if head != 0:
        value = yield Load(head)

A body is re-invoked from scratch for every execution attempt, against
current shared memory, so footprints genuinely mutate with the data.
"""

from repro.core.indirection import taint_of, value_of


class Load:
    """Read one word; yields back its (tainted) value."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr

    @property
    def word_addr(self):
        """Concrete word address (taint stripped)."""
        return value_of(self.addr)

    @property
    def addr_tainted(self):
        """True if the address derives from an AR-loaded value."""
        return taint_of(self.addr)

    def __repr__(self):
        return "Load({})".format(self.word_addr)


class Store:
    """Write one word. Only the *address* taints immutability (§3:
    arrayswap stores loaded data to fixed addresses and stays immutable).
    """

    __slots__ = ("addr", "value")

    def __init__(self, addr, value):
        self.addr = addr
        self.value = value

    @property
    def word_addr(self):
        return value_of(self.addr)

    @property
    def addr_tainted(self):
        return taint_of(self.addr)

    @property
    def store_value(self):
        """Concrete value to store (taint stripped)."""
        return value_of(self.value)

    def __repr__(self):
        return "Store({}, {})".format(self.word_addr, self.store_value)


class Compute:
    """Non-memory work inside or outside an AR."""

    __slots__ = ("cycles", "ops")

    def __init__(self, cycles=1, ops=None):
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")
        self.cycles = cycles
        self.ops = cycles if ops is None else ops

    def __repr__(self):
        return "Compute(cycles={})".format(self.cycles)


class Branch:
    """A conditional branch; tainted conditions poison immutability."""

    __slots__ = ("condition",)

    def __init__(self, condition):
        self.condition = condition

    @property
    def condition_tainted(self):
        """True if the condition derives from an AR-loaded value."""
        return taint_of(self.condition)

    def __repr__(self):
        return "Branch(tainted={})".format(self.condition_tainted)


class AbortOp:
    """An explicit abort (XAbort) issued by the workload."""

    __slots__ = ()

    def __repr__(self):
        return "AbortOp()"


class Invoke:
    """A thread-level action: run one atomic region.

    ``region_id`` identifies the *static* AR (the paper's Program
    Counter key into the ERT); ``body_factory`` builds a fresh body
    generator for each execution attempt.
    """

    __slots__ = ("region_id", "body_factory")

    def __init__(self, region_id, body_factory):
        self.region_id = region_id
        self.body_factory = body_factory

    def __repr__(self):
        return "Invoke({!r})".format(self.region_id)


class Think:
    """A thread-level action: non-transactional work between ARs."""

    __slots__ = ("cycles",)

    def __init__(self, cycles):
        if cycles < 0:
            raise ValueError("think cycles must be non-negative")
        self.cycles = cycles

    def __repr__(self):
        return "Think({})".format(self.cycles)
