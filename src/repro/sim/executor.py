"""Per-core atomic-region execution state machine.

Drives one hardware thread through its workload actions. Each atomic
region invocation proceeds through attempts:

1. A **speculative** attempt (TSX-like), doubling as CLEAR's discovery
   phase when enabled. A conflict does not abort immediately — the
   attempt enters *failed mode* and keeps executing to finish learning
   its footprint (paper §4.1/§4.2).
2. The retry runs in the mode picked by the decision tree: **NS-CL**
   (ordered cacheline locking, non-speculative), **S-CL** (cacheline
   locking of the critical footprint plus conflict detection), or a
   plain **speculative retry**.
3. When the counting-retry budget is exhausted, the **fallback** path
   serializes the region under the global lock.

The executor is driven by :class:`repro.sim.machine.Machine` via
:meth:`step`, which performs one bounded action and reports either a
cycle cost or a blocking condition.
"""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason, counts_toward_retry_limit, NON_MEMORY_REASONS
from repro.htm.arbiter import TxPeerView
from repro.htm.rwset import CapacityExceeded, ReadWriteSets
from repro.memory.address import line_of_word
from repro.memory.locking import LockDenied, NackError
from repro.obs.events import (
    ARAbort,
    ARBegin,
    ARCommit,
    FaultInjected,
    LockAcquire,
    LocksRelease,
)
from repro.sim.program import AbortOp, Branch, Compute, Invoke, Load, Store, Think
from repro.sim.replay import replay_body
from repro.core.indirection import TaintedValue

# Executor phases.
IDLE = "idle"
BODY = "body"
LOCK_ACQUIRE = "lock_acquire"
BEGIN_WAIT = "begin_wait"  # speculative begin blocked on fallback writer
GUARD_WAIT = "guard_wait"  # CL begin blocked on fallback writer
FALLBACK_WAIT = "fallback_wait"  # fallback begin blocked on lock holders
RETRY = "retry"  # abort processed; next step starts the next attempt
DONE = "done"

# Safety bound on operations per attempt (defends against pathological
# traversals of speculatively observed, inconsistent data structures).
MAX_OPS_PER_ATTEMPT = 200_000

# Step results.
STEP_DELAY = "delay"
STEP_BLOCK = "block"
STEP_DONE = "done"


class CoreExecutor:
    """One core's execution state."""

    __slots__ = (
        "core", "machine", "config", "design", "controller", "phase", "mode",
        "rng",
        "invocation", "counting_retries", "attempt_index", "next_mode",
        "saved_discovery", "invocation_aborts", "first_abort_footprint",
        "fig1_recorded", "discovery", "rwsets", "gen", "gen_send_value",
        "attempt_ops", "attempt_loads",
        "attempt_stores", "pending_abort", "pending_abort_detail",
        "_fault_abort_at",
        "_fault_abort_reason", "fallback_read_held", "fallback_write_held",
        "locked_lines", "_lock_groups", "_lock_group_idx", "_lock_set_held",
        "finish_time", "trace", "attempt_begin_cycle", "first_lock_cycle",
        "fallback_entry_cycle", "ledger", "monitor",
    )

    def __init__(self, core, machine, controller=None):
        self.core = core
        self.machine = machine
        self.config = machine.config
        # The machine's HtmDesign instance: every policy decision the
        # config booleans used to gate dispatches through its hooks.
        self.design = machine.design
        self.controller = controller
        self.trace = machine.trace
        # Opt-in per-invocation attempt accounting for the retry-bound
        # oracle (repro.verify); None on ordinary runs.
        self.ledger = machine.retry_ledger
        # Online serializability monitor (repro.sim.monitor); None
        # unless config.oracle is "online"/"cross-check".
        self.monitor = machine.monitor
        self.phase = IDLE
        self.mode = None
        self.rng = machine.rng.child(("core", core))
        # Invocation state.
        self.invocation = None
        self.counting_retries = 0
        self.attempt_index = 0
        self.next_mode = ExecMode.SPECULATIVE
        self.saved_discovery = None
        self.invocation_aborts = 0
        self.first_abort_footprint = None
        self.fig1_recorded = False
        # Attempt state.
        self.discovery = None
        self.rwsets = None
        self.gen = None
        self.gen_send_value = None
        self.attempt_ops = 0
        self.attempt_loads = 0
        self.attempt_stores = 0
        self.pending_abort = None
        # Forensic detail of the pending conflict as one
        # (line, enemy core, enemy-was-write) tuple — a single store on
        # the per-attempt path. Survives the failed-mode hold so the
        # eventual abort names the original conflict.
        self.pending_abort_detail = None
        # Cycle timestamps feeding the latency histograms (always on)
        # and the trace. Stamped by every begin path before any abort
        # can fire, so aborts read them without a staleness check.
        self.attempt_begin_cycle = None
        self.first_lock_cycle = None
        self.fallback_entry_cycle = None
        # Chaos layer: op index at which this attempt's injected abort
        # fires (None = attempt spared or chaos disabled).
        self._fault_abort_at = None
        self._fault_abort_reason = None
        self.fallback_read_held = False
        self.fallback_write_held = False
        self.locked_lines = set()
        self._lock_groups = []
        self._lock_group_idx = 0
        self._lock_set_held = None
        self.finish_time = None

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def step(self, now):
        """Perform one bounded action; returns (kind, payload)."""
        # Dispatch ordered by observed frequency (BODY dominates every
        # workload, then the idle fetch and abort-retry transitions);
        # the phases are mutually exclusive so order is free to choose.
        phase = self.phase
        if phase == BODY:
            return self._step_body()
        if phase == IDLE:
            return self._step_idle(now)
        if phase == RETRY:
            return self._start_attempt()
        if phase == LOCK_ACQUIRE:
            return self._step_lock_acquire()
        if phase == BEGIN_WAIT:
            return self._step_begin_wait()
        if phase == GUARD_WAIT:
            return self._step_guard_wait()
        if phase == FALLBACK_WAIT:
            return self._step_fallback_wait()
        if phase == DONE:
            return (STEP_DONE, None)
        raise AssertionError("unknown phase {!r}".format(phase))

    @property
    def in_flight_speculative(self):
        """True when this core has abortable speculative state."""
        return (
            self.phase == BODY
            and self.mode is not None
            and self.mode.is_speculative
        )

    def peer_view(self):
        """Arbiter view of this core's transaction, or None.

        A transaction with a pending abort is a zombie: its speculative
        state is already doomed and will be discarded, so it must not
        arbitrate — in particular a doomed power-mode transaction must
        not NACK (and thereby abort) a fallback execution whose direct
        stores cannot be rolled back.
        """
        if not self.in_flight_speculative or self.rwsets is None:
            return None
        if self.pending_abort is not None:
            return None
        return TxPeerView(
            core=self.core,
            rwsets=self.rwsets,
            is_power=self.machine.power.is_power(self.core),
            conflict_detection_active=True,
            is_failed=self.mode is ExecMode.FAILED_DISCOVERY,
        )

    # ------------------------------------------------------------------
    # Idle: fetch the next thread action
    # ------------------------------------------------------------------

    def _step_idle(self, now):
        action = self.machine.next_action(self.core)
        if action is None:
            self.phase = DONE
            self.finish_time = now
            return (STEP_DONE, None)
        if isinstance(action, Think):
            self.machine.stats.record_compute(max(1, action.cycles))
            return self._busy(max(1, action.cycles))
        if isinstance(action, Invoke):
            self.invocation = action
            self.counting_retries = 0
            self.attempt_index = 0
            self.next_mode = ExecMode.SPECULATIVE
            self.saved_discovery = None
            self.invocation_aborts = 0
            self.first_abort_footprint = None
            self.fig1_recorded = False
            if self.ledger is not None:
                self.ledger.note_invoke(self.core, action.region_id)
            return self._start_attempt()
        raise TypeError("unknown thread action {!r}".format(action))

    # ------------------------------------------------------------------
    # Attempt setup
    # ------------------------------------------------------------------

    def _start_attempt(self):
        self.attempt_index += 1
        self.attempt_ops = 0
        self.attempt_loads = 0
        self.attempt_stores = 0
        self.pending_abort = None
        self.pending_abort_detail = None
        self._note_fig1_retry_start()
        mode = self.next_mode
        if mode is ExecMode.FALLBACK:
            return self._try_begin_fallback()
        if mode in (ExecMode.NS_CL, ExecMode.S_CL):
            return self._try_begin_cacheline_locked(mode)
        return self._try_begin_speculative()

    def _try_begin_speculative(self):
        machine = self.machine
        fallback = machine.fallback
        if fallback.is_write_held():
            # Explicit Fallback abort: the lock is found taken at begin.
            machine.stats.record_abort(
                self.core, AbortReason.EXPLICIT_FALLBACK, self.invocation.region_id
            )
            if self.ledger is not None:
                # No attempt began: mode None marks the at-begin abort.
                self.ledger.note_abort(
                    self.core, None, AbortReason.EXPLICIT_FALLBACK
                )
            if self.trace is not None:
                # No attempt ever started, so there is no span to close:
                # mode None marks the at-begin abort, and the enemy is
                # the fallback writer holding the lock line.
                self.trace.emit(ARAbort(
                    machine.now, self.core, self.invocation.region_id,
                    None, self.attempt_index, AbortReason.EXPLICIT_FALLBACK,
                    line=fallback.line, enemy=fallback.writer,
                    enemy_write=True,
                ))
            self.phase = BEGIN_WAIT
            return (STEP_BLOCK, "fallback")
        self.mode = ExecMode.SPECULATIVE
        self.rwsets = self._new_rwsets()
        self.rwsets.record_read(fallback.line)
        self.discovery = None
        if self.controller is not None:
            self.discovery = self.controller.begin_invocation(self.invocation.region_id)
        if self.design.wants_power_token(counting_retries=self.counting_retries):
            machine.power.try_acquire(self.core)
        self._plan_fault_injection()
        self.gen = self.invocation.body_factory()
        self.gen_send_value = None
        self.phase = BODY
        machine.stats.record_begin(self.core)
        if self.ledger is not None:
            self.ledger.note_begin(self.core, ExecMode.SPECULATIVE)
        self.attempt_begin_cycle = machine.now
        if self.trace is not None:
            self.trace.emit(ARBegin(
                machine.now, self.core, self.invocation.region_id,
                ExecMode.SPECULATIVE, self.attempt_index,
            ))
        return self._busy(self.config.tx_begin_cycles)

    def _plan_fault_injection(self):
        """Draw this speculative attempt's injected-abort schedule.

        Spurious/capacity faults only strike attempts with speculative
        state to lose; NS-CL and fallback keep their completion
        guarantees (the paper's claim under test is precisely that the
        non-speculative modes finish regardless of HTM misbehaviour).
        """
        faults = self.machine.faults
        if faults is None or not self.mode.is_speculative:
            return
        planned = faults.plan_attempt(self.core)
        if planned is not None:
            self._fault_abort_reason, self._fault_abort_at = planned

    def _step_begin_wait(self):
        if self.machine.fallback.is_write_held():
            return (STEP_BLOCK, "fallback")
        return self._start_attempt_again()

    def _start_attempt_again(self):
        # Re-enter _start_attempt without consuming a new attempt index.
        self.attempt_index -= 1
        return self._start_attempt()

    def _new_rwsets(self):
        # Design-provided conflict-detecting tracking; the default is
        # cache-geometry ReadWriteSets with every tracked line
        # registered in the machine-global sharer index.
        return self.design.build_rwsets(executor=self)

    # ------------------------------------------------------------------
    # Cacheline-locked attempts (NS-CL / S-CL)
    # ------------------------------------------------------------------

    def _try_begin_cacheline_locked(self, mode):
        fallback = self.machine.fallback
        if not fallback.try_acquire_read(self.core):
            self.phase = GUARD_WAIT
            self.next_mode = mode
            return (STEP_BLOCK, "fallback")
        self.fallback_read_held = True
        self.mode = mode
        if mode is ExecMode.S_CL:
            self.rwsets = self._new_rwsets()
        else:
            # NS-CL needs no conflict detection, but stores are still
            # buffered until XEnd so the defensive footprint-deviation
            # abort can never leak a partial update (capacity checks are
            # off: discovery already proved the footprint fits). Its
            # reads are still epoch-checked by the monitor — every
            # accessed line is locked, so recorded epochs cannot move
            # on a correct machine.
            monitor = self.monitor
            self.rwsets = ReadWriteSets(
                l1_sets=None, l2_sets=None,
                monitor_epochs=(
                    monitor.line_epochs if monitor is not None else None
                ),
            )
        self.discovery = None
        self._plan_fault_injection()  # strikes S-CL only; NS-CL is immune
        self._lock_groups = self.controller.prepare_lock_plan(self.saved_discovery, mode)
        self._lock_group_idx = 0
        self._lock_set_held = None
        self.locked_lines = set()
        self.first_lock_cycle = None
        self.phase = LOCK_ACQUIRE
        self.machine.stats.record_begin(self.core)
        if self.ledger is not None:
            self.ledger.note_begin(self.core, mode)
        self.attempt_begin_cycle = self.machine.now
        if self.trace is not None:
            self.trace.emit(ARBegin(
                self.machine.now, self.core, self.invocation.region_id,
                mode, self.attempt_index,
            ))
        return self._busy(self.config.tx_begin_cycles)

    def _step_guard_wait(self):
        if self.machine.fallback.is_write_held():
            return (STEP_BLOCK, "fallback")
        return self._start_attempt_again()

    def _step_lock_acquire(self):
        memsys = self.machine.memsys
        if self._lock_group_idx >= len(self._lock_groups):
            # All locks held: start executing the body.
            self.gen = self.invocation.body_factory()
            self.gen_send_value = None
            self.phase = BODY
            return self._busy(1)
        group = self._lock_groups[self._lock_group_idx]
        dir_set = group[0].dir_set
        set_holder = memsys.directory.set_lock_holder(dir_set)
        if set_holder is not None and set_holder != self.core:
            return (STEP_BLOCK, ("dirset", dir_set))
        cycles = 0
        if len(group) > 1:
            # Lexicographical group: probe the private cache first.
            all_exclusive = all(
                memsys.probe_exclusive_hit(self.core, entry.line) for entry in group
            )
            for entry in group:
                entry.hit = memsys.probe_exclusive_hit(self.core, entry.line)
            if not all_exclusive and self._lock_set_held is None:
                memsys.directory.lock_set(self.core, dir_set)
                self._lock_set_held = dir_set
                cycles += self.config.l3_latency  # directory round to lock the set
        try:
            for entry in group:
                if entry.locked:
                    continue
                cycles += self._acquire_one_lock(entry)
        except LockDenied as denied:
            self._release_group_set_lock()
            if cycles:
                self.machine.stats.add_busy(self.core, cycles, lock_acquire=True)
            return (STEP_BLOCK, ("line", denied.line))
        except NackError as nacked:
            # A power-mode transaction holds the line in its sets and
            # nacks the lock request (paper §5.2): this CL attempt aborts.
            self._release_group_set_lock()
            return self._abort_attempt(
                AbortReason.NACKED, line=nacked.line, enemy=nacked.holder
            )
        except OverflowError:
            self._release_group_set_lock()
            return self._abort_attempt(AbortReason.LOCK_SET_FAILURE)
        self._release_group_set_lock()
        self._lock_group_idx += 1
        return self._busy(max(1, cycles), lock_acquire=True)

    def _acquire_one_lock(self, entry):
        machine = self.machine
        # Taking a line exclusively conflicts with every speculative peer
        # tracking it, exactly like a write request: requester wins,
        # unless a power-mode peer nacks us (§5.2).
        resolution = machine.resolve_conflict(
            self.core, entry.line, True,
            requester_unstoppable=self.mode is ExecMode.NS_CL,
        )
        if resolution.requester_abort_reason is not None:
            raise NackError(entry.line, resolution.nacking_core)
        for victim in resolution.victims:
            machine.executors[victim].receive_remote_conflict(
                entry.line, True, self.core
            )
        latency = machine.memsys.acquire_line_lock(self.core, entry.line)
        entry.locked = True
        self.locked_lines.add(entry.line)
        if self.first_lock_cycle is None:
            self.first_lock_cycle = machine.now
        machine.stats.record_lock_acquired()
        machine.stats.record_access("LOCK")
        if self.trace is not None:
            self.trace.emit(LockAcquire(machine.now, self.core, entry.line))
        return latency

    def _release_group_set_lock(self):
        if self._lock_set_held is not None:
            self.machine.memsys.directory.unlock_set(self.core, self._lock_set_held)
            self._lock_set_held = None
            self.machine.notify_release()

    # ------------------------------------------------------------------
    # Fallback attempts
    # ------------------------------------------------------------------

    def _try_begin_fallback(self):
        fallback = self.machine.fallback
        if not fallback.try_acquire_write(self.core):
            self.phase = FALLBACK_WAIT
            return (STEP_BLOCK, "fallback")
        self.fallback_write_held = True
        self.mode = ExecMode.FALLBACK
        self.rwsets = None
        self.discovery = None
        if self.machine.power.release(self.core):
            self.machine.notify_release()
        # Taking the lock aborts every in-flight speculative AR that has
        # the lock line in its read set.
        self.machine.abort_all_speculative(AbortReason.OTHER_FALLBACK, exclude=self.core)
        self.gen = self.invocation.body_factory()
        self.gen_send_value = None
        self.phase = BODY
        self.machine.stats.record_begin(self.core)
        if self.ledger is not None:
            self.ledger.note_begin(self.core, ExecMode.FALLBACK)
        self.attempt_begin_cycle = self.machine.now
        self.fallback_entry_cycle = self.machine.now
        if self.trace is not None:
            self.trace.emit(ARBegin(
                self.machine.now, self.core, self.invocation.region_id,
                ExecMode.FALLBACK, self.attempt_index,
            ))
        return self._busy(self.config.tx_begin_cycles)

    def _step_fallback_wait(self):
        fallback = self.machine.fallback
        if fallback.is_write_held() or fallback.readers:
            return (STEP_BLOCK, "fallback")
        return self._start_attempt_again()

    # ------------------------------------------------------------------
    # Body execution
    # ------------------------------------------------------------------

    def _step_body(self):
        if self.pending_abort is not None:
            reason = self.pending_abort
            self.pending_abort = None
            if (
                self.mode is ExecMode.SPECULATIVE
                and self.discovery is not None
                and reason is AbortReason.MEMORY_CONFLICT
                and not self.discovery.exhausted
                and self.config.failed_mode_discovery
            ):
                # Hold the abort: continue discovering in failed mode.
                self.controller.note_conflict(self.discovery)
                self.mode = ExecMode.FAILED_DISCOVERY
            elif (
                self.mode is ExecMode.SPECULATIVE
                and self.discovery is not None
                and reason is AbortReason.MEMORY_CONFLICT
                and not self.config.failed_mode_discovery
            ):
                # Ablation: no failed mode — decide from whatever the
                # partial discovery saw, then abort immediately.
                decision = self.controller.conclude_failed_discovery(self.discovery)
                self.saved_discovery = self.discovery
                return self._abort_attempt(reason, decided_mode=decision.mode)
            else:
                return self._abort_attempt(reason)
        self.attempt_ops += 1
        if self.attempt_ops > MAX_OPS_PER_ATTEMPT:
            return self._abort_attempt(AbortReason.OTHER)
        if self._fault_abort_at is not None and self.attempt_ops >= self._fault_abort_at:
            reason = self._fault_abort_reason
            self._fault_abort_at = None
            self._fault_abort_reason = None
            self.machine.faults.note_injected(self.core, reason, self.attempt_index)
            if self.trace is not None:
                self.trace.emit(FaultInjected(
                    self.machine.now, self.core, reason, self.attempt_index
                ))
            return self._abort_attempt(reason)
        if self.config.speculation == "sle" and self.mode.is_speculative:
            # In-core speculation (§4.1): the attempt lives inside the
            # ROB/LQ/SQ window; exhausting it forces an abort and marks
            # the region non-convertible.
            overflow = None
            if self.attempt_ops > self.config.rob_entries:
                overflow = AbortReason.ROB_OVERFLOW
            elif self.attempt_loads > self.config.lq_entries:
                overflow = AbortReason.ROB_OVERFLOW
            elif self.attempt_stores > self.config.sq_entries:
                overflow = AbortReason.SQ_OVERFLOW
            if overflow is not None:
                if self.controller is not None:
                    entry = self.controller.ert.ensure(self.invocation.region_id)
                    entry.is_convertible = False
                return self._abort_attempt(overflow)
        try:
            op = self.gen.send(self.gen_send_value)
        except StopIteration:
            return self._region_end()
        self.gen_send_value = None
        if isinstance(op, Load):
            return self._exec_memory_op(op, is_store=False)
        if isinstance(op, Store):
            return self._exec_memory_op(op, is_store=True)
        if isinstance(op, Compute):
            if self.discovery is not None:
                self.discovery.on_compute(op.ops)
            self.machine.stats.record_compute(op.ops)
            return self._busy(max(1, op.cycles))
        if isinstance(op, Branch):
            if self.discovery is not None:
                self.discovery.on_branch(op.condition_tainted)
            self.machine.stats.record_branch()
            return self._busy(1)
        if isinstance(op, AbortOp):
            if self.mode is ExecMode.FALLBACK:
                # The fallback path is not a transaction: an XAbort there
                # simply ends the region (its direct stores are already
                # architectural). This keeps always-aborting regions from
                # cycling forever between fallback and retry.
                return self._commit(via_abort=True)
            return self._abort_attempt(AbortReason.EXPLICIT)
        raise TypeError("AR body yielded unknown op {!r}".format(op))

    def _exec_memory_op(self, op, is_store):
        # Hot path: runs once per memory operation. Everything touched
        # more than once is bound to a local up front.
        machine = self.machine
        memsys = machine.memsys
        mode = self.mode
        rwsets = self.rwsets
        discovery = self.discovery
        word_addr = op.word_addr
        line = line_of_word(word_addr)
        if is_store:
            self.attempt_stores += 1
        else:
            self.attempt_loads += 1

        # NS-CL guarantee: every access must be within the learned,
        # locked footprint. A deviation disproves immutability.
        if mode is ExecMode.NS_CL and line not in self.locked_lines:
            if self.controller is not None:
                entry = self.controller.ert.ensure(self.invocation.region_id)
                entry.is_immutable = False
            return self._abort_attempt(AbortReason.FOOTPRINT_DEVIATION)

        # Cacheline lock gate.
        if line not in self.locked_lines:
            try:
                memsys.locks.check_access(
                    self.core, line, nackable=mode is not ExecMode.FALLBACK
                )
            except NackError as nacked:
                return self._abort_attempt(
                    AbortReason.NACKED, line=nacked.line, enemy=nacked.holder
                )
            except LockDenied as denied:
                return (STEP_BLOCK, ("line", denied.line))

        # Failed-mode stores never leave the SQ: no coherence request.
        if mode is ExecMode.FAILED_DISCOVERY and is_store:
            discovery.on_store(line, op.addr_tainted)
            if rwsets is not None:
                try:
                    rwsets.record_write(line)
                except CapacityExceeded as exc:
                    return self._abort_attempt(
                        self.design.classify_capacity_abort(
                            executor=self, exc=exc
                        ),
                        line=exc.line,
                    )
                rwsets.buffer_store(word_addr, op.store_value)
            if discovery.exhausted:
                return self._conclude_exhausted_failed_discovery()
            return self._busy(1, failed_discovery=True)

        # Conflict arbitration (failed-mode loads are non-aborting):
        # probe the sharer index for this line instead of scanning every
        # core. Fallback runs under mutual exclusion: every speculative
        # AR was aborted when the lock was taken and none can begin
        # while it is held, so its direct (unrecoverable) stores never
        # arbitrate.
        if mode is not ExecMode.FALLBACK:
            resolution = machine.resolve_conflict(
                self.core, line, is_store,
                requester_failed=mode is ExecMode.FAILED_DISCOVERY,
            )
            if resolution.requester_abort_reason is not None:
                return self._abort_attempt(
                    resolution.requester_abort_reason,
                    line=line, enemy=resolution.nacking_core,
                )
            for victim in resolution.victims:
                machine.executors[victim].receive_remote_conflict(
                    line, is_store, self.core
                )

        result = memsys.access(self.core, line, is_store)
        machine.stats.record_access(result.level)
        latency = result.latency
        if machine.faults is not None:
            latency += machine.faults.jitter(self.core)

        # Speculative set tracking / capacity.
        if rwsets is not None:
            try:
                if is_store:
                    rwsets.record_write(line)
                else:
                    rwsets.record_read(line)
            except CapacityExceeded as exc:
                if discovery is not None:
                    entry = self.controller.ert.ensure(self.invocation.region_id)
                    entry.is_convertible = False
                return self._abort_attempt(
                    self.design.classify_capacity_abort(executor=self, exc=exc),
                    line=exc.line,
                )

        # Discovery footprint and indirection tracking.
        failed = mode is ExecMode.FAILED_DISCOVERY
        if discovery is not None:
            if is_store:
                discovery.on_store(line, op.addr_tainted)
            else:
                discovery.on_load(line, op.addr_tainted)
            if failed and discovery.exhausted:
                return self._conclude_exhausted_failed_discovery()

        # Architectural data movement.
        if is_store:
            if rwsets is not None:
                rwsets.buffer_store(word_addr, op.store_value)
            else:
                # Fallback: direct store, applied to the monitor's
                # value map as it is issued (mutual exclusion means no
                # concurrent commit can interleave).
                value = op.store_value
                machine.memory.store(word_addr, value)
                if self.monitor is not None:
                    self.monitor.note_fallback_store(
                        self.core, word_addr, value
                    )
            return self._busy(latency, failed_discovery=failed)
        if rwsets is not None:
            forwarded = rwsets.forwarded_load(word_addr)
            value = forwarded if forwarded is not None else machine.memory.load(word_addr)
        else:
            value = machine.memory.load(word_addr)
            if self.monitor is not None:
                # Fallback loads are checked eagerly: under mutual
                # exclusion memory must match the committed prefix.
                self.monitor.note_fallback_load(self.core, word_addr, value)
        self.gen_send_value = TaintedValue(value, tainted=True)
        return self._busy(latency, failed_discovery=failed)

    # ------------------------------------------------------------------
    # Region end (XEnd)
    # ------------------------------------------------------------------

    def _region_end(self):
        mode = self.mode
        if mode is ExecMode.FAILED_DISCOVERY:
            decision = self.controller.conclude_failed_discovery(self.discovery)
            self.saved_discovery = self.discovery
            self.next_mode = decision.mode
            return self._abort_attempt(
                AbortReason.MEMORY_CONFLICT, decided_mode=decision.mode
            )
        return self._commit()

    def _conclude_exhausted_failed_discovery(self):
        """Failed discovery ran out of resources: abort immediately (§4.1)."""
        decision = self.controller.conclude_failed_discovery(self.discovery)
        self.saved_discovery = None
        return self._abort_attempt(
            AbortReason.MEMORY_CONFLICT, decided_mode=decision.mode
        )

    def _commit(self, via_abort=False):
        machine = self.machine
        mode = self.mode
        # Ask the design for the commit cost while the attempt state
        # (mode, rwsets) is still live; _clear_attempt_state nulls both.
        commit_cycles = self.design.commit_cycles(executor=self)
        if machine.oracle is not None:
            # Commit-order replay against the shadow memory; via_abort
            # marks fallback regions ended at an explicit XAbort (the
            # replay then also stops at the AbortOp).
            machine.oracle.record_commit(
                self.core, self.invocation, mode, via_abort=via_abort
            )
        if self.monitor is not None:
            # Epoch staleness check + value-map fold; needs the write
            # buffer intact, so it runs before drain_to below.
            self.monitor.record_commit(
                self.core, self.invocation, mode, self.rwsets,
                via_abort=via_abort,
            )
        if self.rwsets is not None:
            self.rwsets.drain_to(machine.memory)
        if self.controller is not None:
            if self.discovery is not None and mode is ExecMode.SPECULATIVE:
                self.controller.conclude_committed_discovery(self.discovery)
            else:
                self.controller.ert.ensure(self.invocation.region_id).note_commit()
        self._release_all_holdings()
        if machine.power.release(self.core):
            machine.notify_release()
        machine.stats.record_commit(
            self.core, mode, self.counting_retries, self.invocation.region_id
        )
        if self.ledger is not None:
            self.ledger.note_commit(
                self.core, mode, self.counting_retries, via_abort=via_abort
            )
        if self.trace is not None:
            self.trace.emit(ARCommit(
                machine.now, self.core, self.invocation.region_id,
                mode, self.attempt_index, self.counting_retries,
            ))
        self._clear_attempt_state()
        self.invocation = None
        self.phase = IDLE
        return self._busy(commit_cycles)

    # ------------------------------------------------------------------
    # Aborts
    # ------------------------------------------------------------------

    def receive_remote_conflict(self, line, remote_is_write, from_core):
        """A remote request conflicted with our speculative state."""
        if not self.in_flight_speculative:
            return
        if self.mode is ExecMode.FAILED_DISCOVERY:
            return  # already doomed; nothing more can hurt it
        # Remember conflicting reads for a future S-CL attempt (CRT).
        if (
            self.controller is not None
            and remote_is_write
            and self.rwsets is not None
            and line in self.rwsets.read_set
            and line not in self.rwsets.write_set
        ):
            self.controller.note_scl_conflicting_read(line)
        if self.pending_abort is None:
            self.pending_abort = AbortReason.MEMORY_CONFLICT
            self.pending_abort_detail = (line, from_core, remote_is_write)
        # Zombie from here on: the legacy scan hides a doomed peer via
        # peer_view() -> None, so the index must forget it at the same
        # instant.
        if self.rwsets is not None:
            self.rwsets.detach_index()

    def _abort_attempt(self, reason, decided_mode=None,
                       line=None, enemy=None, enemy_write=None):
        machine = self.machine
        mode = self.mode
        detail = self.pending_abort_detail
        if line is None and detail is not None and reason in (
            AbortReason.MEMORY_CONFLICT, AbortReason.OTHER_FALLBACK
        ):
            # The conflict that doomed us arrived asynchronously (and may
            # have been held through failed-mode discovery): recover its
            # forensic detail. Guarded by reason class so an injected or
            # capacity abort never inherits a stale conflict's detail.
            line, enemy, enemy_write = detail
        machine.stats.record_abort(
            self.core, reason, self.invocation.region_id,
            machine.now - self.attempt_begin_cycle,
        )
        if self.ledger is not None:
            self.ledger.note_abort(self.core, mode, reason)
        if self.trace is not None:
            self.trace.emit(ARAbort(
                machine.now, self.core, self.invocation.region_id,
                mode, self.attempt_index, reason,
                line=line, enemy=enemy, enemy_write=enemy_write,
            ))
        self.invocation_aborts += 1
        if self.invocation_aborts == 1:
            # Fig. 1 instrumentation: the complete footprint the AR
            # would access, as of the abort (replay; zero sim time).
            self.first_abort_footprint = replay_body(
                self.invocation.body_factory, machine.memory
            ).footprint
        if self.rwsets is not None:
            self.rwsets.discard()
        if mode is ExecMode.FALLBACK and self.monitor is not None:
            # A fallback abort (MAX_OPS bound) still persisted its
            # direct stores; the monitor stamps their lines now.
            self.monitor.note_fallback_abort(self.core)
        self._release_all_holdings()
        if counts_toward_retry_limit(reason):
            self.counting_retries += 1

        # Pick the next attempt's mode: the per-mode logic proposes
        # (CLEAR's decision tree via decided_mode, else a plain
        # speculative retry) and the design gets the final word — the
        # default applies the paper's counting-retry fallback budget.
        if decided_mode is not None:
            proposed = decided_mode
        else:
            if mode is ExecMode.S_CL and reason in NON_MEMORY_REASONS:
                self.controller.mark_non_discoverable(self.invocation.region_id)
            proposed = ExecMode.SPECULATIVE
        self.next_mode = self.design.select_retry_mode(
            executor=self, reason=reason, proposed=proposed
        )
        if self.next_mode is not ExecMode.SPECULATIVE:
            # Power priority only matters for speculative retries; keep
            # holding the token through a CL retry and it just starves
            # the other cores.
            if machine.power.release(self.core):
                machine.notify_release()

        self._clear_attempt_state()
        self.phase = RETRY
        if reason is AbortReason.NACKED:
            # A NACK means a cacheline-locked or power-mode holder is
            # finishing the contended line: park until some lock/guard
            # releases instead of burning abort-retry cycles against it.
            self.machine.stats.add_busy(self.core, self.config.tx_abort_cycles)
            return (STEP_BLOCK, "nack")
        backoff = 0
        if self.next_mode is ExecMode.SPECULATIVE and self.config.backoff_base:
            exponent = min(self.counting_retries, self.config.backoff_max_exponent)
            backoff = self.rng.randint(0, self.config.backoff_base * (2 ** exponent))
        self.machine.stats.add_busy(self.core, self.config.tx_abort_cycles + backoff)
        return (STEP_DELAY, self.config.tx_abort_cycles + backoff)

    def _clear_attempt_state(self):
        if self.rwsets is not None:
            # Commit reaches here without a discard(); abort and zombie
            # paths already detached (idempotent either way).
            self.rwsets.detach_index()
        self.gen = None
        self.gen_send_value = None
        self.discovery = None
        self.rwsets = None
        self.mode = None
        self._fault_abort_at = None
        self._fault_abort_reason = None
        # pending_abort_detail and attempt_begin_cycle are left stale
        # here on purpose: _start_attempt resets the former and every
        # begin path restamps the latter before anything reads them.
        self.locked_lines = set()
        self._lock_groups = []
        self._lock_group_idx = 0

    def _release_all_holdings(self):
        machine = self.machine
        anything_released = False
        released = machine.memsys.release_all_locks(self.core)
        if released:
            machine.stats.add_busy(self.core, self.config.lock_release_cycles)
            anything_released = True
            if self.first_lock_cycle is not None:
                machine.stats.record_lock_hold(
                    max(0, machine.now - self.first_lock_cycle)
                )
            if self.trace is not None:
                self.trace.emit(LocksRelease(
                    machine.now, self.core, tuple(sorted(released))
                ))
        self.first_lock_cycle = None
        if self.fallback_read_held:
            machine.fallback.release_read(self.core)
            self.fallback_read_held = False
            anything_released = True
        if self.fallback_write_held:
            machine.fallback.release_write(self.core)
            self.fallback_write_held = False
            anything_released = True
            if self.fallback_entry_cycle is not None:
                machine.stats.record_fallback_hold(
                    max(0, machine.now - self.fallback_entry_cycle)
                )
        self.fallback_entry_cycle = None
        if anything_released:
            machine.notify_release()

    # ------------------------------------------------------------------
    # Fig. 1 bookkeeping
    # ------------------------------------------------------------------

    def _note_fig1_retry_start(self):
        """Fig. 1 instrumentation, taken at the start of the first retry.

        An aborted attempt usually stopped partway through the region,
        so partial footprints cannot be compared. Instead — matching the
        paper's definition ("ARs that access a memory footprint lower
        than 32 cachelines and [it] remains immutable on the first
        retry") — the region body is *replayed* to completion against
        memory as of the abort and again as of the retry, and the two
        complete footprints are compared. The replay is measurement
        machinery only: zero simulated time, no architectural effects.
        """
        if self.fig1_recorded or self.first_abort_footprint is None:
            return
        if self.attempt_index != 2:
            return
        retry_footprint = replay_body(
            self.invocation.body_factory, self.machine.memory
        ).footprint
        first = self.first_abort_footprint
        same = first == retry_footprint
        small = len(first) <= self.config.alt_entries
        self.machine.stats.record_first_retry(same and small)
        self.fig1_recorded = True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _busy(self, cycles, failed_discovery=False, lock_acquire=False):
        self.machine.stats.add_busy(
            self.core, cycles, failed_discovery=failed_discovery,
            lock_acquire=lock_acquire,
        )
        return (STEP_DELAY, cycles)
