"""Side-effect-free replay of an AR body against current memory.

Used in two places:

- the Fig. 1 instrumentation replays a region at its first abort and
  again at the start of its retry, comparing the *complete* footprints
  (this is how the paper's motivation measurement is defined — an AR is
  counted when its full cacheline set is unchanged on the first retry);
- the characterizer (:mod:`repro.analysis.characterize`) probes bodies
  for taint and footprint stability.

Stores are buffered locally (reads see them), so a replay never touches
architectural memory unless ``commit=True``.
"""

from repro.core.indirection import TaintedValue
from repro.memory.address import line_of_word
from repro.sim.program import AbortOp, Branch, Compute, Load, Store


class ReplayResult:
    """Footprint and taint observations from one replayed execution."""

    __slots__ = ("footprint", "indirection_seen", "loads", "stores")

    def __init__(self, footprint, indirection_seen, loads, stores):
        self.footprint = footprint
        self.indirection_seen = indirection_seen
        self.loads = loads
        self.stores = stores

    @property
    def footprint_size(self):
        """Number of distinct cachelines touched."""
        return len(self.footprint)


def replay_body(body_factory, memory, commit=False, stop_on_abort=False):
    """Execute an AR body against ``memory``, tracking taint/footprint.

    With ``commit=False`` stores stay in a local buffer (reads see it),
    leaving memory untouched; with ``commit=True`` the buffered stores
    are applied at the end, like a committing transaction.

    ``stop_on_abort=True`` ends the replay at the first
    :class:`~repro.sim.program.AbortOp`, mirroring the executor's
    fallback-path semantics (an XAbort there simply ends the region, so
    only the stores issued before it are architectural). The
    serializability oracle replays with this enabled.
    """
    footprint = set()
    buffered = {}
    indirection_seen = False
    loads = 0
    stores = 0
    gen = body_factory()
    send_value = None
    while True:
        try:
            op = gen.send(send_value)
        except StopIteration:
            break
        send_value = None
        if isinstance(op, Load):
            footprint.add(line_of_word(op.word_addr))
            indirection_seen = indirection_seen or op.addr_tainted
            loads += 1
            if op.word_addr in buffered:
                raw = buffered[op.word_addr]
            else:
                raw = memory.peek(op.word_addr)
            send_value = TaintedValue(raw, tainted=True)
        elif isinstance(op, Store):
            footprint.add(line_of_word(op.word_addr))
            indirection_seen = indirection_seen or op.addr_tainted
            stores += 1
            buffered[op.word_addr] = op.store_value
        elif isinstance(op, Branch):
            indirection_seen = indirection_seen or op.condition_tainted
        elif isinstance(op, AbortOp):
            if stop_on_abort:
                gen.close()
                break
        elif isinstance(op, Compute):
            pass
        else:
            raise TypeError("unknown op {!r}".format(op))
    if commit:
        for word_addr, value in buffered.items():
            memory.poke(word_addr, value)
    return ReplayResult(frozenset(footprint), indirection_seen, loads, stores)
