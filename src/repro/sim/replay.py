"""Side-effect-free replay of an AR body against current memory.

Used in two places:

- the Fig. 1 instrumentation replays a region at its first abort and
  again at the start of its retry, comparing the *complete* footprints
  (this is how the paper's motivation measurement is defined — an AR is
  counted when its full cacheline set is unchanged on the first retry);
- the characterizer (:mod:`repro.analysis.characterize`) probes bodies
  for taint and footprint stability.

Stores are buffered locally (reads see them), so a replay never touches
architectural memory unless ``commit=True``.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.core.indirection import TaintedValue
from repro.sim.program import AbortOp, Branch, Compute, Load, Store


class ReplayResult:
    """Footprint and taint observations from one replayed execution."""

    __slots__ = ("footprint", "indirection_seen", "loads", "stores")

    def __init__(self, footprint, indirection_seen, loads, stores):
        self.footprint = footprint
        self.indirection_seen = indirection_seen
        self.loads = loads
        self.stores = stores

    @property
    def footprint_size(self):
        """Number of distinct cachelines touched."""
        return len(self.footprint)


def replay_body(body_factory, memory, commit=False, stop_on_abort=False):
    """Execute an AR body against ``memory``, tracking taint/footprint.

    With ``commit=False`` stores stay in a local buffer (reads see it),
    leaving memory untouched; with ``commit=True`` the buffered stores
    are applied at the end, like a committing transaction.

    ``stop_on_abort=True`` ends the replay at the first
    :class:`~repro.sim.program.AbortOp`, mirroring the executor's
    fallback-path semantics (an XAbort there simply ends the region, so
    only the stores issued before it are architectural). The
    serializability oracle replays with this enabled.
    """
    footprint = set()
    buffered = {}
    indirection_seen = False
    loads = 0
    stores = 0
    gen = body_factory()
    send = gen.send
    send_value = None
    # Replays run complete bodies op-by-op with zero simulated time, so
    # they are pure interpreter overhead; the loop dispatches on exact
    # class and strips taint inline instead of going through the
    # word_addr/addr_tainted properties (value_of/taint_of per op).
    add_line = footprint.add
    words = memory._words
    tv = TaintedValue
    tv_new = TaintedValue.__new__
    while True:
        try:
            op = send(send_value)
        except StopIteration:
            break
        send_value = None
        kind = op.__class__
        if kind is Load:
            addr = op.addr
            if addr.__class__ is tv:
                word_addr = addr.value
                indirection_seen = indirection_seen or addr.tainted
            else:
                word_addr = int(addr)
            add_line(word_addr // WORDS_PER_LINE)
            loads += 1
            # Buffered values are plain ints (taint stripped on store),
            # so None means "not buffered" — no second membership probe.
            raw = buffered.get(word_addr)
            if raw is None:
                raw = words.get(word_addr, 0)
            send_value = value = tv_new(tv)
            value.value = raw
            value.tainted = True
        elif kind is Store:
            addr = op.addr
            if addr.__class__ is tv:
                word_addr = addr.value
                indirection_seen = indirection_seen or addr.tainted
            else:
                word_addr = int(addr)
            add_line(word_addr // WORDS_PER_LINE)
            stores += 1
            stored = op.value
            buffered[word_addr] = (
                stored.value if stored.__class__ is tv else int(stored)
            )
        elif kind is Branch:
            if not indirection_seen:
                condition = op.condition
                indirection_seen = (
                    condition.__class__ is tv and condition.tainted
                )
        elif kind is AbortOp:
            if stop_on_abort:
                gen.close()
                break
        elif kind is Compute:
            pass
        else:
            raise TypeError("unknown op {!r}".format(op))
    if commit:
        for word_addr, value in buffered.items():
            memory.poke(word_addr, value)
    return ReplayResult(frozenset(footprint), indirection_seen, loads, stores)
