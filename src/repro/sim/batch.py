"""Batched calendar-queue simulation backend (``backend="batch"``).

:class:`BatchMachine` replaces the reference event loop's one-event
heap pops with a bucketed calendar queue — a ``{cycle: [cores]}`` map
plus a heap of distinct cycles — that batch-advances every core
runnable at the same cycle, and fuses the dominant executor step (a
speculative HTM BODY operation on plain tracking sets) into a single
closure over struct-of-arrays state tables instead of the reference's
~40-call object walk.

Equivalence with :class:`~repro.sim.machine.Machine` is exact, not
statistical, and rests on two properties:

* **Order.** Stepping a core never makes any core runnable at the
  *same* cycle: ``STEP_DELAY`` payloads are clamped to >= 1 and lock
  release wakeups land at ``now + 1``. The reference heap therefore
  drains each cycle's cores in ascending core order before touching the
  next cycle, which is exactly a sorted bucket. Release wakeups are
  processed after *each* core's step (not once per bucket), so
  park/wake interleavings within a cycle match pop-for-pop.
* **State.** The fused fast path replicates the reference semantics of
  ``CoreExecutor._step_body``/``_exec_memory_op`` line for line, and
  every precondition it cannot prove cheaply (pending abort, non-HTM
  speculation, CL modes, bounded ``lrw`` tracking sets, cache misses,
  foreign sharers) delegates to the shared executor methods — the same
  bytecode the reference backend runs.

Hook degradation: per-event hooks observe individual pops, so when any
of them is armed — trace sink, runtime oracle, livelock watchdog,
fault plan, verify scheduler, retry ledger, or the conflict
cross-check — :meth:`BatchMachine.run` simply runs the inherited
reference loop. Backend selection is then a pure performance choice;
it can never change semantics or observability.

The per-core busy-cycle accumulator is a flat ``array("q")`` flushed
into :class:`~repro.sim.stats.MachineStats` when the run leaves the
loop (including via a stall error); set ``REPRO_BATCH_NUMPY=1`` with
the ``[perf]`` extra installed to hold it in a numpy int64 vector
instead (identical results; only interesting on very wide machines).
"""

import heapq
import os
from array import array

from repro.common.constants import WORDS_PER_LINE
from repro.common.errors import (
    CycleLimitExceeded,
    DeadlockError,
    SimulationError,
)
from repro.core.indirection import TaintedValue
from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.htm.rwset import CapacityExceeded, ReadWriteSets
from repro.htm.sharer_index import LineSharers
from repro.memory.directory import DirectoryEntry
from repro.sim.executor import (
    BEGIN_WAIT,
    BODY,
    MAX_OPS_PER_ATTEMPT,
    STEP_BLOCK,
    STEP_DELAY,
    STEP_DONE,
)
from repro.sim.machine import Machine
from repro.sim.monitor import finalize_checkers
from repro.sim.program import AbortOp, Branch, Compute, Load, Store

try:  # The [perf] extra; the plain-array path needs nothing.
    import numpy
except ImportError:  # pragma: no cover - numpy is usually present
    numpy = None


def _busy_accumulator(num_cores):
    """Struct-of-arrays busy-cycle accumulator (one slot per core)."""
    if numpy is not None and os.environ.get("REPRO_BATCH_NUMPY"):
        return numpy.zeros(num_cores, dtype=numpy.int64)
    return array("q", [0]) * num_cores


class BatchMachine(Machine):
    """Calendar-queue backend; bit-identical to the reference loop."""

    def run(self):
        if self._needs_reference_loop():
            return super().run()
        return self._run_batched()

    def _needs_reference_loop(self):
        """True when an armed per-event hook demands the reference loop.

        The *shadow* oracle degrades (its validate_machine sampling is
        per-pop); the online monitor deliberately does not — it hooks
        commits and first accesses only, and the fused fast path below
        inlines its first-read epoch recording, so ``oracle="online"``
        stays on the batched loop at full rate.
        """
        return (
            self.scheduler is not None
            or self.trace is not None
            or self.retry_ledger is not None
            or self.oracle is not None
            or self.faults is not None
            or self.config.watchdog_cycles > 0
            or self._debug_conflict_check
        )

    def _run_batched(self):
        config = self.config
        executors = self.executors
        stats = self.stats
        design = self.design
        memsys = self.memsys
        max_cycles = config.max_cycles
        num_cores = config.num_cores

        # -- struct-of-arrays state tables --------------------------------
        # Per-core columns fetched by index in the fused path, replacing
        # the reference's attribute chains (machine -> memsys -> cache
        # list -> cache -> sets) with one list lookup each.
        step_for = [executor.step for executor in executors]
        l1_sets_by_core = [cache._sets for cache in memsys.l1]
        l2_sets_by_core = [cache._sets for cache in memsys.l2]
        l2_install_by_core = [cache.install for cache in memsys.l2]
        l1_nsets = memsys.l1[0].num_sets
        l2_nsets = memsys.l2[0].num_sets
        l3_sets = memsys.l3._sets
        l3_nsets = memsys.l3.num_sets
        l3_install = memsys.l3.install
        l1_latency = memsys.l1_latency
        drop_private = memsys._drop_private_line
        mem_read = memsys._read
        mem_write = memsys._write
        lock_holders = memsys.locks._holders
        directory_entries = memsys.directory._entries
        sharer_index = self.sharer_index
        sharer_lines = sharer_index._lines
        arbiter_resolve_line = self.arbiter.resolve_line
        power = self.power
        memory = self.memory
        mem_words = memory._words
        monitor = self.monitor
        monitor_epochs = monitor.line_epochs if monitor is not None else None
        accesses = stats.accesses_by_level
        compute_ops = stats._compute_ops
        branch_ops = stats._branch_ops
        stats_cores = stats.cores
        busy_soa = _busy_accumulator(num_cores)
        tv_new = TaintedValue.__new__

        speculative = ExecMode.SPECULATIVE
        fallback_mode = ExecMode.FALLBACK
        nacked = AbortReason.NACKED
        # The fused path replicates the HTM ("out-of-core") _step_body;
        # SLE runs the shared executor methods under the batched queue.
        fuse = config.speculation == "htm"

        def capacity_abort(ex, which, line):
            # The reference raises CapacityExceeded out of the record_*
            # call *after* tracking the line; the fused path reaches
            # here in the same state, so only the handler remains.
            exc = CapacityExceeded(which, line)
            if ex.discovery is not None:
                entry = ex.controller.ert.ensure(ex.invocation.region_id)
                entry.is_convertible = False
            return ex._abort_attempt(
                design.classify_capacity_abort(executor=ex, exc=exc),
                line=line,
            )

        def fast_body(ex):
            """Fused CoreExecutor._step_body for the dominant case.

            Preconditions proved before any state is touched; every
            deviation delegates to the shared (reference) methods.
            Returns a plain int (the STEP_DELAY payload, by far the
            common outcome — the caller schedules it without a tuple
            round-trip) or the delegated (kind, payload) tuple.
            """
            if ex.pending_abort is not None or ex._fault_abort_at is not None:
                return ex._step_body()
            attempt_ops = ex.attempt_ops + 1
            ex.attempt_ops = attempt_ops
            if attempt_ops > MAX_OPS_PER_ATTEMPT:
                return ex._abort_attempt(AbortReason.OTHER)
            try:
                op = ex.gen.send(ex.gen_send_value)
            except StopIteration:
                return ex._region_end()
            ex.gen_send_value = None
            cls = op.__class__
            if cls is Load or cls is Store:
                is_store = cls is Store
                rwsets = ex.rwsets
                if (
                    ex.mode is speculative
                    and rwsets.__class__ is ReadWriteSets
                    and rwsets._index is sharer_index
                    and not ex.locked_lines
                ):
                    spec = True
                elif (
                    ex.mode is fallback_mode
                    and rwsets is None
                    and ex.discovery is None
                    and monitor is None
                    and not ex.locked_lines
                    and not lock_holders
                ):
                    # Fallback runs under mutual exclusion with direct
                    # stores: no lock gate (table empty), no
                    # arbitration, no tracking sets — only the memory
                    # system and architectural movement remain. With
                    # the monitor armed, fallback ops delegate to the
                    # reference method, which carries its eager
                    # load/store hooks (fallback traffic is rare).
                    spec = False
                else:
                    # CL/failed modes, bounded (lrw) tracking sets,
                    # zombies: the reference hot path handles all of
                    # these; attempt_ops is already charged.
                    return ex._exec_memory_op(op, is_store=is_store)
                core = ex.core
                addr = op.addr
                addr_is_tv = addr.__class__ is TaintedValue
                word_addr = addr.value if addr_is_tv else int(addr)
                line = word_addr // WORDS_PER_LINE
                if is_store:
                    ex.attempt_stores += 1
                else:
                    ex.attempt_loads += 1

                if spec:
                    # Cacheline lock gate (speculative attempts hold no
                    # locks themselves, so the table probe decides
                    # alone; speculative requesters are always
                    # nackable). Designs without CL modes never
                    # populate the table.
                    if lock_holders:
                        holder = lock_holders.get(line)
                        if holder is not None and holder != core:
                            return ex._abort_attempt(
                                nacked, line=line, enemy=holder
                            )

                    # Conflict arbitration via the sharer index. The
                    # full resolver only runs when some *other* core
                    # tracks the line — the self-only case is
                    # NO_CONFLICT by construction
                    # (conflicting.discard(requester) empties the set)
                    # and is the overwhelmingly common one.
                    sharers = sharer_lines.get(line)
                    if sharers is not None:
                        writers = sharers.writers
                        if is_store:
                            readers = sharers.readers
                            foreign = (
                                (writers and (len(writers) > 1
                                              or core not in writers))
                                or (readers and (len(readers) > 1
                                                 or core not in readers))
                            )
                        else:
                            foreign = writers and (len(writers) > 1
                                                   or core not in writers)
                        if foreign:
                            resolution = arbiter_resolve_line(
                                core, line, is_store, False, sharers,
                                power_core=power.holder,
                            )
                            reason = resolution.requester_abort_reason
                            if reason is not None:
                                return ex._abort_attempt(
                                    reason, line=line,
                                    enemy=resolution.nacking_core,
                                )
                            for victim in resolution.victims:
                                executors[victim].receive_remote_conflict(
                                    line, is_store, core
                                )

                # Memory system: fused private-hit classification +
                # directory transition + LRU fill; anything that needs
                # the full model (misses, upgrades, invalidation
                # rounds, C2C sourcing) runs the reference _read/_write.
                l1_entries = l1_sets_by_core[core][line % l1_nsets]
                in_l1 = line in l1_entries
                dentry = directory_entries.get(line)
                fused_fill = False
                if is_store:
                    if in_l1 and dentry is not None:
                        owner = dentry.owner
                        dsharers = dentry.sharers
                        if (owner == core and not dsharers) or (
                            owner is None
                            and len(dsharers) == 1
                            and core in dsharers
                        ):
                            # Private re-write: exclusive (or sole
                            # shared) copy in our L1 — record_write
                            # invalidates nobody and C2C cannot apply.
                            if dsharers:
                                dsharers.clear()
                            dentry.owner = core
                            latency = l1_latency
                            accesses["L1"] += 1
                            fused_fill = True
                    if not fused_fill:
                        result = mem_write(core, line)
                        accesses[result.level] += 1
                        latency = result.latency
                else:
                    if in_l1:
                        # L1 read hit: level is L1 whatever the
                        # directory says (C2C only upgrades L3/MEM), so
                        # only the record_read transition remains.
                        if dentry is None:
                            dentry = DirectoryEntry()
                            directory_entries[line] = dentry
                        else:
                            owner = dentry.owner
                            if owner is not None and owner != core:
                                dentry.sharers.add(owner)
                                dentry.owner = None
                        dentry.sharers.add(core)
                        latency = l1_latency
                        accesses["L1"] += 1
                        fused_fill = True
                    else:
                        result = mem_read(core, line)
                        accesses[result.level] += 1
                        latency = result.latency
                if fused_fill:
                    # memsys._fill with every install expanded to its
                    # hit path (LRU move_to_end); a non-resident level
                    # falls back to the real install/evict machinery.
                    e3 = l3_sets[line % l3_nsets]
                    if line in e3:
                        e3.move_to_end(line)
                    else:
                        l3_install(line)
                    e2 = l2_sets_by_core[core][line % l2_nsets]
                    if line in e2:
                        e2.move_to_end(line)
                    else:
                        l2_evicted = l2_install_by_core[core](line)
                        if l2_evicted is not None:
                            drop_private(core, l2_evicted)
                    l1_entries.move_to_end(line)

                if not spec:
                    # Fallback architectural movement: stores go
                    # straight to memory (memory.store/load expanded;
                    # no write buffer exists to probe).
                    if is_store:
                        value = op.value
                        memory.store_count += 1
                        mem_words[word_addr] = (
                            value.value if value.__class__ is TaintedValue
                            else int(value)
                        )
                    else:
                        memory.load_count += 1
                        loaded = tv_new(TaintedValue)
                        loaded.value = mem_words.get(word_addr, 0)
                        loaded.tainted = True
                        ex.gen_send_value = loaded
                    busy_soa[core] += latency
                    return latency

                # Speculative set tracking / capacity — the reference
                # record_write/record_read bodies with the sharer-index
                # registration expanded inline.
                if is_store:
                    write_set = rwsets.write_set
                    if line not in write_set:
                        write_set.add(line)
                        entry = sharer_lines.get(line)
                        if entry is None:
                            entry = LineSharers()
                            sharer_lines[line] = entry
                        entry.writers.add(core)
                        l2_geom = rwsets._l2_sets
                        if l2_geom is not None and line not in rwsets.read_set:
                            counts = rwsets._union_counts
                            idx = line % l2_geom
                            count = counts.get(idx, 0) + 1
                            counts[idx] = count
                            if count == rwsets._l2_assoc + 1:
                                rwsets._union_over += 1
                        l1_geom = rwsets._l1_sets
                        if l1_geom is not None:
                            counts = rwsets._write_counts
                            idx = line % l1_geom
                            count = counts.get(idx, 0) + 1
                            counts[idx] = count
                            if count == rwsets._l1_assoc + 1:
                                rwsets._write_over += 1
                            if rwsets._write_over:
                                return capacity_abort(ex, "write", line)
                else:
                    read_set = rwsets.read_set
                    if line not in read_set:
                        read_set.add(line)
                        entry = sharer_lines.get(line)
                        if entry is None:
                            entry = LineSharers()
                            sharer_lines[line] = entry
                        entry.readers.add(core)
                        # Online-monitor shim: the reference
                        # record_read's first-read epoch snapshot,
                        # inlined so an armed monitor keeps the fused
                        # path instead of degrading the backend.
                        if monitor_epochs is not None:
                            rwsets.monitor_reads[line] = (
                                monitor_epochs.get(line, 0)
                            )
                        l2_geom = rwsets._l2_sets
                        if l2_geom is not None:
                            if line not in rwsets.write_set:
                                counts = rwsets._union_counts
                                idx = line % l2_geom
                                count = counts.get(idx, 0) + 1
                                counts[idx] = count
                                if count == rwsets._l2_assoc + 1:
                                    rwsets._union_over += 1
                            if rwsets._union_over:
                                return capacity_abort(ex, "read", line)

                # Discovery footprint tracking (CLEAR designs). Mode is
                # SPECULATIVE here, so the failed-discovery exhaustion
                # check of the reference path cannot trigger.
                discovery = ex.discovery
                if discovery is not None:
                    tainted = addr_is_tv and addr.tainted
                    if is_store:
                        discovery.on_store(line, tainted)
                    else:
                        discovery.on_load(line, tainted)

                # Architectural data movement + busy accounting.
                if is_store:
                    value = op.value
                    rwsets._write_buffer[word_addr] = (
                        value.value if value.__class__ is TaintedValue
                        else int(value)
                    )
                else:
                    buffered = rwsets._write_buffer
                    value = buffered.get(word_addr) if buffered else None
                    if value is None:
                        memory.load_count += 1
                        value = mem_words.get(word_addr, 0)
                    # TaintedValue(value, tainted=True) without the
                    # constructor's int()/bool() coercions — buffered
                    # and architectural words are always plain ints.
                    loaded = tv_new(TaintedValue)
                    loaded.value = value
                    loaded.tainted = True
                    ex.gen_send_value = loaded
                busy_soa[core] += latency
                return latency
            if cls is Compute:
                discovery = ex.discovery
                if discovery is not None:
                    discovery.on_compute(op.ops)
                compute_ops.value += op.ops
                cycles = op.cycles
                if cycles < 1:
                    cycles = 1
                busy_soa[ex.core] += cycles
                return cycles
            if cls is Branch:
                discovery = ex.discovery
                if discovery is not None:
                    condition = op.condition
                    discovery.on_branch(
                        condition.__class__ is TaintedValue
                        and condition.tainted
                    )
                branch_ops.value += 1
                busy_soa[ex.core] += 1
                return 1
            # Rare ops and op subclasses: the reference dispatch tail.
            if isinstance(op, Load):
                return ex._exec_memory_op(op, is_store=False)
            if isinstance(op, Store):
                return ex._exec_memory_op(op, is_store=True)
            if isinstance(op, Compute):
                if ex.discovery is not None:
                    ex.discovery.on_compute(op.ops)
                stats.record_compute(op.ops)
                return ex._busy(max(1, op.cycles))
            if isinstance(op, Branch):
                if ex.discovery is not None:
                    ex.discovery.on_branch(op.condition_tainted)
                stats.record_branch()
                return ex._busy(1)
            if isinstance(op, AbortOp):
                if ex.mode is ExecMode.FALLBACK:
                    return ex._commit(via_abort=True)
                return ex._abort_attempt(AbortReason.EXPLICIT)
            raise TypeError("AR body yielded unknown op {!r}".format(op))

        # -- the calendar queue -------------------------------------------
        heappush = heapq.heappush
        heappop = heapq.heappop
        fallback_write_held = self.fallback.is_write_held
        times = [0]
        buckets = {0: list(range(num_cores))}
        parked = {}
        now = 0
        events = 0
        self.event_count = 0

        def cycle_limit_exceeded(now):
            # Same exception the reference loop raises when it pops an
            # event past the budget (the event itself is not counted).
            stats.truncated = True
            stats.makespan_cycles = max(stats.makespan_cycles, now)
            return CycleLimitExceeded(
                "cycle limit {} exceeded with the workload unfinished "
                "({} of {} cores done)".format(
                    max_cycles,
                    sum(1 for ex in executors
                        if ex.finish_time is not None),
                    num_cores,
                ),
                diagnostic=self.diagnostic_dump(now, parked),
                stats=stats,
            )

        try:
            while times:
                now = heappop(times)
                bucket = buckets.pop(now)
                self.now = now
                if now > max_cycles:
                    raise cycle_limit_exceeded(now)
                if len(bucket) > 1:
                    # Heap order is (cycle, core): within one cycle the
                    # reference drains cores ascending.
                    bucket.sort()
                elif not times:
                    # Lone runner: every other core is parked or done,
                    # so until this core parks, finishes, or releases
                    # something, each pop would return it right back.
                    # Step it in place, advancing ``now`` directly and
                    # touching neither the heap nor the bucket map.
                    core = bucket[0]
                    ex = executors[core]
                    while True:
                        events += 1
                        if fuse and ex.phase == BODY:
                            result = fast_body(ex)
                            if result.__class__ is int:
                                now += result if result > 1 else 1
                                if now > max_cycles:
                                    raise cycle_limit_exceeded(now)
                                self.now = now
                                continue
                            kind, payload = result
                        else:
                            kind, payload = step_for[core](now)
                        if kind == STEP_DELAY:
                            wake = now + (payload if payload > 1 else 1)
                            buckets[wake] = [core]
                            heappush(times, wake)
                        elif kind == STEP_BLOCK:
                            parked[core] = now
                        elif kind != STEP_DONE:
                            raise SimulationError(
                                "unknown step result {!r}".format(kind)
                            )
                        if self._release_pending:
                            self._release_pending = False
                            if parked:
                                wake = now + 1
                                queued = buckets.get(wake)
                                if queued is None:
                                    queued = buckets[wake] = []
                                    heappush(times, wake)
                                for parked_core, park_time in parked.items():
                                    stats_cores[parked_core].wait_cycles += (
                                        now - park_time
                                    )
                                    queued.append(parked_core)
                                parked.clear()
                        break
                    continue
                for core in bucket:
                    events += 1
                    ex = executors[core]
                    phase = ex.phase
                    if fuse and phase == BODY:
                        result = fast_body(ex)
                        if result.__class__ is int:
                            # Fused STEP_DELAY: schedule without the
                            # tuple round-trip. A fused op never parks
                            # and never releases anything, so the
                            # release check is skipped too.
                            wake = now + (result if result > 1 else 1)
                            queued = buckets.get(wake)
                            if queued is None:
                                buckets[wake] = [core]
                                heappush(times, wake)
                            else:
                                queued.append(core)
                            continue
                        kind, payload = result
                    elif phase == BEGIN_WAIT and fallback_write_held():
                        # Fused _step_begin_wait re-park: the dominant
                        # event under fallback serialization (every
                        # release wakes all waiters; the losers re-park
                        # here). Parking releases nothing.
                        parked[core] = now
                        continue
                    else:
                        kind, payload = step_for[core](now)
                    if kind == STEP_DELAY:
                        wake = now + (payload if payload > 1 else 1)
                        queued = buckets.get(wake)
                        if queued is None:
                            buckets[wake] = [core]
                            heappush(times, wake)
                        else:
                            queued.append(core)
                    elif kind == STEP_BLOCK:
                        parked[core] = now
                    elif kind != STEP_DONE:
                        raise SimulationError(
                            "unknown step result {!r}".format(kind)
                        )
                    if self._release_pending:
                        # Processed per step, not per bucket: a core
                        # parked later in this same bucket must not be
                        # woken by an earlier release.
                        self._release_pending = False
                        if parked:
                            wake = now + 1
                            queued = buckets.get(wake)
                            if queued is None:
                                queued = buckets[wake] = []
                                heappush(times, wake)
                            for parked_core, park_time in parked.items():
                                stats_cores[parked_core].wait_cycles += (
                                    now - park_time
                                )
                                queued.append(parked_core)
                            parked.clear()
        finally:
            self.event_count = events
            for core in range(num_cores):
                busy = busy_soa[core]
                if busy:
                    stats_cores[core].busy_cycles += int(busy)
        if parked:
            raise DeadlockError(
                "deadlock: cores {} parked with no runnable core to release "
                "what they wait on".format(sorted(parked)),
                diagnostic=self.diagnostic_dump(now, parked),
                stats=stats,
            )
        finish_times = [
            executor.finish_time
            for executor in executors
            if executor.finish_time is not None
        ]
        stats.makespan_cycles = max(finish_times) if finish_times else now
        annotations = design.stat_annotations(machine=self)
        if annotations:
            stats.design_annotations = dict(annotations)
        if monitor is not None:
            # Only the monitor can be armed here (the shadow oracle
            # degrades to the reference loop above), but the shared
            # dispatcher keeps the two loops' end-of-run behaviour
            # textually identical.
            finalize_checkers(self)
        return stats
