"""Whole-machine consistency validation.

`validate_machine` cross-checks the state the subsystems keep about
each other and raises :class:`repro.common.errors.ProtocolError` on any
inconsistency. Tests (including the property suites) call it after —
and during — runs; it is also handy when extending the simulator.

Checked invariants:

1. every locked line is pinned in its holder's L1 and L2, and owned by
   the holder in the directory;
2. every pinned L1 line of a core is actually locked by that core;
3. fallback writer and readers never coexist;
4. a core holding cacheline locks is in a CL mode (or fallback never);
5. the power token holder, if any, is a valid core id;
6. L1 contents are included in L2 (private-cache inclusion);
7. the machine-global sharer index equals a from-scratch rebuild over
   the conflict-visible attempts (phase BODY, speculative non-failed
   mode, live rwsets, no pending abort).
"""

from repro.common.errors import ProtocolError
from repro.core.modes import ExecMode


def validate_machine(machine):
    """Raise ProtocolError if any cross-subsystem invariant is broken."""
    _validate_locks(machine)
    _validate_fallback(machine)
    _validate_power(machine)
    _validate_inclusion(machine)
    _validate_sharer_index(machine)
    return True


def _validate_locks(machine):
    memsys = machine.memsys
    for core in range(machine.config.num_cores):
        for line in memsys.locks.held_lines(core):
            if memsys.locks.holder(line) != core:
                raise ProtocolError(
                    "lock table disagrees on holder of line {}".format(line)
                )
            if not memsys.l1[core].is_pinned(line):
                raise ProtocolError(
                    "line {} locked by core {} but not pinned in its L1".format(
                        line, core
                    )
                )
            if not memsys.directory.is_owner(core, line):
                raise ProtocolError(
                    "line {} locked by core {} but not owned in the directory".format(
                        line, core
                    )
                )
        for line in memsys.l1[core].resident_lines():
            if memsys.l1[core].is_pinned(line) and memsys.locks.holder(line) != core:
                raise ProtocolError(
                    "core {} has line {} pinned without holding its lock".format(
                        core, line
                    )
                )


def _validate_fallback(machine):
    fallback = machine.fallback
    if fallback.is_write_held() and fallback.readers:
        raise ProtocolError(
            "fallback lock held by writer {} and readers {} at once".format(
                fallback.writer, sorted(fallback.readers)
            )
        )
    for reader in fallback.readers:
        if not 0 <= reader < machine.config.num_cores:
            raise ProtocolError("fallback reader {} is not a core".format(reader))


def _validate_power(machine):
    holder = machine.power.holder
    if holder is not None and not 0 <= holder < machine.config.num_cores:
        raise ProtocolError("power token held by non-core {}".format(holder))


def _validate_sharer_index(machine):
    expected = {}
    for executor in machine.executors:
        if not executor.in_flight_speculative:
            continue
        if executor.pending_abort is not None:
            continue
        if executor.mode is ExecMode.FAILED_DISCOVERY:
            continue
        rwsets = executor.rwsets
        if rwsets is None:
            continue
        core = executor.core
        for line in rwsets.read_set:
            expected.setdefault(line, (set(), set()))[0].add(core)
        for line in rwsets.write_set:
            expected.setdefault(line, (set(), set()))[1].add(core)
    actual = machine.sharer_index.snapshot()
    rebuilt = {
        line: (frozenset(readers), frozenset(writers))
        for line, (readers, writers) in expected.items()
    }
    if actual != rebuilt:
        stale = sorted(set(actual) ^ set(rebuilt))[:8]
        raise ProtocolError(
            "sharer index diverged from a from-scratch rebuild "
            "(first differing lines: {})".format(stale)
        )


def _validate_inclusion(machine):
    memsys = machine.memsys
    for core in range(machine.config.num_cores):
        l2_lines = set(memsys.l2[core].resident_lines())
        for line in memsys.l1[core].resident_lines():
            if line not in l2_lines:
                raise ProtocolError(
                    "core {} L1 line {} missing from its inclusive L2".format(
                        core, line
                    )
                )
