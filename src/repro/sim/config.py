"""Machine configuration (paper Table 2) and policy selection.

The four evaluated configurations map onto two booleans:

========== =================== =============
Paper name ``powertm``          ``clear``
========== =================== =============
B           False               False
P           True                False
C           False               True
W           True                True
========== =================== =============
"""

import enum

from repro.common.errors import ConfigurationError


class HtmPolicy(enum.Enum):
    """Conflict-resolution baseline."""

    REQUESTER_WINS = "requester_wins"
    POWER_TM = "power_tm"


class SimConfig:
    """All machine and policy parameters of a simulation.

    Defaults reproduce Table 2: 32 Icelake-like cores, 48 KiB/12-way L1D,
    512 KiB/8-way L2, 4 MiB/16-way L3, latencies 1/10/45/80 cycles,
    ROB 352, LQ 128, SQ 72 entries; TSX-like HTM with a best-of-1..10
    retry threshold before the fallback lock.
    """

    def __init__(
        self,
        num_cores=32,
        # -- caches and memory (Table 2) --
        l1_size=48 * 1024,
        l1_assoc=12,
        l2_size=512 * 1024,
        l2_assoc=8,
        l3_size=4 * 1024 * 1024,
        l3_assoc=16,
        l1_latency=1,
        l2_latency=10,
        l3_latency=45,
        mem_latency=80,
        directory_sets=4096,
        # -- core speculative window (Table 2) --
        rob_entries=352,
        lq_entries=128,
        sq_entries=72,
        # -- speculation substrate --
        # "htm": TSX-like out-of-core speculation (§4.2/§4.4); the SQ is
        #        the only in-core limit on failed-mode discovery.
        # "sle": in-core speculation (§4.1/§4.3); every speculative
        #        attempt is bounded by the ROB/LQ/SQ window.
        speculation="htm",
        # -- HTM policy --
        retry_threshold=5,
        powertm=False,
        backoff_base=8,
        backoff_max_exponent=6,
        # -- CLEAR --
        clear=False,
        ert_entries=16,
        alt_entries=32,
        crt_entries=64,
        crt_assoc=8,
        # Ablation knobs (paper defaults first):
        # §4.4.2 discusses locking only the write set plus previously
        # conflicting reads ("writes", the paper's choice) versus all
        # accessed addresses ("all") in S-CL.
        scl_lock_policy="writes",
        # §4.1: on a conflict, keep discovering in failed mode instead
        # of aborting immediately.
        failed_mode_discovery=True,
        # §5: the Conflicting Reads Table feeding S-CL lock promotion.
        crt_enabled=True,
        # -- transaction overheads (cycles) --
        tx_begin_cycles=30,
        tx_commit_cycles=25,
        tx_abort_cycles=50,
        lock_release_cycles=4,
        # -- run control --
        max_cycles=60_000_000,
    ):
        if num_cores <= 0:
            raise ConfigurationError("need at least one core")
        if retry_threshold < 1:
            raise ConfigurationError("retry threshold must be >= 1")
        if alt_entries < 1 or ert_entries < 1:
            raise ConfigurationError("CLEAR tables need at least one entry")
        if speculation not in ("htm", "sle"):
            raise ConfigurationError(
                "speculation must be 'htm' or 'sle', not {!r}".format(speculation)
            )
        if scl_lock_policy not in ("writes", "all"):
            raise ConfigurationError(
                "scl_lock_policy must be 'writes' or 'all', not {!r}".format(
                    scl_lock_policy
                )
            )
        self.num_cores = num_cores
        self.l1_size = l1_size
        self.l1_assoc = l1_assoc
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l3_size = l3_size
        self.l3_assoc = l3_assoc
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.l3_latency = l3_latency
        self.mem_latency = mem_latency
        self.directory_sets = directory_sets
        self.speculation = speculation
        self.rob_entries = rob_entries
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self.retry_threshold = retry_threshold
        self.powertm = powertm
        self.backoff_base = backoff_base
        self.backoff_max_exponent = backoff_max_exponent
        self.clear = clear
        self.ert_entries = ert_entries
        self.alt_entries = alt_entries
        self.crt_entries = crt_entries
        self.crt_assoc = crt_assoc
        self.scl_lock_policy = scl_lock_policy
        self.failed_mode_discovery = failed_mode_discovery
        self.crt_enabled = crt_enabled
        self.tx_begin_cycles = tx_begin_cycles
        self.tx_commit_cycles = tx_commit_cycles
        self.tx_abort_cycles = tx_abort_cycles
        self.lock_release_cycles = lock_release_cycles
        self.max_cycles = max_cycles

    @property
    def htm_policy(self):
        """The conflict-resolution baseline in use."""
        return HtmPolicy.POWER_TM if self.powertm else HtmPolicy.REQUESTER_WINS

    @property
    def config_letter(self):
        """The paper's single-letter configuration name (B/P/C/W)."""
        if self.clear:
            return "W" if self.powertm else "C"
        return "P" if self.powertm else "B"

    def replaced(self, **overrides):
        """A copy of this configuration with some fields replaced."""
        fields = dict(
            num_cores=self.num_cores,
            l1_size=self.l1_size,
            l1_assoc=self.l1_assoc,
            l2_size=self.l2_size,
            l2_assoc=self.l2_assoc,
            l3_size=self.l3_size,
            l3_assoc=self.l3_assoc,
            l1_latency=self.l1_latency,
            l2_latency=self.l2_latency,
            l3_latency=self.l3_latency,
            mem_latency=self.mem_latency,
            directory_sets=self.directory_sets,
            speculation=self.speculation,
            rob_entries=self.rob_entries,
            lq_entries=self.lq_entries,
            sq_entries=self.sq_entries,
            retry_threshold=self.retry_threshold,
            powertm=self.powertm,
            backoff_base=self.backoff_base,
            backoff_max_exponent=self.backoff_max_exponent,
            clear=self.clear,
            ert_entries=self.ert_entries,
            alt_entries=self.alt_entries,
            crt_entries=self.crt_entries,
            crt_assoc=self.crt_assoc,
            scl_lock_policy=self.scl_lock_policy,
            failed_mode_discovery=self.failed_mode_discovery,
            crt_enabled=self.crt_enabled,
            tx_begin_cycles=self.tx_begin_cycles,
            tx_commit_cycles=self.tx_commit_cycles,
            tx_abort_cycles=self.tx_abort_cycles,
            lock_release_cycles=self.lock_release_cycles,
            max_cycles=self.max_cycles,
        )
        fields.update(overrides)
        return SimConfig(**fields)

    @classmethod
    def for_letter(cls, letter, **overrides):
        """Build a configuration from the paper's B/P/C/W naming."""
        flags = {
            "B": dict(powertm=False, clear=False),
            "P": dict(powertm=True, clear=False),
            "C": dict(powertm=False, clear=True),
            "W": dict(powertm=True, clear=True),
        }
        if letter not in flags:
            raise ConfigurationError("unknown configuration {!r}".format(letter))
        fields = dict(flags[letter])
        fields.update(overrides)
        return cls(**fields)
