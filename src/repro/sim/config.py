"""Machine configuration (paper Table 2) and policy selection.

The four evaluated configurations map onto two booleans:

========== =================== =============
Paper name ``powertm``          ``clear``
========== =================== =============
B           False               False
P           True                False
C           False               True
W           True                True
========== =================== =============

:class:`SimConfig` is a frozen dataclass: every field is declared
exactly once, and ``replaced()``/``to_dict()``/``from_dict()``/
``fingerprint()`` are all derived from :func:`dataclasses.fields`, so
adding a knob is a one-line change that automatically flows into
copying, serialization, and the experiment cache key.
"""

import dataclasses
import enum
import hashlib
import json

from repro.common.errors import ConfigurationError
from repro.common.serialize import Serializable


class HtmPolicy(enum.Enum):
    """Conflict-resolution baseline."""

    REQUESTER_WINS = "requester_wins"
    POWER_TM = "power_tm"


@dataclasses.dataclass(frozen=True)
class SimConfig(Serializable):
    """All machine and policy parameters of a simulation.

    Defaults reproduce Table 2: 32 Icelake-like cores, 48 KiB/12-way L1D,
    512 KiB/8-way L2, 4 MiB/16-way L3, latencies 1/10/45/80 cycles,
    ROB 352, LQ 128, SQ 72 entries; TSX-like HTM with a best-of-1..10
    retry threshold before the fallback lock.
    """

    num_cores: int = 32
    # -- caches and memory (Table 2) --
    l1_size: int = 48 * 1024
    l1_assoc: int = 12
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l3_size: int = 4 * 1024 * 1024
    l3_assoc: int = 16
    l1_latency: int = 1
    l2_latency: int = 10
    l3_latency: int = 45
    mem_latency: int = 80
    directory_sets: int = 4096
    # -- core speculative window (Table 2) --
    rob_entries: int = 352
    lq_entries: int = 128
    sq_entries: int = 72
    # -- speculation substrate --
    # "htm": TSX-like out-of-core speculation (§4.2/§4.4); the SQ is
    #        the only in-core limit on failed-mode discovery.
    # "sle": in-core speculation (§4.1/§4.3); every speculative
    #        attempt is bounded by the ROB/LQ/SQ window.
    speculation: str = "htm"
    # -- HTM policy --
    retry_threshold: int = 5
    powertm: bool = False
    backoff_base: int = 8
    backoff_max_exponent: int = 6
    # -- CLEAR --
    clear: bool = False
    ert_entries: int = 16
    alt_entries: int = 32
    crt_entries: int = 64
    crt_assoc: int = 8
    # Ablation knobs (paper defaults first):
    # §4.4.2 discusses locking only the write set plus previously
    # conflicting reads ("writes", the paper's choice) versus all
    # accessed addresses ("all") in S-CL.
    scl_lock_policy: str = "writes"
    # §4.1: on a conflict, keep discovering in failed mode instead
    # of aborting immediately.
    failed_mode_discovery: bool = True
    # §5: the Conflicting Reads Table feeding S-CL lock promotion.
    crt_enabled: bool = True
    # -- transaction overheads (cycles) --
    tx_begin_cycles: int = 30
    tx_commit_cycles: int = 25
    tx_abort_cycles: int = 50
    lock_release_cycles: int = 4
    # -- run control --
    max_cycles: int = 60_000_000
    # -- robustness: fault injection (repro.sim.faults) --
    # All default to "off"; with every rate/amplitude at zero the
    # machine builds no FaultPlan and every hook is a skipped None
    # check, so default runs are bit-identical to a chaos-free build.
    # Per-attempt probability of an injected spurious abort on a
    # speculative attempt (TSX-class interrupt/microarchitectural
    # aborts our conflict model never produces on its own).
    fault_spurious_rate: float = 0.0
    # Per-attempt probability of an injected capacity-style abort.
    fault_capacity_rate: float = 0.0
    # Max extra cycles of coherence-latency jitter per memory access.
    fault_jitter_cycles: int = 0
    # Max extra cycles a parked core's lock-release wakeup is delayed.
    fault_wakeup_delay_cycles: int = 0
    # -- robustness: runtime oracles (repro.sim.oracle) --
    # Commit-order serializability replay + leak checks + periodic
    # validate_machine sampling. Zero simulated-time cost; off by
    # default because the shadow replay costs host time.
    oracle: bool = False
    # Event-loop pops between validate_machine samples while the
    # oracle is enabled.
    oracle_validate_interval: int = 4096
    # Livelock watchdog: trip when no AR commits within this many
    # cycles while cores are still runnable (0 disables).
    watchdog_cycles: int = 0
    # Cross-validate every sharer-index conflict resolution against the
    # legacy full peer scan (the oracle path); any divergence raises
    # ConflictIndexMismatch. Host-time cost only, zero simulated-time
    # effect — results are identical either way.
    debug_conflict_check: bool = False

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigurationError("need at least one core")
        if self.retry_threshold < 1:
            raise ConfigurationError("retry threshold must be >= 1")
        if self.alt_entries < 1 or self.ert_entries < 1:
            raise ConfigurationError("CLEAR tables need at least one entry")
        if self.speculation not in ("htm", "sle"):
            raise ConfigurationError(
                "speculation must be 'htm' or 'sle', not {!r}".format(
                    self.speculation
                )
            )
        if self.scl_lock_policy not in ("writes", "all"):
            raise ConfigurationError(
                "scl_lock_policy must be 'writes' or 'all', not {!r}".format(
                    self.scl_lock_policy
                )
            )
        for rate_name in ("fault_spurious_rate", "fault_capacity_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    "{} must be in [0, 1], not {!r}".format(rate_name, rate)
                )
        if self.fault_spurious_rate + self.fault_capacity_rate > 1.0:
            raise ConfigurationError(
                "fault_spurious_rate + fault_capacity_rate must not exceed 1"
            )
        for cycles_name in ("fault_jitter_cycles", "fault_wakeup_delay_cycles",
                            "watchdog_cycles"):
            if getattr(self, cycles_name) < 0:
                raise ConfigurationError(
                    "{} must be non-negative".format(cycles_name)
                )
        if self.oracle_validate_interval < 1:
            raise ConfigurationError(
                "oracle_validate_interval must be >= 1"
            )

    @property
    def chaos_enabled(self):
        """True when any fault-injection knob is active."""
        return (
            self.fault_spurious_rate > 0.0
            or self.fault_capacity_rate > 0.0
            or self.fault_jitter_cycles > 0
            or self.fault_wakeup_delay_cycles > 0
        )

    @property
    def htm_policy(self):
        """The conflict-resolution baseline in use."""
        return HtmPolicy.POWER_TM if self.powertm else HtmPolicy.REQUESTER_WINS

    @property
    def config_letter(self):
        """The paper's single-letter configuration name (B/P/C/W)."""
        if self.clear:
            return "W" if self.powertm else "C"
        return "P" if self.powertm else "B"

    def replaced(self, **overrides):
        """A copy of this configuration with some fields replaced."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self):
        """All fields as a JSON-serializable dict (field-name keyed)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys raise :class:`ConfigurationError` rather than being
        silently dropped, so stale cache entries or hand-edited configs
        fail loudly.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "unknown SimConfig fields: {}".format(sorted(unknown))
            )
        return cls(**data)

    def fingerprint(self):
        """SHA-256 hex digest of the full configuration.

        Canonical (sorted-key, compact) JSON over every declared field;
        two configs share a fingerprint iff all fields are equal. Used
        as the configuration component of the experiment cache key.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def for_letter(cls, letter, **overrides):
        """Build a configuration from the paper's B/P/C/W naming."""
        flags = {
            "B": dict(powertm=False, clear=False),
            "P": dict(powertm=True, clear=False),
            "C": dict(powertm=False, clear=True),
            "W": dict(powertm=True, clear=True),
        }
        if letter not in flags:
            raise ConfigurationError("unknown configuration {!r}".format(letter))
        fields = dict(flags[letter])
        fields.update(overrides)
        return cls(**fields)
