"""Machine configuration (paper Table 2) and policy selection.

The HTM design is selected by the canonical ``design`` field, keyed
into :data:`~repro.htm.design.DESIGN_REGISTRY`. The paper's four
configurations map onto the legacy letters:

========== ===================
Paper name ``design``
========== ===================
B           ``baseline``
P           ``powertm``
C           ``clear``
W           ``clear+powertm``
========== ===================

The historical ``powertm``/``clear`` booleans survive as deprecated
constructor aliases (and silent read properties) that normalize into
``design``; :meth:`SimConfig.from_dict` migrates pre-v3 payloads that
still spell them.

:class:`SimConfig` is a frozen dataclass: every field is declared
exactly once, and ``replaced()``/``to_dict()``/``from_dict()``/
``fingerprint()`` are all derived from :func:`dataclasses.fields`, so
adding a knob is a one-line change that automatically flows into
copying, serialization, and the experiment cache key.
"""

import dataclasses
import enum
import hashlib
import json
import warnings

from repro.common.errors import ConfigurationError
from repro.common.serialize import Serializable
from repro.htm.design import (
    DESIGN_REGISTRY,
    LEGACY_LETTER_DESIGNS,
    design_name,
)

_UNSET = object()

#: Registered simulation backends: the reference event loop and the
#: batched calendar-queue loop (repro.sim.batch). The reference
#: backend is the semantic oracle; "batch" is bit-identical but
#: trades per-event hook granularity for throughput (hooks that need
#: per-event fidelity degrade it back to the reference loop).
BACKENDS = ("reference", "batch")

#: Serializability-checker modes for ``SimConfig.oracle``:
#:
#: - ``"off"``: no checking (the default).
#: - ``"shadow"``: the legacy :class:`~repro.sim.oracle.RuntimeOracle`
#:   — commit-order replay against a shadow memory plus periodic
#:   ``validate_machine`` sampling. Thorough but host-slow.
#: - ``"online"``: the :class:`~repro.sim.monitor.OnlineMonitor` —
#:   incremental epoch/region tracking checked at each commit, cheap
#:   enough to leave on under the bench grid and ``repro.verify``.
#: - ``"cross-check"``: both checkers run and their verdicts are
#:   compared; any divergence raises
#:   :class:`~repro.common.errors.OracleDivergence`.
ORACLE_MODES = ("off", "shadow", "online", "cross-check")


class HtmPolicy(enum.Enum):
    """Conflict-resolution baseline."""

    REQUESTER_WINS = "requester_wins"
    POWER_TM = "power_tm"


def _design_from_flags(powertm, clear):
    """The design name the legacy boolean pair spells."""
    if clear:
        return "clear+powertm" if powertm else "clear"
    return "powertm" if powertm else "baseline"


def _warn_flag_kwargs():
    warnings.warn(
        "SimConfig(powertm=..., clear=...) is deprecated; pass "
        "design='baseline'/'powertm'/'clear'/'clear+powertm' instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _warn_oracle_bool(stacklevel=3):
    warnings.warn(
        "oracle=True/False is deprecated; pass an oracle mode name "
        "('off', 'shadow', 'online', or 'cross-check') instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_oracle_mode(value, *, stacklevel=3):
    """Normalize an ``oracle=`` argument to a canonical mode name.

    ``None`` passes through (meaning "leave the config's mode alone");
    the deprecated booleans warn and map to exactly ``"shadow"`` /
    ``"off"``; mode names validate against :data:`ORACLE_MODES`. The
    single compat funnel for the constructor shim, ``from_dict``, the
    :mod:`repro.api` facade, and the CLI flag layer.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        _warn_oracle_bool(stacklevel=stacklevel + 1)
        return "shadow" if value else "off"
    if value not in ORACLE_MODES:
        raise ConfigurationError(
            "oracle must be one of {}, not {!r}".format(
                ", ".join(repr(mode) for mode in ORACLE_MODES), value
            )
        )
    return value


@dataclasses.dataclass(frozen=True)
class SimConfig(Serializable):
    """All machine and policy parameters of a simulation.

    Defaults reproduce Table 2: 32 Icelake-like cores, 48 KiB/12-way L1D,
    512 KiB/8-way L2, 4 MiB/16-way L3, latencies 1/10/45/80 cycles,
    ROB 352, LQ 128, SQ 72 entries; TSX-like HTM with a best-of-1..10
    retry threshold before the fallback lock.
    """

    num_cores: int = 32
    # -- caches and memory (Table 2) --
    l1_size: int = 48 * 1024
    l1_assoc: int = 12
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l3_size: int = 4 * 1024 * 1024
    l3_assoc: int = 16
    l1_latency: int = 1
    l2_latency: int = 10
    l3_latency: int = 45
    mem_latency: int = 80
    directory_sets: int = 4096
    # -- core speculative window (Table 2) --
    rob_entries: int = 352
    lq_entries: int = 128
    sq_entries: int = 72
    # -- speculation substrate --
    # "htm": TSX-like out-of-core speculation (§4.2/§4.4); the SQ is
    #        the only in-core limit on failed-mode discovery.
    # "sle": in-core speculation (§4.1/§4.3); every speculative
    #        attempt is bounded by the ROB/LQ/SQ window.
    speculation: str = "htm"
    # -- HTM policy --
    retry_threshold: int = 5
    backoff_base: int = 8
    backoff_max_exponent: int = 6
    # -- HTM design (repro.htm.design) --
    # Canonical registry key selecting the protocol backend; the
    # deprecated powertm/clear constructor aliases normalize into it.
    design: str = "baseline"
    # -- CLEAR --
    ert_entries: int = 16
    alt_entries: int = 32
    crt_entries: int = 64
    crt_assoc: int = 8
    # Ablation knobs (paper defaults first):
    # §4.4.2 discusses locking only the write set plus previously
    # conflicting reads ("writes", the paper's choice) versus all
    # accessed addresses ("all") in S-CL.
    scl_lock_policy: str = "writes"
    # §4.1: on a conflict, keep discovering in failed mode instead
    # of aborting immediately.
    failed_mode_discovery: bool = True
    # §5: the Conflicting Reads Table feeding S-CL lock promotion.
    crt_enabled: bool = True
    # -- LRW (design "lrw"): flat per-attempt tracking budgets --
    # Distinct lines the bounded read/write tracking structures hold
    # before the attempt overflows straight to the fallback path.
    lrw_read_lines: int = 64
    lrw_write_lines: int = 16
    # -- Big Atomics (design "bigatomics") --
    # Footprints of at most this many lines commit multiword-atomically
    # in a short constant time instead of the full commit sequence.
    bigatomics_lines: int = 8
    bigatomics_commit_cycles: int = 6
    # -- transaction overheads (cycles) --
    tx_begin_cycles: int = 30
    tx_commit_cycles: int = 25
    tx_abort_cycles: int = 50
    lock_release_cycles: int = 4
    # -- run control --
    max_cycles: int = 60_000_000
    # Event-loop implementation: "reference" (the oracle heap loop) or
    # "batch" (bucketed calendar queue + fused struct-of-arrays fast
    # path; bit-identical results, degrades to the reference loop when
    # a per-event hook such as trace/oracle/faults/scheduler is armed).
    backend: str = "reference"
    # -- robustness: fault injection (repro.sim.faults) --
    # All default to "off"; with every rate/amplitude at zero the
    # machine builds no FaultPlan and every hook is a skipped None
    # check, so default runs are bit-identical to a chaos-free build.
    # Per-attempt probability of an injected spurious abort on a
    # speculative attempt (TSX-class interrupt/microarchitectural
    # aborts our conflict model never produces on its own).
    fault_spurious_rate: float = 0.0
    # Per-attempt probability of an injected capacity-style abort.
    fault_capacity_rate: float = 0.0
    # Max extra cycles of coherence-latency jitter per memory access.
    fault_jitter_cycles: int = 0
    # Max extra cycles a parked core's lock-release wakeup is delayed.
    fault_wakeup_delay_cycles: int = 0
    # -- robustness: serializability checkers (repro.sim.oracle /
    # repro.sim.monitor) --
    # Checker mode, one of ORACLE_MODES: "off", "shadow" (replay
    # oracle), "online" (incremental epoch monitor), or "cross-check"
    # (both, verdicts compared). Zero simulated-time cost in every
    # mode; the deprecated True/False spellings normalize to
    # "shadow"/"off" through the constructor shim below.
    oracle: str = "off"
    # Event-loop pops between validate_machine samples while the
    # shadow oracle is enabled.
    oracle_validate_interval: int = 4096
    # Livelock watchdog: trip when no AR commits within this many
    # cycles while cores are still runnable (0 disables).
    watchdog_cycles: int = 0
    # Cross-validate every sharer-index conflict resolution against the
    # legacy full peer scan (the oracle path); any divergence raises
    # ConflictIndexMismatch. Host-time cost only, zero simulated-time
    # effect — results are identical either way.
    debug_conflict_check: bool = False

    def __post_init__(self):
        if self.num_cores <= 0:
            raise ConfigurationError("need at least one core")
        if self.retry_threshold < 1:
            raise ConfigurationError("retry threshold must be >= 1")
        if self.alt_entries < 1 or self.ert_entries < 1:
            raise ConfigurationError("CLEAR tables need at least one entry")
        if self.design not in DESIGN_REGISTRY:
            raise ConfigurationError(
                "unknown design {!r}; registered designs: {}".format(
                    self.design, ", ".join(sorted(DESIGN_REGISTRY))
                )
            )
        for knob in ("lrw_read_lines", "lrw_write_lines",
                     "bigatomics_lines", "bigatomics_commit_cycles"):
            if getattr(self, knob) < 1:
                raise ConfigurationError("{} must be >= 1".format(knob))
        if self.speculation not in ("htm", "sle"):
            raise ConfigurationError(
                "speculation must be 'htm' or 'sle', not {!r}".format(
                    self.speculation
                )
            )
        if self.scl_lock_policy not in ("writes", "all"):
            raise ConfigurationError(
                "scl_lock_policy must be 'writes' or 'all', not {!r}".format(
                    self.scl_lock_policy
                )
            )
        for rate_name in ("fault_spurious_rate", "fault_capacity_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    "{} must be in [0, 1], not {!r}".format(rate_name, rate)
                )
        if self.fault_spurious_rate + self.fault_capacity_rate > 1.0:
            raise ConfigurationError(
                "fault_spurious_rate + fault_capacity_rate must not exceed 1"
            )
        for cycles_name in ("fault_jitter_cycles", "fault_wakeup_delay_cycles",
                            "watchdog_cycles"):
            if getattr(self, cycles_name) < 0:
                raise ConfigurationError(
                    "{} must be non-negative".format(cycles_name)
                )
        if self.oracle not in ORACLE_MODES:
            raise ConfigurationError(
                "oracle must be one of {}, not {!r}".format(
                    ", ".join(repr(mode) for mode in ORACLE_MODES),
                    self.oracle,
                )
            )
        if self.oracle_validate_interval < 1:
            raise ConfigurationError(
                "oracle_validate_interval must be >= 1"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                "unknown backend {!r}; choose from {}".format(
                    self.backend, ", ".join(BACKENDS)
                )
            )

    @property
    def oracle_armed(self):
        """True when any serializability checker is enabled."""
        return self.oracle != "off"

    @property
    def shadow_oracle(self):
        """True when the shadow-replay oracle runs (shadow/cross-check)."""
        return self.oracle in ("shadow", "cross-check")

    @property
    def online_monitor(self):
        """True when the online monitor runs (online/cross-check)."""
        return self.oracle in ("online", "cross-check")

    @property
    def chaos_enabled(self):
        """True when any fault-injection knob is active."""
        return (
            self.fault_spurious_rate > 0.0
            or self.fault_capacity_rate > 0.0
            or self.fault_jitter_cycles > 0
            or self.fault_wakeup_delay_cycles > 0
        )

    @property
    def design_class(self):
        """The registered :class:`~repro.htm.design.HtmDesign` subclass."""
        return DESIGN_REGISTRY[self.design]

    @property
    def powertm(self):
        """Whether the selected design uses power-token priority.

        Read-only compatibility property over ``design``; reading it is
        not deprecated (the flag spelling in constructors is).
        """
        return self.design_class.powertm

    @property
    def clear(self):
        """Whether the selected design runs the CLEAR mechanism."""
        return self.design_class.clear

    @property
    def htm_policy(self):
        """The conflict-resolution baseline in use."""
        return HtmPolicy.POWER_TM if self.powertm else HtmPolicy.REQUESTER_WINS

    @property
    def config_letter(self):
        """The paper's letter (B/P/C/W), or the design name otherwise."""
        return self.design_class.letter or self.design

    def replaced(self, **overrides):
        """A copy of this configuration with some fields replaced.

        Accepts the deprecated ``powertm``/``clear`` aliases (with a
        :class:`DeprecationWarning`), layering them over the current
        design's flags and normalizing the pair into ``design``.
        """
        legacy_powertm = overrides.pop("powertm", _UNSET)
        legacy_clear = overrides.pop("clear", _UNSET)
        if legacy_powertm is not _UNSET or legacy_clear is not _UNSET:
            _warn_flag_kwargs()
            flags_design = _design_from_flags(
                self.powertm if legacy_powertm is _UNSET else legacy_powertm,
                self.clear if legacy_clear is _UNSET else legacy_clear,
            )
            declared = overrides.setdefault("design", flags_design)
            if declared != flags_design:
                raise ConfigurationError(
                    "design={!r} conflicts with the deprecated powertm/clear "
                    "flags (which spell {!r})".format(declared, flags_design)
                )
        return dataclasses.replace(self, **overrides)

    def to_dict(self):
        """All fields as a JSON-serializable dict (field-name keyed)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a configuration from :meth:`to_dict` output.

        Pre-v3 payloads spelled the design as ``powertm``/``clear``
        booleans; they are migrated silently (no warning — cached
        results are not the caller's code) into the equivalent
        ``design`` name, so legacy payloads deserialize to the same
        normalized fingerprint as their modern spelling. Pre-v4
        payloads spelled ``oracle`` as a boolean; it migrates to the
        equivalent mode name the same way. Other unknown keys still
        raise :class:`ConfigurationError` rather than being silently
        dropped, so stale cache entries or hand-edited configs fail
        loudly.
        """
        data = dict(data)
        if isinstance(data.get("oracle"), bool):
            data["oracle"] = "shadow" if data["oracle"] else "off"
        legacy_powertm = data.pop("powertm", _UNSET)
        legacy_clear = data.pop("clear", _UNSET)
        if legacy_powertm is not _UNSET or legacy_clear is not _UNSET:
            migrated = _design_from_flags(
                legacy_powertm is not _UNSET and legacy_powertm,
                legacy_clear is not _UNSET and legacy_clear,
            )
            declared = data.setdefault("design", migrated)
            if declared != migrated:
                raise ConfigurationError(
                    "design {!r} conflicts with the legacy powertm/clear "
                    "keys (which spell {!r})".format(declared, migrated)
                )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "unknown SimConfig fields: {}".format(sorted(unknown))
            )
        return cls(**data)

    def fingerprint(self):
        """SHA-256 hex digest of the full configuration.

        Canonical (sorted-key, compact) JSON over every declared field;
        two configs share a fingerprint iff all fields are equal. Used
        as the configuration component of the experiment cache key.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def for_design(cls, name, **overrides):
        """Build a configuration for a registered design by name.

        The canonical constructor convenience; ``name`` must be a
        :data:`~repro.htm.design.DESIGN_REGISTRY` key (legacy letters
        belong to the deprecated :meth:`for_letter`).
        """
        return cls(design=name, **overrides)

    @classmethod
    def for_letter(cls, letter, **overrides):
        """Deprecated: build from the paper's B/P/C/W naming.

        Use :meth:`for_design` with the design name instead ("B" ->
        "baseline", "P" -> "powertm", "C" -> "clear", "W" ->
        "clear+powertm").
        """
        if letter not in LEGACY_LETTER_DESIGNS:
            raise ConfigurationError("unknown configuration {!r}".format(letter))
        name = LEGACY_LETTER_DESIGNS[letter]
        warnings.warn(
            "SimConfig.for_letter({!r}) is deprecated; use "
            "SimConfig.for_design({!r})".format(letter, name),
            DeprecationWarning,
            stacklevel=2,
        )
        return cls(design=name, **overrides)


# The generated __init__ is wrapped (not replaced) so the deprecated
# powertm/clear keyword aliases and oracle booleans keep working one
# release longer: they warn, normalize into `design` / an oracle mode
# name, and the flag pair is rejected when inconsistent with an
# explicitly passed design. dataclasses.replace() and every internal
# construction path go through the same wrapper with plain field
# kwargs, paying one tuple check.
_FIELD_INIT = SimConfig.__init__


def _shim_init(self, *args, powertm=_UNSET, clear=_UNSET, **kwargs):
    if powertm is not _UNSET or clear is not _UNSET:
        _warn_flag_kwargs()
        flags_design = _design_from_flags(
            powertm is not _UNSET and powertm,
            clear is not _UNSET and clear,
        )
        declared = kwargs.setdefault("design", flags_design)
        if declared != flags_design:
            raise ConfigurationError(
                "design={!r} conflicts with the deprecated powertm/clear "
                "flags (which spell {!r})".format(declared, flags_design)
            )
    if isinstance(kwargs.get("oracle"), bool):
        _warn_oracle_bool()
        kwargs["oracle"] = "shadow" if kwargs["oracle"] else "off"
    _FIELD_INIT(self, *args, **kwargs)


_shim_init.__wrapped__ = _FIELD_INIT
SimConfig.__init__ = _shim_init


__all__ = [
    "BACKENDS",
    "ORACLE_MODES",
    "HtmPolicy",
    "SimConfig",
    "DESIGN_REGISTRY",
    "LEGACY_LETTER_DESIGNS",
    "design_name",
    "resolve_oracle_mode",
]
