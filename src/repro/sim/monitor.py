"""Online commit-order serializability monitor (``oracle="online"``).

The shadow-replay oracle (:mod:`repro.sim.oracle`) proves commit-order
serializability by re-executing every committed AR on the host — sound
and complete, but far too slow to leave on under the bench grid or a
large ``repro.verify`` fuzzing campaign. This module provides the same
guarantee at production rate, in the style of RegionTrack
(arXiv 2008.04479) and fast online atomicity monitors: instead of a
full shadow memory replay it tracks *commit epochs* per cacheline and
checks, at each commit, that the transactional happens-before graph
the commit would close stays acyclic.

Algorithm
---------
The monitor keeps one global commit clock (incremented once per
committed AR) and a ``line_epochs`` map from cacheline to the clock
value of the last committed write to it (lines never written stay at
epoch 0). Every conflict-detecting attempt records, on the *first*
read of each line, the line's epoch at that instant into a per-attempt
``monitor_reads`` summary carried on its
:class:`~repro.htm.rwset.ReadWriteSets` (an O(1) dict store on the
already-slow first-access miss path — the same zero-cost-when-absent
pattern as the :class:`~repro.verify.oracles.RetryLedger` hooks).

At commit the monitor checks every recorded read epoch against the
line's *current* epoch. A mismatch means some other AR committed a
write to the line after this AR read it: the committing AR reads
before, but commits after, its writer — a cycle in the commit-order
happens-before graph, i.e. the committed schedule is not serializable
in commit order. The check is

- **sound**: every violation it raises is a real stale read committed
  by the machine (the epoch can only have moved if a conflicting write
  committed in between), and
- **complete** for read-write conflicts: a committed write between
  first read and commit *always* moves the epoch (version-based, not
  value-based, so silent ABA rewrites cannot slip through).
  Write-write ordering needs no per-access check at all — speculative
  stores are buffered and drained in commit order, which is exactly
  the serial order being proved — and the final word-for-word diff
  below catches any divergence a lost buffered write could cause.

The monitor also maintains a word-value map (seeded from the
post-setup snapshot, updated from each committed write buffer, poke
mirror, and fallback store) so the end of the run can diff it against
architectural memory — the same final check the shadow oracle does,
catching out-of-band tampering with no committed-AR fingerprint.

Non-speculative paths:

- **NS-CL** attempts detect no conflicts, but hold cacheline locks on
  their whole footprint, so their recorded epochs cannot move; their
  reads are checked like everyone else's.
- **Fallback** runs under global mutual exclusion with direct
  (unbuffered) stores, so its loads are checked eagerly against the
  value map and its stores are applied to it as they are issued; the
  lines touched get their epoch bump when the region ends.

Event loops: the monitor deliberately has *no per-pop hook* — commit
hooks, first-access recording, and the end-of-run sweep only — so
``backend="batch"`` keeps its fused fast path (the first-read epoch
store is inlined there) instead of degrading to the reference loop the
way the per-pop-sampling shadow oracle does. The periodic
``validate_machine`` sampling stays a shadow/cross-check feature for
exactly that reason.

``oracle="cross-check"`` arms both checkers: the monitor defers its
commit-time verdicts, both finalize, and
:func:`cross_check_finalize` raises
:class:`~repro.common.errors.OracleDivergence` whenever one checker
flags a run the other passes.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.common.errors import OracleDivergence, OracleViolation
from repro.sim.oracle import MAX_DIFF_REPORT, CommitRecord, check_leaks
from repro.sim.validate import validate_machine

#: How many trailing commit records a violation report carries.
COMMIT_TAIL = 32


class OnlineMonitor:
    """Incremental serializability checker for one machine run.

    Construct *after* workload setup (the value map seeds from the
    post-setup architectural state) and after the shadow oracle when
    both run (the poke mirror chains onto whatever is already armed).
    Executors call :meth:`record_commit` on every commit and the
    fallback hooks on direct memory traffic; the machine calls
    :meth:`finalize` once the run completes cleanly.

    ``defer_violations=True`` (cross-check mode) collects commit-time
    verdicts instead of raising, so both checkers see the whole run
    and their conclusions can be compared at the end.
    """

    def __init__(self, machine, defer_violations=False):
        self.machine = machine
        self.defer_violations = defer_violations
        #: Global commit clock; epoch N belongs to the N-th commit.
        self.clock = 0
        #: line -> commit epoch of the last committed write (0 = never
        #: written by a committed AR). Shared by reference (via the
        #: rwsets hook) and batch (inlined) first-read recording.
        self.line_epochs = {}
        #: word -> value as of the committed prefix (plus pokes and
        #: fallback stores); diffed against memory at finalize.
        self._values = dict(machine.memory.snapshot())
        #: Lines stored to by the current fallback region, per core.
        self._fallback_lines = [set() for _ in range(machine.config.num_cores)]
        self.commits = []
        self.reads_checked = 0
        self.deferred = []
        # Mirror out-of-AR pokes (workload node refills etc.) into the
        # value map. In cross-check mode the shadow oracle already
        # holds the single mirror slot, so fan out to both.
        previous = machine.memory.poke_mirror
        if previous is None:
            machine.memory.poke_mirror = self._note_poke
        else:
            def fanout(word_addr, value, _prev=previous,
                       _mine=self._note_poke):
                _prev(word_addr, value)
                _mine(word_addr, value)
            machine.memory.poke_mirror = fanout

    # -- commit hook ---------------------------------------------------------

    def record_commit(self, core, invocation, mode, rwsets, via_abort=False):
        """Check and fold in one committed AR.

        Called from ``CoreExecutor._commit`` *before* the write buffer
        drains (the monitor needs it intact). ``rwsets`` is None for
        fallback regions, whose stores were already applied eagerly.
        """
        clock = self.clock + 1
        self.clock = clock
        self.commits.append(CommitRecord(
            len(self.commits), core, invocation.region_id, mode, via_abort
        ))
        epochs = self.line_epochs
        if rwsets is None:
            # Fallback: direct stores already landed in the value map;
            # stamp their lines with this region's commit epoch.
            lines = self._fallback_lines[core]
            for line in lines:
                epochs[line] = clock
            lines.clear()
            return
        reads = rwsets.monitor_reads
        if reads:
            self.reads_checked += len(reads)
            stale = []
            for line, seen in reads.items():
                current = epochs.get(line, 0)
                if current != seen:
                    stale.append(
                        {"line": line, "read_epoch": seen,
                         "current_epoch": current,
                         "intervening_commit":
                             self.commits[current - 1].to_dict()
                             if current else None}
                    )
            if stale:
                self._violation(
                    "stale read committed: core {} read {} line(s) that a "
                    "later-committing AR overwrote before this AR committed "
                    "— the committed schedule has a happens-before cycle "
                    "and is not serializable in commit order".format(
                        core, len(stale)
                    ),
                    details={
                        "stale_reads": stale[:MAX_DIFF_REPORT],
                        "commit": self.commits[-1].to_dict(),
                        "commits": [
                            record.to_dict()
                            for record in self.commits[-COMMIT_TAIL:]
                        ],
                    },
                )
        for line in rwsets.write_set:
            epochs[line] = clock
        values = self._values
        for word_addr, value in rwsets._write_buffer.items():
            values[word_addr] = value

    # -- fallback hooks ------------------------------------------------------

    def note_fallback_store(self, core, word_addr, value):
        """A fallback region stored directly to architectural memory."""
        self._values[word_addr] = value
        self._fallback_lines[core].add(word_addr // WORDS_PER_LINE)

    def note_fallback_load(self, core, word_addr, value):
        """Check a fallback load against the committed-prefix values.

        Fallback runs under mutual exclusion after every committed
        write has drained, so architectural memory must equal the
        value map word for word; a mismatch means some earlier commit
        was not serial (or memory was tampered with out of band).
        """
        expected = self._values.get(word_addr, 0)
        if value != expected:
            self._violation(
                "fallback read of word {} observed {} but the committed "
                "prefix wrote {}: an earlier commit was not serializable "
                "in commit order".format(word_addr, value, expected),
                details={
                    "addr": word_addr,
                    "actual": value,
                    "expected": expected,
                    "core": core,
                    "commits": [
                        record.to_dict()
                        for record in self.commits[-COMMIT_TAIL:]
                    ],
                },
            )

    def note_fallback_abort(self, core):
        """A fallback region aborted (MAX_OPS bound): stores persist.

        The fallback path is not a transaction — its direct stores are
        already architectural — so the lines it touched still get an
        epoch stamp even though no commit is recorded.
        """
        lines = self._fallback_lines[core]
        if lines:
            clock = self.clock + 1
            self.clock = clock
            epochs = self.line_epochs
            for line in lines:
                epochs[line] = clock
            lines.clear()

    def _note_poke(self, word_addr, value):
        # Out-of-AR initialization writes move no epochs: they are
        # thread-local by construction (they precede the AR publishing
        # them), so no live first-read snapshot can cover them.
        self._values[word_addr] = value

    # -- end of run ----------------------------------------------------------

    def finalize(self):
        """Leak checks + invariants + final value diff; raises on violation.

        In defer mode (cross-check) any commit-time verdicts collected
        during the run are raised here instead, after the checks both
        checkers share.
        """
        machine = self.machine
        check_leaks(machine)
        validate_machine(machine)
        self._check_final_state()
        if self.deferred:
            raise self.deferred[0]
        machine.memory.poke_mirror = None

    def _check_final_state(self):
        memory_words = self.machine.memory.snapshot()
        monitor_words = self._values
        diffs = []
        for word_addr in sorted(set(memory_words) | set(monitor_words)):
            actual = memory_words.get(word_addr, 0)
            tracked = monitor_words.get(word_addr, 0)
            if actual != tracked:
                diffs.append(
                    {"addr": word_addr, "actual": actual, "tracked": tracked}
                )
                if len(diffs) > MAX_DIFF_REPORT:
                    break
        if diffs:
            self._violation(
                "online monitor value map diverges from architectural "
                "memory at {}{} address(es): some committed write was lost, "
                "reordered, or memory was modified outside any committed "
                "AR".format(
                    len(diffs), "+" if len(diffs) > MAX_DIFF_REPORT else ""
                ),
                details={
                    "diffs": diffs[:MAX_DIFF_REPORT],
                    "commits": [
                        record.to_dict()
                        for record in self.commits[-COMMIT_TAIL:]
                    ],
                },
                defer=False,
            )

    # -- violation plumbing --------------------------------------------------

    def _violation(self, message, details, defer=True):
        error = OracleViolation(message, details=details)
        if defer and self.defer_violations:
            self.deferred.append(error)
            return
        raise error


def cross_check_finalize(oracle, monitor):
    """Finalize both checkers and compare their verdicts.

    Used under ``oracle="cross-check"``: the shadow oracle and the
    online monitor each finalize (leak checks, invariants, and their
    respective serializability sweeps). If exactly one of them flags
    the run, the *checkers* disagree and :class:`OracleDivergence` is
    raised; if both flag it the shadow verdict propagates (with the
    online verdict chained in its details).
    """
    shadow_error = None
    try:
        oracle.finalize()
    except OracleViolation as exc:
        shadow_error = exc
    online_error = None
    try:
        monitor.finalize()
    except OracleViolation as exc:
        online_error = exc
    if (shadow_error is None) != (online_error is None):
        flagging, silent = (
            ("shadow", "online") if shadow_error is not None
            else ("online", "shadow")
        )
        error = shadow_error if shadow_error is not None else online_error
        raise OracleDivergence(
            "serializability checkers diverged: the {} checker flagged the "
            "run but the {} checker passed it".format(flagging, silent),
            details={
                "flagging_checker": flagging,
                "violation": str(error),
                "violation_details": dict(error.details),
            },
        )
    if shadow_error is not None:
        shadow_error.details = dict(shadow_error.details)
        shadow_error.details["online_verdict"] = str(online_error)
        raise shadow_error


def finalize_checkers(machine):
    """End-of-run dispatch over the armed checker combination.

    Called by both event loops when a run completes cleanly; a no-op
    when nothing is armed, one checker's ``finalize`` when one is, and
    the cross-check comparison when both are.
    """
    oracle = machine.oracle
    monitor = machine.monitor
    if oracle is not None and monitor is not None:
        cross_check_finalize(oracle, monitor)
    elif oracle is not None:
        oracle.finalize()
    elif monitor is not None:
        monitor.finalize()
