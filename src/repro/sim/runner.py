"""Run orchestration: multi-seed runs and the paper's trimmed mean.

The paper executes every application "10 times with different seeds and
the trimmed mean is used to remove 3 outliers"; :func:`trimmed_mean`
implements that (dropping the 2 highest and 1 lowest by default when
removing 3), and :func:`run_seeds` wires it to the simulator.

:class:`RunResult` and :class:`AggregateResult` round-trip losslessly
through ``to_dict()``/``from_dict()``; the experiment engine's on-disk
cache (:mod:`repro.sim.engine`) stores exactly that representation.
"""

import warnings

from repro.common.constants import PAPER_TRIM, SWEEP_TRIM
from repro.common.serialize import Serializable
from repro.core.modes import ExecMode
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.obs.trace import EventTrace
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.sim.stats import MachineStats


def _deprecated(old, new):
    warnings.warn(
        "{}() is deprecated; use {} instead".format(old, new),
        DeprecationWarning,
        stacklevel=3,
    )


def trimmed_mean(values, trim=PAPER_TRIM):
    """Mean after removing ``trim`` outliers (⌈trim/2⌉ high, ⌊trim/2⌋ low).

    Falls back to a plain mean when too few values remain — and warns
    when it does, because a silently un-trimmed mean at low seed counts
    is easy to mistake for the paper's methodology.
    """
    ordered = sorted(values)
    if trim >= 1 and 0 < len(ordered) <= trim:
        warnings.warn(
            "trimmed_mean: only {} value(s) with trim={}; returning the "
            "plain (un-trimmed) mean".format(len(ordered), trim),
            RuntimeWarning,
            stacklevel=2,
        )
    if len(ordered) > trim >= 1:
        drop_high = (trim + 1) // 2
        drop_low = trim // 2
        ordered = ordered[drop_low:len(ordered) - drop_high]
    if not ordered:
        return 0.0
    return sum(ordered) / len(ordered)


class RunResult(Serializable):
    """One simulation run's headline metrics.

    ``trace`` optionally carries the run's
    :class:`~repro.obs.trace.EventTrace`; it rides through the dict
    form (and therefore the engine's cache and process transport) as a
    list of event dicts, so a traced cell replayed from cache still has
    its trace.
    """

    def __init__(self, workload_name, config, seed, stats, energy, trace=None):
        self.workload_name = workload_name
        self.config = config
        self.seed = seed
        self.stats = stats
        self.energy = energy
        self.trace = trace

    @property
    def cycles(self):
        """Makespan in cycles."""
        return self.stats.makespan_cycles

    @property
    def aborts_per_commit(self):
        """Fig. 9 metric for this run/aggregate."""
        return self.stats.aborts_per_commit()

    def to_dict(self):
        """The full run as a JSON-serializable dict (cache format)."""
        return {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "seed": self.seed,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
            "trace": self.trace.to_dicts() if self.trace is not None else None,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a run from :meth:`to_dict` output."""
        trace_dicts = data.get("trace")
        return cls(
            workload_name=data["workload_name"],
            config=SimConfig.from_dict(data["config"]),
            seed=data["seed"],
            stats=MachineStats.from_dict(data["stats"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            trace=(
                EventTrace.from_dicts(trace_dicts)
                if trace_dicts is not None else None
            ),
        )

    def __repr__(self):
        return "RunResult({}, {}, seed={}, cycles={})".format(
            self.workload_name, self.config.config_letter, self.seed, self.cycles
        )


class AggregateResult(Serializable):
    """Trimmed-mean metrics over several seeds of one (workload, config)."""

    def __init__(self, workload_name, config, runs, trim=PAPER_TRIM):
        if not runs:
            raise ValueError("need at least one run to aggregate")
        self.workload_name = workload_name
        self.config = config
        self.runs = list(runs)
        self.trim = trim

    def _metric(self, extractor):
        return trimmed_mean([extractor(run) for run in self.runs], self.trim)

    @property
    def cycles(self):
        return self._metric(lambda run: run.cycles)

    @property
    def energy(self):
        """Trimmed-mean total energy."""
        return self._metric(lambda run: run.energy.total)

    @property
    def aborts_per_commit(self):
        return self._metric(lambda run: run.aborts_per_commit)

    @property
    def discovery_time_fraction(self):
        """Share of busy cycles spent in failed-mode discovery."""
        return self._metric(lambda run: run.stats.discovery_time_fraction())

    def commit_mode_shares(self):
        """Mean share of commits per mode (Fig. 12)."""
        shares = {}
        for mode in ExecMode:
            values = [
                run.stats.commit_mode_shares().get(mode, 0.0) for run in self.runs
            ]
            shares[mode] = trimmed_mean(values, self.trim)
        return shares

    def abort_category_shares(self):
        """Mean share of aborts per category (Fig. 11)."""
        categories = set()
        for run in self.runs:
            categories.update(run.stats.abort_category_shares())
        return {
            category: trimmed_mean(
                [
                    run.stats.abort_category_shares().get(category, 0.0)
                    for run in self.runs
                ],
                self.trim,
            )
            for category in categories
        }

    def retry_shares(self):
        """Mean (first-retry, n-retry, fallback) shares (Fig. 13)."""
        first = trimmed_mean([run.stats.retry_shares()[0] for run in self.runs], self.trim)
        n_retry = trimmed_mean([run.stats.retry_shares()[1] for run in self.runs], self.trim)
        fallback = trimmed_mean([run.stats.retry_shares()[2] for run in self.runs], self.trim)
        return (first, n_retry, fallback)

    @property
    def first_retry_immutable_ratio(self):
        """Fig. 1 ratio."""
        return self._metric(lambda run: run.stats.first_retry_immutable_ratio())

    def to_dict(self):
        """The aggregate (config, trim, every run) as a JSON dict."""
        return {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "trim": self.trim,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild an aggregate from :meth:`to_dict` output."""
        return cls(
            workload_name=data["workload_name"],
            config=SimConfig.from_dict(data["config"]),
            runs=[RunResult.from_dict(run) for run in data["runs"]],
            trim=data["trim"],
        )


def _simulate_one(workload_factory, config, *, seed=1, energy_model=None,
                  trace=None):
    """Simulate one (workload, config, seed) and return a RunResult.

    The non-deprecated implementation behind :func:`repro.api.simulate`
    and the experiment engine. ``trace`` is an optional
    :class:`~repro.obs.trace.TraceSink` the machine emits into; when it
    is an :class:`~repro.obs.trace.EventTrace` it is also attached to
    the returned result.
    """
    workload = workload_factory()
    machine = build_machine(config, workload, seed, trace=trace)
    stats = machine.run()
    model = energy_model or EnergyModel()
    energy = model.evaluate(stats)
    attached = trace if isinstance(trace, EventTrace) else None
    return RunResult(workload.name, config, seed, stats, energy,
                     trace=attached)


def _run_seeds(workload_factory, config, *, seeds=range(1, 11),
               trim=PAPER_TRIM, energy_model=None, trace_factory=None):
    """Simulate several seeds and aggregate with the paper's trimmed mean.

    ``trace_factory`` (seed -> TraceSink or None) lets the facade trace
    individual runs of a multi-seed simulation.
    """
    runs = [
        _simulate_one(
            workload_factory, config, seed=seed, energy_model=energy_model,
            trace=trace_factory(seed) if trace_factory is not None else None,
        )
        for seed in seeds
    ]
    return AggregateResult(runs[0].workload_name, config, runs, trim)


def run_workload(workload_factory, config, *, seed=1, energy_model=None):
    """Deprecated: use :func:`repro.api.simulate`.

    Simulates one (workload, config, seed) and returns a RunResult,
    exactly as before; new code should call ``repro.api.simulate`` which
    returns the richer :class:`~repro.api.SimulationReport`.
    """
    _deprecated("run_workload", "repro.api.simulate")
    return _simulate_one(workload_factory, config, seed=seed,
                         energy_model=energy_model)


def run_seeds(workload_factory, config, *, seeds=range(1, 11),
              trim=PAPER_TRIM, energy_model=None):
    """Deprecated: use :func:`repro.api.simulate` with ``seeds=...``."""
    _deprecated("run_seeds", "repro.api.simulate")
    return _run_seeds(workload_factory, config, seeds=seeds, trim=trim,
                      energy_model=energy_model)


def select_best_threshold(aggregates_by_threshold):
    """Pick the best (by mean cycles) entry of a threshold -> aggregate map.

    Iterates in mapping order; ties keep the earliest threshold, which
    preserves the historical sweep behaviour of preferring the lowest
    tied threshold.
    """
    best = None
    best_threshold = None
    for threshold, candidate in aggregates_by_threshold.items():
        if best is None or candidate.cycles < best.cycles:
            best = candidate
            best_threshold = threshold
    return best, best_threshold


def _sweep_retry_threshold(workload, config, thresholds=range(1, 11),
                           seeds=(1, 2, 3), trim=SWEEP_TRIM, *,
                           ops_per_thread=None, engine=None):
    """Design-space exploration: best retry threshold per application.

    The paper runs "from 1 to 10 retries for all benchmarks and selects
    the best-performing one in each case". Returns the best aggregate
    (by mean cycles) and the threshold that produced it.

    ``workload`` is either a zero-argument factory (runs inline,
    in-process) or a benchmark name from the registry, in which case the
    sweep fans out through the experiment engine — parallel and cached
    when ``engine`` is configured that way (``ops_per_thread`` scales
    the named workload; ``None`` keeps its default).
    """
    if callable(workload):
        aggregates = {
            threshold: _run_seeds(
                workload, config.replaced(retry_threshold=threshold),
                seeds=seeds, trim=trim,
            )
            for threshold in thresholds
        }
        return select_best_threshold(aggregates)

    # Imported lazily: the engine module imports this one.
    from repro.sim.engine import ExperimentEngine, RunSpec

    engine = engine or ExperimentEngine(jobs=1, cache_dir=None)
    thresholds = tuple(thresholds)
    seeds = tuple(seeds)
    specs = [
        RunSpec(workload=workload,
                config=config.replaced(retry_threshold=threshold),
                seed=seed, ops_per_thread=ops_per_thread)
        for threshold in thresholds
        for seed in seeds
    ]
    results = engine.run_specs(specs)
    aggregates = {}
    for index, threshold in enumerate(thresholds):
        runs = results[index * len(seeds):(index + 1) * len(seeds)]
        aggregates[threshold] = AggregateResult(
            runs[0].workload_name, runs[0].config, runs, trim
        )
    return select_best_threshold(aggregates)


def sweep_retry_threshold(workload, config, thresholds=range(1, 11),
                          seeds=(1, 2, 3), trim=SWEEP_TRIM, *,
                          ops_per_thread=None, engine=None):
    """Deprecated: use :func:`repro.api.sweep_retry_threshold`."""
    _deprecated("sweep_retry_threshold", "repro.api.sweep_retry_threshold")
    return _sweep_retry_threshold(
        workload, config, thresholds=thresholds, seeds=seeds, trim=trim,
        ops_per_thread=ops_per_thread, engine=engine,
    )
