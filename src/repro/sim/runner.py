"""Run orchestration: multi-seed runs and the paper's trimmed mean.

The paper executes every application "10 times with different seeds and
the trimmed mean is used to remove 3 outliers"; :func:`trimmed_mean`
implements that (dropping the 2 highest and 1 lowest by default when
removing 3), and :func:`run_seeds` wires it to the simulator.

:class:`RunResult` and :class:`AggregateResult` round-trip losslessly
through ``to_dict()``/``from_dict()``; the experiment engine's on-disk
cache (:mod:`repro.sim.engine`) stores exactly that representation.
"""

import warnings

from repro.core.modes import ExecMode
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats


def trimmed_mean(values, trim=3):
    """Mean after removing ``trim`` outliers (⌈trim/2⌉ high, ⌊trim/2⌋ low).

    Falls back to a plain mean when too few values remain — and warns
    when it does, because a silently un-trimmed mean at low seed counts
    is easy to mistake for the paper's methodology.
    """
    ordered = sorted(values)
    if trim >= 1 and 0 < len(ordered) <= trim:
        warnings.warn(
            "trimmed_mean: only {} value(s) with trim={}; returning the "
            "plain (un-trimmed) mean".format(len(ordered), trim),
            RuntimeWarning,
            stacklevel=2,
        )
    if len(ordered) > trim >= 1:
        drop_high = (trim + 1) // 2
        drop_low = trim // 2
        ordered = ordered[drop_low:len(ordered) - drop_high]
    if not ordered:
        return 0.0
    return sum(ordered) / len(ordered)


class RunResult:
    """One simulation run's headline metrics."""

    def __init__(self, workload_name, config, seed, stats, energy):
        self.workload_name = workload_name
        self.config = config
        self.seed = seed
        self.stats = stats
        self.energy = energy

    @property
    def cycles(self):
        """Makespan in cycles."""
        return self.stats.makespan_cycles

    @property
    def aborts_per_commit(self):
        """Fig. 9 metric for this run/aggregate."""
        return self.stats.aborts_per_commit()

    def to_dict(self):
        """The full run as a JSON-serializable dict (cache format)."""
        return {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "seed": self.seed,
            "stats": self.stats.to_dict(),
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a run from :meth:`to_dict` output."""
        return cls(
            workload_name=data["workload_name"],
            config=SimConfig.from_dict(data["config"]),
            seed=data["seed"],
            stats=MachineStats.from_dict(data["stats"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
        )

    def __repr__(self):
        return "RunResult({}, {}, seed={}, cycles={})".format(
            self.workload_name, self.config.config_letter, self.seed, self.cycles
        )


class AggregateResult:
    """Trimmed-mean metrics over several seeds of one (workload, config)."""

    def __init__(self, workload_name, config, runs, trim=3):
        if not runs:
            raise ValueError("need at least one run to aggregate")
        self.workload_name = workload_name
        self.config = config
        self.runs = list(runs)
        self.trim = trim

    def _metric(self, extractor):
        return trimmed_mean([extractor(run) for run in self.runs], self.trim)

    @property
    def cycles(self):
        return self._metric(lambda run: run.cycles)

    @property
    def energy(self):
        """Trimmed-mean total energy."""
        return self._metric(lambda run: run.energy.total)

    @property
    def aborts_per_commit(self):
        return self._metric(lambda run: run.aborts_per_commit)

    @property
    def discovery_time_fraction(self):
        """Share of busy cycles spent in failed-mode discovery."""
        return self._metric(lambda run: run.stats.discovery_time_fraction())

    def commit_mode_shares(self):
        """Mean share of commits per mode (Fig. 12)."""
        shares = {}
        for mode in ExecMode:
            values = [
                run.stats.commit_mode_shares().get(mode, 0.0) for run in self.runs
            ]
            shares[mode] = trimmed_mean(values, self.trim)
        return shares

    def abort_category_shares(self):
        """Mean share of aborts per category (Fig. 11)."""
        categories = set()
        for run in self.runs:
            categories.update(run.stats.abort_category_shares())
        return {
            category: trimmed_mean(
                [
                    run.stats.abort_category_shares().get(category, 0.0)
                    for run in self.runs
                ],
                self.trim,
            )
            for category in categories
        }

    def retry_shares(self):
        """Mean (first-retry, n-retry, fallback) shares (Fig. 13)."""
        first = trimmed_mean([run.stats.retry_shares()[0] for run in self.runs], self.trim)
        n_retry = trimmed_mean([run.stats.retry_shares()[1] for run in self.runs], self.trim)
        fallback = trimmed_mean([run.stats.retry_shares()[2] for run in self.runs], self.trim)
        return (first, n_retry, fallback)

    @property
    def first_retry_immutable_ratio(self):
        """Fig. 1 ratio."""
        return self._metric(lambda run: run.stats.first_retry_immutable_ratio())

    def to_dict(self):
        """The aggregate (config, trim, every run) as a JSON dict."""
        return {
            "workload_name": self.workload_name,
            "config": self.config.to_dict(),
            "trim": self.trim,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild an aggregate from :meth:`to_dict` output."""
        return cls(
            workload_name=data["workload_name"],
            config=SimConfig.from_dict(data["config"]),
            runs=[RunResult.from_dict(run) for run in data["runs"]],
            trim=data["trim"],
        )


def run_workload(workload_factory, config, *, seed=1, energy_model=None):
    """Simulate one (workload, config, seed) and return a RunResult."""
    workload = workload_factory()
    machine = Machine(config, workload, seed)
    stats = machine.run()
    model = energy_model or EnergyModel()
    energy = model.evaluate(stats)
    return RunResult(workload.name, config, seed, stats, energy)


def run_seeds(workload_factory, config, *, seeds=range(1, 11), trim=3,
              energy_model=None):
    """Simulate several seeds and aggregate with the paper's trimmed mean."""
    runs = [
        run_workload(workload_factory, config, seed=seed,
                     energy_model=energy_model)
        for seed in seeds
    ]
    return AggregateResult(runs[0].workload_name, config, runs, trim)


def select_best_threshold(aggregates_by_threshold):
    """Pick the best (by mean cycles) entry of a threshold -> aggregate map.

    Iterates in mapping order; ties keep the earliest threshold, which
    preserves the historical sweep behaviour of preferring the lowest
    tied threshold.
    """
    best = None
    best_threshold = None
    for threshold, candidate in aggregates_by_threshold.items():
        if best is None or candidate.cycles < best.cycles:
            best = candidate
            best_threshold = threshold
    return best, best_threshold


def sweep_retry_threshold(workload, config, thresholds=range(1, 11),
                          seeds=(1, 2, 3), trim=0, *, ops_per_thread=None,
                          engine=None):
    """Design-space exploration: best retry threshold per application.

    The paper runs "from 1 to 10 retries for all benchmarks and selects
    the best-performing one in each case". Returns the best aggregate
    (by mean cycles) and the threshold that produced it.

    ``workload`` is either a zero-argument factory (runs inline,
    in-process) or a benchmark name from the registry, in which case the
    sweep fans out through the experiment engine — parallel and cached
    when ``engine`` is configured that way (``ops_per_thread`` scales
    the named workload; ``None`` keeps its default).
    """
    if callable(workload):
        aggregates = {
            threshold: run_seeds(
                workload, config.replaced(retry_threshold=threshold),
                seeds=seeds, trim=trim,
            )
            for threshold in thresholds
        }
        return select_best_threshold(aggregates)

    # Imported lazily: the engine module imports this one.
    from repro.sim.engine import ExperimentEngine, RunSpec

    engine = engine or ExperimentEngine(jobs=1, cache_dir=None)
    thresholds = tuple(thresholds)
    seeds = tuple(seeds)
    specs = [
        RunSpec(workload=workload,
                config=config.replaced(retry_threshold=threshold),
                seed=seed, ops_per_thread=ops_per_thread)
        for threshold in thresholds
        for seed in seeds
    ]
    results = engine.run_specs(specs)
    aggregates = {}
    for index, threshold in enumerate(thresholds):
        runs = results[index * len(seeds):(index + 1) * len(seeds)]
        aggregates[threshold] = AggregateResult(
            runs[0].workload_name, runs[0].config, runs, trim
        )
    return select_best_threshold(aggregates)
