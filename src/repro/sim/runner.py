"""Run orchestration: multi-seed runs and the paper's trimmed mean.

The paper executes every application "10 times with different seeds and
the trimmed mean is used to remove 3 outliers"; :func:`trimmed_mean`
implements that (dropping the 2 highest and 1 lowest by default when
removing 3), and :func:`run_seeds` wires it to the simulator.
"""

from repro.core.modes import ExecMode
from repro.energy.model import EnergyModel
from repro.sim.machine import Machine


def trimmed_mean(values, trim=3):
    """Mean after removing ``trim`` outliers (⌈trim/2⌉ high, ⌊trim/2⌋ low).

    Falls back to a plain mean when too few values remain.
    """
    ordered = sorted(values)
    if len(ordered) > trim >= 1:
        drop_high = (trim + 1) // 2
        drop_low = trim // 2
        ordered = ordered[drop_low:len(ordered) - drop_high]
    if not ordered:
        return 0.0
    return sum(ordered) / len(ordered)


class RunResult:
    """One simulation run's headline metrics."""

    def __init__(self, workload_name, config, seed, stats, energy):
        self.workload_name = workload_name
        self.config = config
        self.seed = seed
        self.stats = stats
        self.energy = energy

    @property
    def cycles(self):
        """Makespan in cycles."""
        return self.stats.makespan_cycles

    @property
    def aborts_per_commit(self):
        """Fig. 9 metric for this run/aggregate."""
        return self.stats.aborts_per_commit()

    def __repr__(self):
        return "RunResult({}, {}, seed={}, cycles={})".format(
            self.workload_name, self.config.config_letter, self.seed, self.cycles
        )


class AggregateResult:
    """Trimmed-mean metrics over several seeds of one (workload, config)."""

    def __init__(self, workload_name, config, runs, trim=3):
        if not runs:
            raise ValueError("need at least one run to aggregate")
        self.workload_name = workload_name
        self.config = config
        self.runs = list(runs)
        self.trim = trim

    def _metric(self, extractor):
        return trimmed_mean([extractor(run) for run in self.runs], self.trim)

    @property
    def cycles(self):
        return self._metric(lambda run: run.cycles)

    @property
    def energy(self):
        """Trimmed-mean total energy."""
        return self._metric(lambda run: run.energy.total)

    @property
    def aborts_per_commit(self):
        return self._metric(lambda run: run.aborts_per_commit)

    @property
    def discovery_time_fraction(self):
        """Share of busy cycles spent in failed-mode discovery."""
        return self._metric(lambda run: run.stats.discovery_time_fraction())

    def commit_mode_shares(self):
        """Mean share of commits per mode (Fig. 12)."""
        shares = {}
        for mode in ExecMode:
            values = [
                run.stats.commit_mode_shares().get(mode, 0.0) for run in self.runs
            ]
            shares[mode] = trimmed_mean(values, self.trim)
        return shares

    def abort_category_shares(self):
        """Mean share of aborts per category (Fig. 11)."""
        categories = set()
        for run in self.runs:
            categories.update(run.stats.abort_category_shares())
        return {
            category: trimmed_mean(
                [
                    run.stats.abort_category_shares().get(category, 0.0)
                    for run in self.runs
                ],
                self.trim,
            )
            for category in categories
        }

    def retry_shares(self):
        """Mean (first-retry, n-retry, fallback) shares (Fig. 13)."""
        first = trimmed_mean([run.stats.retry_shares()[0] for run in self.runs], self.trim)
        n_retry = trimmed_mean([run.stats.retry_shares()[1] for run in self.runs], self.trim)
        fallback = trimmed_mean([run.stats.retry_shares()[2] for run in self.runs], self.trim)
        return (first, n_retry, fallback)

    @property
    def first_retry_immutable_ratio(self):
        """Fig. 1 ratio."""
        return self._metric(lambda run: run.stats.first_retry_immutable_ratio())


def run_workload(workload_factory, config, seed=1, energy_model=None):
    """Simulate one (workload, config, seed) and return a RunResult."""
    workload = workload_factory()
    machine = Machine(config, workload, seed)
    stats = machine.run()
    model = energy_model or EnergyModel()
    energy = model.evaluate(stats)
    return RunResult(workload.name, config, seed, stats, energy)


def run_seeds(workload_factory, config, seeds=range(1, 11), trim=3, energy_model=None):
    """Simulate several seeds and aggregate with the paper's trimmed mean."""
    runs = [
        run_workload(workload_factory, config, seed, energy_model) for seed in seeds
    ]
    return AggregateResult(runs[0].workload_name, config, runs, trim)


def sweep_retry_threshold(workload_factory, config, thresholds=range(1, 11),
                          seeds=(1, 2, 3), trim=0):
    """Design-space exploration: best retry threshold per application.

    The paper runs "from 1 to 10 retries for all benchmarks and selects
    the best-performing one in each case". Returns the best aggregate
    (by mean cycles) and the threshold that produced it.
    """
    best = None
    best_threshold = None
    for threshold in thresholds:
        candidate = run_seeds(
            workload_factory, config.replaced(retry_threshold=threshold),
            seeds=seeds, trim=trim,
        )
        if best is None or candidate.cycles < best.cycles:
            best = candidate
            best_threshold = threshold
    return best, best_threshold
