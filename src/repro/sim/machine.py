"""The assembled multicore machine and its discrete-event loop.

One :class:`Machine` is one simulation run: a configuration, a workload
instance, and a seed. Cores advance through a time-ordered event heap;
each pop performs one bounded executor action (one AR operation, one
lock-group acquisition, one retry decision, ...). Cores that must wait —
for a cacheline lock, a directory-set lock, or the fallback lock — are
parked and woken whenever any holder releases, then re-check their
condition (no lost wakeups, no directory transients held, matching the
paper's directory-retry rule).
"""

import heapq

from repro.common.errors import (
    ConflictIndexMismatch,
    CycleLimitExceeded,
    DeadlockError,
    LivelockError,
    SimulationError,
)
from repro.common.rng import DeterministicRng
from repro.core.modes import ExecMode
from repro.htm.arbiter import ConflictArbiter
from repro.htm.powertm import PowerToken
from repro.htm.sharer_index import SharerIndex
from repro.memory.address import line_of_word
from repro.memory.shared import Allocator, SharedMemory
from repro.memory.system import MemorySystem
from repro.obs.events import (
    FallbackAcquire,
    FallbackRelease,
    Park,
    PowerAcquire,
    PowerRelease,
    Wakeup,
)
from repro.sim.executor import (
    STEP_BLOCK,
    STEP_DELAY,
    STEP_DONE,
    CoreExecutor,
)
from repro.sim.faults import FaultPlan
from repro.sim.monitor import OnlineMonitor, finalize_checkers
from repro.sim.oracle import RuntimeOracle
from repro.sim.stats import MachineStats

# The watchdog and oracle-sampling checks run every this-many event-loop
# pops (power of two so the modulo is cheap).
WATCHDOG_CHECK_EVENTS = 1024

# How many trailing trace events a stall diagnostic ships.
DIAGNOSTIC_TRACE_TAIL = 64


def _waiting_on_label(payload):
    """Compact string for a STEP_BLOCK payload ("line:<id>", "fallback", ...)."""
    if isinstance(payload, tuple):
        return "{}:{}".format(payload[0], payload[1])
    return str(payload)


class Machine:
    """A configured multicore machine running one workload.

    ``trace`` is an optional :class:`~repro.obs.trace.TraceSink` (e.g.
    an :class:`~repro.obs.trace.EventTrace`): when attached, the machine
    and its executors emit the typed event stream of
    :mod:`repro.obs.events` into it. Tracing never changes simulated
    behaviour — every emission site is behind an ``if trace`` guard and
    observes state the simulation computes anyway.

    ``scheduler`` is an optional :class:`~repro.verify.Scheduler`: when
    attached, ties between cores runnable at the same cycle are broken
    by ``scheduler.pick`` instead of the built-in lowest-core-first
    order, which is the seam the schedule explorer drives. ``None``
    (the default) leaves the event loop untouched, and the explicit
    :class:`~repro.verify.DefaultScheduler` is bit-identical to it.

    ``retry_ledger`` is an optional :class:`~repro.verify.RetryLedger`
    recording per-invocation attempt/abort/commit sequences for the
    single-retry-bound oracle; ``None`` keeps the executors' hot path
    free of accounting.
    """

    def __init__(self, config, workload, seed=1, trace=None, scheduler=None,
                 retry_ledger=None):
        self.config = config
        self.workload = workload
        self.seed = seed
        self.trace = trace
        self.scheduler = scheduler
        self.retry_ledger = retry_ledger
        # Cycle of the event-loop pop currently executing; kept current
        # by run() so deep callees (stats histograms, trace emission)
        # can timestamp without threading `now` through every call.
        self.now = 0
        self.rng = DeterministicRng(seed)
        self.memory = SharedMemory()
        self.allocator = Allocator()
        self.memsys = MemorySystem(
            num_cores=config.num_cores,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l3_size=config.l3_size,
            l3_assoc=config.l3_assoc,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            l3_latency=config.l3_latency,
            mem_latency=config.mem_latency,
            directory_sets=config.directory_sets,
        )
        # The HTM design backend: one instance per machine, shared by
        # all executors; every policy choice the booleans used to gate
        # dispatches through its hooks (see repro.htm.design).
        self.design = config.design_class(config)
        fallback_word = self.allocator.alloc_lines(1)
        self.fallback = self.design.build_fallback_lock(
            line=line_of_word(fallback_word)
        )
        self.power = PowerToken()
        self.arbiter = ConflictArbiter(design=self.design)
        # Reverse sharer index: line -> (readers, writers) over every
        # conflict-visible attempt, so conflict checks probe the actual
        # sharers instead of scanning all cores (see htm/sharer_index).
        self.sharer_index = SharerIndex()
        self._sharer_get = self.sharer_index.get
        self._debug_conflict_check = config.debug_conflict_check
        self.conflict_cross_checks = 0
        self.stats = MachineStats(config.num_cores)
        # Event-loop pops in the last run() (host-side perf metric; not
        # part of MachineStats so result serialization is unchanged).
        self.event_count = 0
        workload.setup(
            self.memory,
            self.allocator,
            num_threads=config.num_cores,
            rng=self.rng.child("setup"),
        )
        # Chaos layer: None unless the config enables some fault class,
        # in which case every injection decision derives from dedicated
        # child streams of the run seed (reproducible, and invisible to
        # every other consumer of the rng).
        self.faults = FaultPlan.from_config(config, self.rng, config.num_cores)
        # Serializability checkers (config.oracle mode): constructed
        # after workload setup so shadow memory / the monitor's value
        # map seed from the exact post-setup architectural state. The
        # monitor comes second so its poke mirror chains onto the
        # shadow's in cross-check mode; it defers commit-time verdicts
        # there so both checkers see the whole run before comparison.
        self.oracle = None
        self.monitor = None
        if config.shadow_oracle:
            self.oracle = RuntimeOracle(
                self, validate_interval=config.oracle_validate_interval
            )
        if config.online_monitor:
            self.monitor = OnlineMonitor(
                self, defer_violations=self.oracle is not None
            )
        self.executors = []
        for core in range(config.num_cores):
            controller = self.design.make_controller(core=core, machine=self)
            self.executors.append(CoreExecutor(core, self, controller))
        self._action_rngs = [
            self.rng.child(("actions", core)) for core in range(config.num_cores)
        ]
        self._release_pending = False
        if trace is not None:
            # Fallback / power-token transitions are traced via observer
            # hooks so every release site (commit, abort, fallback
            # takeover) is covered without touching the executors.
            self.fallback.observer = self._on_fallback_event
            self.power.observer = self._on_power_event

    # -- trace observer hooks -------------------------------------------------

    def _on_fallback_event(self, event, core, shared):
        if event == "acquire":
            self.trace.emit(FallbackAcquire(self.now, core, shared))
        else:
            self.trace.emit(FallbackRelease(self.now, core, shared))

    def _on_power_event(self, event, core):
        if event == "acquire":
            self.trace.emit(PowerAcquire(self.now, core))
        else:
            self.trace.emit(PowerRelease(self.now, core))

    # -- services used by executors -----------------------------------------

    def next_action(self, core):
        """Next thread-level action for a core (Invoke/Think/None)."""
        return self.workload.next_action(core, self._action_rngs[core])

    def peer_views(self, exclude):
        """Arbiter views of every other in-flight transaction."""
        views = []
        for executor in self.executors:
            if executor.core == exclude:
                continue
            view = executor.peer_view()
            if view is not None:
                views.append(view)
        return views

    def resolve_conflict(self, core, line, is_write, requester_failed=False,
                         requester_unstoppable=False):
        """Arbitrate one memory request via the sharer index.

        O(sharers of ``line``); equivalent to arbitrating against
        :meth:`peer_views` (which stays as the oracle path — enable
        ``debug_conflict_check`` to cross-validate every resolution).
        """
        resolution = self.arbiter.resolve_line(
            core, line, is_write, requester_failed,
            self._sharer_get(line),
            power_core=self.power.holder,
            requester_unstoppable=requester_unstoppable,
        )
        if self._debug_conflict_check:
            self._cross_check_resolution(
                core, line, is_write, requester_failed,
                requester_unstoppable, resolution,
            )
        return resolution

    def _cross_check_resolution(self, core, line, is_write, requester_failed,
                                requester_unstoppable, resolution):
        self.conflict_cross_checks += 1
        legacy = self.arbiter.resolve(
            core, line, is_write, requester_failed,
            peers=self.peer_views(exclude=core),
            requester_unstoppable=requester_unstoppable,
        )
        if (list(resolution.victims) != list(legacy.victims)
                or resolution.requester_abort_reason
                is not legacy.requester_abort_reason
                or resolution.nacking_core != legacy.nacking_core):
            raise ConflictIndexMismatch(
                "sharer-index resolution diverged from the legacy peer "
                "scan for core {} {} line {}".format(
                    core, "writing" if is_write else "reading", line
                ),
                details={
                    "core": core,
                    "line": line,
                    "is_write": is_write,
                    "requester_failed": requester_failed,
                    "requester_unstoppable": requester_unstoppable,
                    "indexed": repr(resolution),
                    "legacy": repr(legacy),
                    "sharers": repr(self.sharer_index.get(line)),
                },
            )

    def abort_all_speculative(self, reason, exclude):
        """Fallback acquisition: doom every in-flight speculative AR."""
        fallback_line = self.fallback.line
        for executor in self.executors:
            if executor.core == exclude:
                continue
            if not executor.in_flight_speculative:
                continue
            if executor.mode is ExecMode.S_CL:
                raise SimulationError(
                    "S-CL transaction running while fallback acquired: "
                    "the read lock should have prevented this"
                )
            executor.pending_abort = reason
            # Forensics: the "conflict" is the fallback lock line,
            # written (conceptually) by the core taking the lock.
            executor.pending_abort_detail = (fallback_line, exclude, True)
            # Doomed: invisible to conflict detection from this point.
            if executor.rwsets is not None:
                executor.rwsets.detach_index()

    def notify_release(self):
        """Some lock/guard was released: wake all parked cores."""
        self._release_pending = True

    # -- the event loop -------------------------------------------------------

    def run(self):
        """Run to completion; returns the populated MachineStats.

        Raises a typed :class:`~repro.common.errors.SimulationStallError`
        subclass when the run cannot complete, each carrying a
        structured :meth:`diagnostic_dump` and the partial stats:

        - :class:`CycleLimitExceeded` — ``max_cycles`` elapsed with the
          workload unfinished (``stats.truncated`` is set).
        - :class:`DeadlockError` — every unfinished core is parked on a
          lock/guard and no release can ever wake them.
        - :class:`LivelockError` — cores keep executing but no AR has
          committed for ``watchdog_cycles`` cycles (opt-in, off by
          default).
        """
        config = self.config
        oracle = self.oracle
        faults = self.faults
        trace = self.trace
        watchdog = config.watchdog_cycles
        validate_interval = oracle.validate_interval if oracle is not None else 0
        # Hot loop: bind everything touched per pop to locals.
        executors = self.executors
        # One bound method per core, fetched by index: saves an
        # attribute lookup + method bind on every pop.
        step_for = [executor.step for executor in executors]
        stats = self.stats
        scheduler = self.scheduler
        max_cycles = config.max_cycles
        heappush = heapq.heappush
        heappop = heapq.heappop
        heap = []
        for core in range(config.num_cores):
            heappush(heap, (0, core))
        parked = {}
        now = 0
        events = 0
        watchdog_commits = 0
        watchdog_progress_cycle = 0
        self.event_count = 0
        while heap:
            now, core = heappop(heap)
            if scheduler is not None and heap and heap[0][0] == now:
                # Two or more cores are runnable this cycle: let the
                # scheduler break the tie. Stepping a core never makes
                # another core runnable at the *same* cycle (delays and
                # wakeups land at now+1 or later), so re-pushed peers
                # come back through this choice point with one fewer
                # candidate — every pick is a real scheduling decision.
                ready = [core]
                while heap and heap[0][0] == now:
                    ready.append(heappop(heap)[1])
                ready.sort()
                core = ready.pop(scheduler.pick(now, ready))
                for waiting in ready:
                    heappush(heap, (now, waiting))
            self.now = now
            if now > max_cycles:
                self.event_count = events
                stats.truncated = True
                stats.makespan_cycles = max(stats.makespan_cycles, now)
                raise CycleLimitExceeded(
                    "cycle limit {} exceeded with the workload unfinished "
                    "({} of {} cores done)".format(
                        max_cycles,
                        sum(1 for ex in executors if ex.finish_time is not None),
                        config.num_cores,
                    ),
                    diagnostic=self.diagnostic_dump(now, parked),
                    stats=stats,
                )
            events += 1
            if validate_interval and events % validate_interval == 0:
                oracle.sample()
            if watchdog and events % WATCHDOG_CHECK_EVENTS == 0:
                commits = stats.total_commits
                if commits != watchdog_commits:
                    watchdog_commits = commits
                    watchdog_progress_cycle = now
                elif now - watchdog_progress_cycle > watchdog:
                    self.event_count = events
                    raise LivelockError(
                        "no AR committed in the last {} cycles (cycle {}, "
                        "{} commits so far) while cores keep executing".format(
                            now - watchdog_progress_cycle, now, commits
                        ),
                        diagnostic=self.diagnostic_dump(now, parked),
                        stats=stats,
                    )
            kind, payload = step_for[core](now)
            if kind == STEP_DELAY:
                heappush(heap, (now + (payload if payload > 1 else 1), core))
            elif kind == STEP_BLOCK:
                parked[core] = now
                if trace is not None:
                    trace.emit(Park(now, core, _waiting_on_label(payload)))
            elif kind != STEP_DONE:
                self.event_count = events
                raise SimulationError("unknown step result {!r}".format(kind))
            if self._release_pending:
                self._release_pending = False
                if faults is None and trace is None:
                    # Hook-free wakeup: the common case, with the
                    # None-checks hoisted out of the loop.
                    for parked_core, park_time in parked.items():
                        stats.add_wait(parked_core, max(0, now - park_time))
                        heappush(heap, (max(park_time, now) + 1, parked_core))
                else:
                    for parked_core, park_time in parked.items():
                        stats.add_wait(parked_core, max(0, now - park_time))
                        wake = max(park_time, now) + 1
                        if faults is not None:
                            wake += faults.wakeup_delay(parked_core)
                        if trace is not None:
                            trace.emit(Wakeup(
                                now, parked_core, max(0, now - park_time)
                            ))
                        heappush(heap, (wake, parked_core))
                parked.clear()
        self.event_count = events
        if parked:
            raise DeadlockError(
                "deadlock: cores {} parked with no runnable core to release "
                "what they wait on".format(sorted(parked)),
                diagnostic=self.diagnostic_dump(now, parked),
                stats=self.stats,
            )
        finish_times = [
            executor.finish_time
            for executor in self.executors
            if executor.finish_time is not None
        ]
        self.stats.makespan_cycles = max(finish_times) if finish_times else now
        annotations = self.design.stat_annotations(machine=self)
        if annotations:
            self.stats.design_annotations = dict(annotations)
        if oracle is not None or self.monitor is not None:
            finalize_checkers(self)
        return self.stats

    # -- diagnostics ----------------------------------------------------------

    def diagnostic_dump(self, now, parked=None):
        """JSON-serializable snapshot of machine state for stall errors.

        Captures everything needed to diagnose *why* the machine stopped
        making progress: per-core execution phase/mode/retry state, the
        cacheline lock table, fallback and power-token holders, ERT/CRT
        contents, and headline commit/abort totals.
        """
        parked = parked or {}
        cores = []
        for executor in self.executors:
            region = None
            if executor.invocation is not None:
                region = executor.invocation.region_id
                if isinstance(region, tuple):
                    region = list(region)
            entry = {
                "core": executor.core,
                "phase": executor.phase,
                "mode": executor.mode.value if executor.mode is not None else None,
                "region": region,
                "counting_retries": executor.counting_retries,
                "attempt_index": executor.attempt_index,
                "attempt_ops": executor.attempt_ops,
                "pending_abort": (
                    executor.pending_abort.value
                    if executor.pending_abort is not None else None
                ),
                "locked_lines": sorted(executor.locked_lines),
                "fallback_read_held": executor.fallback_read_held,
                "fallback_write_held": executor.fallback_write_held,
                "parked_since": parked.get(executor.core),
                "finished": executor.finish_time is not None,
            }
            if executor.controller is not None:
                entry["controller"] = executor.controller.diagnostic_state()
            cores.append(entry)
        trace_tail = None
        if self.trace is not None:
            trace_tail = [
                event.to_dict()
                for event in self.trace.tail(DIAGNOSTIC_TRACE_TAIL)
            ]
        return {
            "cycle": now,
            "trace_tail": trace_tail,
            "cores": cores,
            "lock_table": self.memsys.locks.snapshot(),
            "fallback_writer": self.fallback.writer,
            "fallback_readers": sorted(self.fallback.readers),
            "power_holder": self.power.holder,
            "total_commits": self.stats.total_commits,
            "total_aborts": self.stats.total_aborts,
            "injected_aborts": (
                self.faults.injected_abort_count() if self.faults is not None else 0
            ),
        }


def build_machine(config, workload, seed=1, trace=None, scheduler=None,
                  retry_ledger=None):
    """Construct the machine class selected by ``config.backend``.

    ``"reference"`` builds the :class:`Machine` above (the semantic
    oracle); ``"batch"`` builds :class:`repro.sim.batch.BatchMachine`,
    a bit-identical calendar-queue backend that degrades to the
    reference loop whenever a per-event hook is armed. The import is
    lazy because the batch backend subclasses :class:`Machine`.
    """
    if config.backend == "batch":
        from repro.sim.batch import BatchMachine

        cls = BatchMachine
    else:
        cls = Machine
    return cls(config, workload, seed, trace=trace, scheduler=scheduler,
               retry_ledger=retry_ledger)
