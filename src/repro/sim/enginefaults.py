"""Engine-level chaos: faults in the *substrate*, not the simulated machine.

:mod:`repro.sim.faults` injects faults into the simulated HTM (spurious
aborts, latency jitter); this module injects faults into the experiment
engine itself — the layer PR 2's fault tolerance had never been tested
against. Three seeded fault families, all deterministic:

- **Worker SIGKILLs** — :func:`kill_once_execute` wraps the normal cell
  executor and, for cells selected by the plan, kills its own worker
  process with ``SIGKILL`` (the untrappable kind). A marker file makes
  each kill exactly-once per cell per job, so the engine's
  crash-recovery path is exercised but every chaos run still converges.
- **Cache/journal file corruption and torn writes** — :class:`FaultyIO`
  subclasses the :class:`~repro.common.diskio.DiskIO` seam: atomic
  writes may land garbage payloads, appends may tear mid-record
  (exactly what a power loss does to the journal tail).
- **ENOSPC** — writes may raise ``OSError(ENOSPC)``, driving the
  cache's degrade-to-off path and the journal's error handling.

Every decision hashes ``(seed, fault kind, target, occurrence)`` so two
runs under the same :class:`EngineFaultPlan` inject identical faults —
chaos runs are replayable, and CI can assert that two seeded runs
converge to byte-identical reports.
"""

import dataclasses
import errno
import hashlib
import os
import signal

from repro.common.diskio import DiskIO


def _roll(seed, kind, label, occurrence):
    """Deterministic uniform draw in [0, 1) for one fault decision."""
    payload = "{}:{}:{}:{}".format(seed, kind, label, occurrence)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclasses.dataclass(frozen=True)
class EngineFaultPlan:
    """Seeded rates for each engine-fault family.

    Rates are independent probabilities per opportunity: per cell for
    ``worker_kill_rate``, per write/append for the IO families. The
    frozen dataclass is hashable and picklable, so a plan can cross
    process boundaries and key test parametrizations.
    """

    seed: int = 0
    worker_kill_rate: float = 0.0
    corrupt_rate: float = 0.0
    torn_write_rate: float = 0.0
    enospc_rate: float = 0.0

    def __post_init__(self):
        for field in ("worker_kill_rate", "corrupt_rate",
                      "torn_write_rate", "enospc_rate"):
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    "{} must be in [0, 1], not {}".format(field, rate)
                )

    def roll(self, kind, label, occurrence=0):
        """The seeded draw for one (fault kind, target) opportunity."""
        return _roll(self.seed, kind, label, occurrence)


class FaultyIO(DiskIO):
    """A :class:`DiskIO` that injects the plan's IO faults.

    Decisions key on the target's basename and a per-path operation
    counter, so every *retry* of an operation gets a fresh draw — a
    fault plan with rates below 1 therefore always converges: a
    corrupted cache entry is quarantined and rewritten, a torn journal
    record is dropped on replay and re-appended after re-execution.
    ``injected`` counts what actually fired, per fault kind.
    """

    def __init__(self, plan):
        self.plan = plan
        self.injected = {"corrupt": 0, "torn": 0, "enospc": 0}
        self._op_counts = {}

    def _occurrence(self, kind, name):
        key = (kind, name)
        count = self._op_counts.get(key, 0)
        self._op_counts[key] = count + 1
        return count

    def _raise_enospc(self, path):
        self.injected["enospc"] += 1
        raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), path)

    def write_atomic(self, path, data):
        name = os.path.basename(path)
        occurrence = self._occurrence("write", name)
        if self.plan.roll("enospc", name, occurrence) < self.plan.enospc_rate:
            self._raise_enospc(path)
        if self.plan.roll("corrupt", name, occurrence) < self.plan.corrupt_rate:
            self.injected["corrupt"] += 1
            data = b"\x00CHAOS" + data[: max(0, len(data) // 2)]
        super().write_atomic(path, data)

    def append_line(self, path, line):
        name = os.path.basename(path)
        occurrence = self._occurrence("append", name)
        if self.plan.roll("enospc", name, occurrence) < self.plan.enospc_rate:
            self._raise_enospc(path)
        data = line.encode("utf-8") + b"\n"
        if self.plan.roll("torn", name, occurrence) < self.plan.torn_write_rate:
            self.injected["torn"] += 1
            # Tear mid-record: keep a strict prefix, lose the newline —
            # byte-for-byte what a crash during write() leaves behind.
            data = data[: max(1, len(data) // 2)]
        self.append_bytes(path, data)


def should_kill(spec_key, *, rate, seed, marker_dir):
    """Decide-and-claim one exactly-once kill for a cell.

    Returns True when the plan selects this cell *and* this call won the
    marker (``O_CREAT|O_EXCL``) — so across every retry and every worker
    process, each selected cell dies exactly once per ``marker_dir``.
    """
    if rate <= 0.0 or _roll(seed, "kill", spec_key, 0) >= rate:
        return False
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(marker_dir, spec_key)
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False  # this cell already took its kill
    os.close(fd)
    return True


def kill_once_execute(spec, rate, seed, marker_dir):
    """``execute_spec`` that may SIGKILL its own worker first.

    Module-level (used via ``functools.partial``) so the process pool
    can pickle it. The marker file is claimed *before* the kill, so the
    retried cell runs clean — the engine's BrokenProcessPool recovery
    is what gets tested, not an infinite crash loop.
    """
    from repro.sim.engine import execute_spec

    if should_kill(spec.cache_key(), rate=rate, seed=seed,
                   marker_dir=marker_dir):
        os.kill(os.getpid(), signal.SIGKILL)
    return execute_spec(spec)


__all__ = [
    "EngineFaultPlan",
    "FaultyIO",
    "kill_once_execute",
    "should_kill",
]
