"""The shadow-replay serializability oracle (``oracle="shadow"``).

The paper's guarantees are *robustness* claims — committed schedules
stay serializable, NS-CL always completes, locks and the power token
never leak, and the decision tree keeps every region making progress.
This module checks those claims while a run executes (in the spirit of
RegionTrack-style dynamic trace checkers), so a chaos run under
:mod:`repro.sim.faults` is a proof, not a hope:

- **Commit-order serializability.** Every committed AR is replayed, in
  commit order, against a *shadow memory* seeded from the post-setup
  state (workload-level pokes issued outside any AR are mirrored in as
  they happen). At the end of the run the shadow and the architectural
  memory must agree word for word: the interleaved execution was
  equivalent to the serial execution in commit order. Fallback regions
  that ended at an explicit XAbort are replayed with
  ``stop_on_abort=True``, mirroring the executor's semantics.
- **Invariant sampling.** :func:`repro.sim.validate.validate_machine`
  runs every ``oracle_validate_interval`` event-loop pops, catching
  cross-subsystem corruption near where it happens instead of at the
  end of the run.
- **Leak checks.** After the last thread finishes, the cacheline lock
  table must be empty and the fallback lock and power token free.

Violations raise :class:`repro.common.errors.OracleViolation` carrying
a structured ``details`` dict. The oracle costs zero simulated cycles;
it is pure host-side measurement machinery.

The replay oracle is the *reference* checker: sound and complete, but
it re-executes every committed region on the host, which is too slow
to leave on under the bench grid or large fuzzing campaigns. The
production-rate checker is :class:`repro.sim.monitor.OnlineMonitor`
(``oracle="online"``); ``oracle="cross-check"`` runs both and compares
their verdicts. See :data:`repro.sim.config.ORACLE_MODES`.
"""

from repro.common.errors import OracleViolation
from repro.memory.shared import SharedMemory
from repro.sim.replay import replay_body
from repro.sim.validate import validate_machine

#: How many diverging addresses a serializability violation reports.
MAX_DIFF_REPORT = 16


def check_leaks(machine):
    """End-of-run leak checks shared by both serializability checkers.

    After the last thread finishes, the cacheline lock table must be
    empty and the fallback lock and power token free; anything held is
    a protocol leak and raises :class:`OracleViolation`.
    """
    locks = machine.memsys.locks
    if locks.locked_line_count():
        raise OracleViolation(
            "lock-table leak: {} cacheline lock(s) survived the run".format(
                locks.locked_line_count()
            ),
            details={"held": locks.snapshot()},
        )
    fallback = machine.fallback
    if fallback.is_write_held() or fallback.readers:
        raise OracleViolation(
            "fallback-lock leak after run completion",
            details={
                "writer": fallback.writer,
                "readers": sorted(fallback.readers),
            },
        )
    if machine.power.holder is not None:
        raise OracleViolation(
            "power-token leak: core {} still holds the token".format(
                machine.power.holder
            ),
            details={"holder": machine.power.holder},
        )


class CommitRecord:
    """One committed AR, in commit order (kept for the violation report)."""

    __slots__ = ("order", "core", "region_id", "mode", "via_abort")

    def __init__(self, order, core, region_id, mode, via_abort):
        self.order = order
        self.core = core
        self.region_id = region_id
        self.mode = mode
        self.via_abort = via_abort

    def to_dict(self):
        """JSON-serializable form (used in violation details)."""
        return {
            "order": self.order,
            "core": self.core,
            "region": list(self.region_id)
            if isinstance(self.region_id, tuple) else self.region_id,
            "mode": self.mode.value,
            "via_abort": self.via_abort,
        }


class RuntimeOracle:
    """Watches one :class:`~repro.sim.machine.Machine` run.

    Construct *after* workload setup (the shadow memory is seeded from
    the post-setup state). The machine calls :meth:`record_commit` on
    every commit, :meth:`sample` periodically from the event loop, and
    :meth:`finalize` once the run completes cleanly.
    """

    def __init__(self, machine, validate_interval=4096):
        self.machine = machine
        self.validate_interval = validate_interval
        self.shadow = SharedMemory()
        for word_addr, value in machine.memory.snapshot().items():
            self.shadow.poke(word_addr, value)
        # Mirror out-of-AR pokes (workload node refills etc.) into the
        # shadow as they happen; they are deterministic, thread-local
        # initialization writes that precede the AR that publishes them.
        machine.memory.poke_mirror = self.shadow.poke
        self.commits = []
        self.samples_taken = 0

    # -- hooks ---------------------------------------------------------------

    def record_commit(self, core, invocation, mode, via_abort=False):
        """Replay a just-committed AR against the shadow, in commit order."""
        record = CommitRecord(
            len(self.commits), core, invocation.region_id, mode, via_abort
        )
        self.commits.append(record)
        replay_body(
            invocation.body_factory, self.shadow,
            commit=True, stop_on_abort=True,
        )

    def sample(self):
        """Mid-run invariant check (periodic validate_machine)."""
        self.samples_taken += 1
        validate_machine(self.machine)

    # -- end of run ----------------------------------------------------------

    def finalize(self):
        """Leak checks + final serializability diff; raises on violation."""
        check_leaks(self.machine)
        validate_machine(self.machine)
        self._check_serializability()
        self.machine.memory.poke_mirror = None

    def _check_serializability(self):
        memory_words = self.machine.memory.snapshot()
        shadow_words = self.shadow.snapshot()
        diffs = []
        for word_addr in sorted(set(memory_words) | set(shadow_words)):
            actual = memory_words.get(word_addr, 0)
            replayed = shadow_words.get(word_addr, 0)
            if actual != replayed:
                diffs.append(
                    {"addr": word_addr, "actual": actual, "replayed": replayed}
                )
                if len(diffs) > MAX_DIFF_REPORT:
                    break
        if diffs:
            raise OracleViolation(
                "commit-order replay diverges from architectural memory at "
                "{}{} address(es): the committed schedule is not "
                "serializable in commit order".format(
                    len(diffs), "+" if len(diffs) > MAX_DIFF_REPORT else ""
                ),
                details={
                    "diffs": diffs[:MAX_DIFF_REPORT],
                    "commits": [
                        record.to_dict() for record in self.commits[-32:]
                    ],
                },
            )
