"""Simulation engine: cores, programs, timing, statistics, wiring.

- :mod:`repro.sim.config` — the Table 2 machine configuration plus
  policy knobs selecting the evaluated configurations (B/P/C/W).
- :mod:`repro.sim.program` — the operation vocabulary atomic-region
  bodies are written in (Load/Store/Compute/Branch/AbortOp).
- :mod:`repro.sim.stats` — the measurement surface backing every
  figure of the evaluation.
- :mod:`repro.sim.executor` — the per-core AR execution state machine.
- :mod:`repro.sim.machine` — the assembled multicore machine and its
  event loop.
- :mod:`repro.sim.runner` — multi-seed runs with the paper's trimmed
  mean, and the retry-threshold design-space sweep.
- :mod:`repro.sim.engine` — the parallel, cached experiment engine
  fanning independent (workload, config, seed) cells over worker
  processes with content-addressed on-disk memoization.
- :mod:`repro.sim.journal` — crash-safe sweep journaling: job folders
  with an atomic manifest and an append-only fsync'd outcome log, so a
  SIGKILL'd sweep resumes with exactly-once cell execution.
- :mod:`repro.sim.faults` — deterministic seeded fault injection (the
  chaos layer, faults *inside* the simulated machine).
- :mod:`repro.sim.enginefaults` — seeded fault injection against the
  engine substrate itself (worker SIGKILLs, cache corruption, torn
  journal writes, ENOSPC).
- :mod:`repro.sim.oracle` — the shadow-replay serializability oracle
  (``oracle="shadow"``: commit-order replay, invariant sampling, leak
  checks).
- :mod:`repro.sim.monitor` — the online commit-order serializability
  monitor (``oracle="online"``: incremental epoch checking at
  production rate, same leak checks).
"""

from repro.common.retry import RetryPolicy
from repro.sim.config import SimConfig, HtmPolicy
from repro.sim.engine import (
    CellFailure,
    DiskCache,
    ExperimentEngine,
    ProgressEvent,
    RunSpec,
    SweepReport,
    run_specs,
)
from repro.sim.enginefaults import EngineFaultPlan
from repro.sim.faults import FaultPlan
from repro.sim.journal import SweepJournal
from repro.sim.monitor import OnlineMonitor
from repro.sim.oracle import RuntimeOracle
from repro.sim.program import Load, Store, Compute, Branch, AbortOp, Invoke, Think
from repro.sim.stats import MachineStats, CoreStats
from repro.sim.machine import Machine
from repro.sim.runner import run_workload, run_seeds, RunResult, AggregateResult

__all__ = [
    "SimConfig",
    "HtmPolicy",
    "CellFailure",
    "DiskCache",
    "EngineFaultPlan",
    "ExperimentEngine",
    "RetryPolicy",
    "SweepJournal",
    "SweepReport",
    "FaultPlan",
    "ProgressEvent",
    "RunSpec",
    "OnlineMonitor",
    "RuntimeOracle",
    "run_specs",
    "Load",
    "Store",
    "Compute",
    "Branch",
    "AbortOp",
    "Invoke",
    "Think",
    "MachineStats",
    "CoreStats",
    "Machine",
    "run_workload",
    "run_seeds",
    "RunResult",
    "AggregateResult",
]
