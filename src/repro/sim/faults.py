"""Deterministic, seeded fault injection — the chaos layer.

Real TSX-class HTM suffers aborts our conflict model never produces on
its own: interrupts and microarchitectural events cause *spurious*
aborts, and cache-geometry effects cause *capacity* aborts that the
read/write-set model cannot predict. Real interconnects also jitter,
and real wakeups from lock releases are not instantaneous. This module
injects all four fault classes so the paper's robustness claims — the
NS-CL completion guarantee, the S-CL NACK/retry deadlock avoidance, and
the bounded-retry decision tree — can be stressed adversarially while
the runtime oracles (:mod:`repro.sim.oracle`) watch.

Every draw flows through dedicated child streams of the run's
:class:`~repro.common.rng.DeterministicRng`, so:

- the same ``(config, seed)`` pair reproduces the *identical*
  injected-fault sequence (recorded in :attr:`FaultPlan.log`), and
- enabling faults never perturbs any other RNG stream — with every
  knob at zero no :class:`FaultPlan` is built at all and the executor
  hooks reduce to a skipped ``None`` check, keeping default runs
  bit-identical to a chaos-free build.

Injected aborts are reported under their own
:class:`~repro.htm.abort.AbortReason` values (``INJECTED_SPURIOUS`` /
``INJECTED_CAPACITY``, Fig. 11 category ``Injected``) so chaos runs
stay analyzable with the standard figure machinery.
"""

from repro.htm.abort import AbortReason

#: Injected aborts strike within the first this-many body operations of
#: the doomed attempt (uniformly drawn), so short and long atomic
#: regions both get hit at comparable per-attempt rates.
INJECT_WINDOW_OPS = 16


class FaultPlan:
    """Per-run injected-fault schedule, derived from the run seed.

    Built by :meth:`from_config`, which returns ``None`` when every
    fault knob is zero — the machine and executor hooks test that
    ``machine.faults is not None`` and otherwise do no work at all.
    """

    def __init__(self, config, rng, num_cores):
        self.spurious_rate = config.fault_spurious_rate
        self.capacity_rate = config.fault_capacity_rate
        self.jitter_cycles = config.fault_jitter_cycles
        self.wakeup_delay_cycles = config.fault_wakeup_delay_cycles
        fault_rng = rng.child("faults")
        self._attempt_rngs = [
            fault_rng.child(("attempt", core)) for core in range(num_cores)
        ]
        self._jitter_rngs = [
            fault_rng.child(("jitter", core)) for core in range(num_cores)
        ]
        self._wakeup_rng = fault_rng.child("wakeup")
        #: Chronological record of injected aborts that actually fired:
        #: ``(reason_value, core, attempt_index)`` tuples. Two runs of
        #: the same (config, seed) produce identical logs.
        self.log = []
        # Timing perturbations are far too frequent to log one by one;
        # aggregate counters still pin down the sequence (they are a
        # deterministic function of the per-core draw streams).
        self.jitter_events = 0
        self.jitter_cycles_total = 0
        self.wakeup_delays = 0
        self.wakeup_cycles_total = 0

    @classmethod
    def from_config(cls, config, rng, num_cores):
        """A plan for this run, or ``None`` when chaos is disabled."""
        if not config.chaos_enabled:
            return None
        return cls(config, rng, num_cores)

    # -- abort injection ----------------------------------------------------

    def plan_attempt(self, core):
        """Schedule an injected abort for one speculative attempt.

        Returns ``(reason, op_index)`` — abort the attempt with
        ``reason`` once it has executed ``op_index`` body operations —
        or ``None`` when this attempt is spared. Consumes exactly one
        or two draws from the core's attempt stream, so the schedule
        depends only on the per-core attempt sequence, not on
        cross-core interleaving.
        """
        roll = self._attempt_rngs[core].random()
        if roll < self.spurious_rate:
            reason = AbortReason.INJECTED_SPURIOUS
        elif roll < self.spurious_rate + self.capacity_rate:
            reason = AbortReason.INJECTED_CAPACITY
        else:
            return None
        op_index = self._attempt_rngs[core].randint(1, INJECT_WINDOW_OPS)
        return (reason, op_index)

    def note_injected(self, core, reason, attempt_index):
        """Record that a planned abort actually fired."""
        self.log.append((reason.value, core, attempt_index))

    # -- timing perturbations -----------------------------------------------

    def jitter(self, core):
        """Extra coherence-latency cycles for one memory access."""
        if self.jitter_cycles <= 0:
            return 0
        extra = self._jitter_rngs[core].randint(0, self.jitter_cycles)
        if extra:
            self.jitter_events += 1
            self.jitter_cycles_total += extra
        return extra

    def wakeup_delay(self, core):
        """Extra cycles delaying one parked core's release wakeup."""
        if self.wakeup_delay_cycles <= 0:
            return 0
        extra = self._wakeup_rng.randint(0, self.wakeup_delay_cycles)
        if extra:
            self.wakeup_delays += 1
            self.wakeup_cycles_total += extra
        return extra

    # -- reporting ----------------------------------------------------------

    def injected_abort_count(self):
        """Number of injected aborts that actually fired."""
        return len(self.log)

    def summary(self):
        """JSON-serializable digest of everything this plan injected."""
        return {
            "injected_aborts": list(self.log),
            "jitter_events": self.jitter_events,
            "jitter_cycles_total": self.jitter_cycles_total,
            "wakeup_delays": self.wakeup_delays,
            "wakeup_cycles_total": self.wakeup_cycles_total,
        }
