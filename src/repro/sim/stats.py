"""Measurement surface backing every figure of the evaluation.

The executor reports events here; the analysis layer derives the
paper's metrics:

- Fig. 8  — makespan plus cycles spent running aborted-in-discovery.
- Fig. 9  — aborts per committed transaction.
- Fig. 10 — energy inputs (per-level access counts, event counts).
- Fig. 11 — abort breakdown by category.
- Fig. 12 — commit breakdown by execution mode.
- Fig. 13 — commit breakdown by number of (counting) retries.
- Fig. 1  — footprint stability of first retries.
"""

from collections import Counter

from repro.core.modes import ExecMode
from repro.htm.abort import AbortCategory, AbortReason, categorize_abort


def _region_key_to_list(region_id):
    """JSON-safe form of a region id (tuples become lists)."""
    if isinstance(region_id, tuple):
        return list(region_id)
    return region_id


def _region_key_from_list(region_id):
    """Inverse of :func:`_region_key_to_list`."""
    if isinstance(region_id, list):
        return tuple(region_id)
    return region_id


class CoreStats:
    """Per-core cycle accounting."""

    __slots__ = ("busy_cycles", "discovery_failed_cycles", "wait_cycles",
                 "lock_acquire_cycles", "commits", "aborts")

    def __init__(self):
        self.busy_cycles = 0
        self.discovery_failed_cycles = 0
        self.wait_cycles = 0
        self.lock_acquire_cycles = 0
        self.commits = 0
        self.aborts = 0

    def to_dict(self):
        """All counters as a JSON-serializable dict."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        """Rebuild per-core counters from :meth:`to_dict` output."""
        stats = cls()
        for slot in cls.__slots__:
            setattr(stats, slot, data[slot])
        return stats


class MachineStats:
    """Aggregated statistics for one simulation run."""

    def __init__(self, num_cores):
        self.num_cores = num_cores
        self.cores = [CoreStats() for _ in range(num_cores)]
        self.commits_by_mode = Counter()
        self.commits_by_retries = Counter()  # non-fallback commits only
        self.fallback_commit_retries = Counter()
        self.aborts_by_reason = Counter()
        self.aborts_by_category = Counter()
        self.per_region_commits = Counter()
        self.per_region_aborts = Counter()
        # Energy inputs.
        self.accesses_by_level = Counter()
        self.compute_ops = 0
        self.branch_ops = 0
        self.tx_begins = 0
        self.line_locks_acquired = 0
        # Fig. 1 instrumentation.
        self.first_retry_observations = 0
        self.first_retry_immutable_small = 0
        # Run outcome.
        self.makespan_cycles = 0
        self.truncated = False

    # -- event recording ------------------------------------------------------

    def record_begin(self, core):
        """A transaction (any mode) began an attempt."""
        self.tx_begins += 1

    def record_commit(self, core, mode, counting_retries, region_id):
        """An AR committed in ``mode`` after ``counting_retries`` counted retries."""
        self.cores[core].commits += 1
        self.commits_by_mode[mode] += 1
        self.per_region_commits[region_id] += 1
        if mode is ExecMode.FALLBACK:
            self.fallback_commit_retries[counting_retries] += 1
        else:
            self.commits_by_retries[counting_retries] += 1

    def record_abort(self, core, reason, region_id):
        """An attempt aborted for ``reason`` (categorized per Fig. 11)."""
        self.cores[core].aborts += 1
        self.aborts_by_reason[reason] += 1
        self.aborts_by_category[categorize_abort(reason)] += 1
        self.per_region_aborts[region_id] += 1

    def record_access(self, level):
        """A memory access served at ``level`` (L1/L2/L3/MEM/C2C/UPG/LOCK)."""
        self.accesses_by_level[level] += 1

    def record_compute(self, ops=1):
        """Non-memory work (for the dynamic-energy model)."""
        self.compute_ops += ops

    def record_branch(self):
        """A branch retired inside an AR."""
        self.branch_ops += 1

    def record_lock_acquired(self, count=1):
        """Cacheline locks taken by a CL-mode attempt."""
        self.line_locks_acquired += count

    def record_first_retry(self, immutable_and_small):
        """Fig. 1 observation for one first retry."""
        self.first_retry_observations += 1
        if immutable_and_small:
            self.first_retry_immutable_small += 1

    def add_busy(self, core, cycles, failed_discovery=False, lock_acquire=False):
        """Attribute executing cycles to a core (with phase tags)."""
        self.cores[core].busy_cycles += cycles
        if failed_discovery:
            self.cores[core].discovery_failed_cycles += cycles
        if lock_acquire:
            self.cores[core].lock_acquire_cycles += cycles

    def add_wait(self, core, cycles):
        """Attribute parked/blocked cycles to a core."""
        self.cores[core].wait_cycles += cycles

    # -- derived metrics --------------------------------------------------------

    @property
    def total_commits(self):
        """All commits across modes."""
        return sum(self.commits_by_mode.values())

    @property
    def total_aborts(self):
        """All aborts across reasons."""
        return sum(self.aborts_by_reason.values())

    def injected_abort_count(self):
        """Aborts recorded under the chaos layer's ``Injected`` category."""
        return self.aborts_by_category.get(AbortCategory.INJECTED, 0)

    def aborts_per_commit(self):
        """Fig. 9 metric."""
        commits = self.total_commits
        if commits == 0:
            return 0.0
        return self.total_aborts / commits

    def commit_mode_shares(self):
        """Fig. 12 metric: fraction of commits per execution mode."""
        commits = self.total_commits
        if commits == 0:
            return {}
        return {
            mode: count / commits for mode, count in self.commits_by_mode.items()
        }

    def abort_category_shares(self):
        """Fig. 11 metric: fraction of aborts per category."""
        aborts = self.total_aborts
        if aborts == 0:
            return {}
        return {
            category: count / aborts
            for category, count in self.aborts_by_category.items()
        }

    def retry_shares(self):
        """Fig. 13 metric over commits that needed at least one retry.

        Returns (first_retry_share, n_retry_share, fallback_share); all
        zero when nothing ever retried.
        """
        non_fallback_retried = sum(
            count for retries, count in self.commits_by_retries.items() if retries >= 1
        )
        fallback = sum(self.fallback_commit_retries.values())
        denominator = non_fallback_retried + fallback
        if denominator == 0:
            return (0.0, 0.0, 0.0)
        first = self.commits_by_retries.get(1, 0)
        n_retry = non_fallback_retried - first
        return (first / denominator, n_retry / denominator, fallback / denominator)

    def discovery_time_fraction(self):
        """Fig. 8 overlay: share of busy cycles spent in failed discovery."""
        busy = sum(core.busy_cycles for core in self.cores)
        if busy == 0:
            return 0.0
        failed = sum(core.discovery_failed_cycles for core in self.cores)
        return failed / busy

    def first_retry_immutable_ratio(self):
        """Fig. 1 metric."""
        if self.first_retry_observations == 0:
            return 0.0
        return self.first_retry_immutable_small / self.first_retry_observations

    # -- serialization ----------------------------------------------------------

    def to_dict(self):
        """The full measurement surface as a JSON-serializable dict.

        Enum-keyed counters are stored by enum ``value``; integer-keyed
        retry counters are stored with stringified keys (JSON objects
        only key on strings); tuple region ids become two-element lists.
        :meth:`from_dict` inverts all of it losslessly.
        """
        return {
            "num_cores": self.num_cores,
            "cores": [core.to_dict() for core in self.cores],
            "commits_by_mode": {
                mode.value: count for mode, count in self.commits_by_mode.items()
            },
            "commits_by_retries": {
                str(retries): count
                for retries, count in self.commits_by_retries.items()
            },
            "fallback_commit_retries": {
                str(retries): count
                for retries, count in self.fallback_commit_retries.items()
            },
            "aborts_by_reason": {
                reason.value: count
                for reason, count in self.aborts_by_reason.items()
            },
            "aborts_by_category": {
                category.value: count
                for category, count in self.aborts_by_category.items()
            },
            "per_region_commits": [
                [_region_key_to_list(region), count]
                for region, count in self.per_region_commits.items()
            ],
            "per_region_aborts": [
                [_region_key_to_list(region), count]
                for region, count in self.per_region_aborts.items()
            ],
            "accesses_by_level": dict(self.accesses_by_level),
            "compute_ops": self.compute_ops,
            "branch_ops": self.branch_ops,
            "tx_begins": self.tx_begins,
            "line_locks_acquired": self.line_locks_acquired,
            "first_retry_observations": self.first_retry_observations,
            "first_retry_immutable_small": self.first_retry_immutable_small,
            "makespan_cycles": self.makespan_cycles,
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`MachineStats` from :meth:`to_dict` output."""
        stats = cls(data["num_cores"])
        stats.cores = [CoreStats.from_dict(core) for core in data["cores"]]
        stats.commits_by_mode = Counter(
            {ExecMode(mode): count
             for mode, count in data["commits_by_mode"].items()}
        )
        stats.commits_by_retries = Counter(
            {int(retries): count
             for retries, count in data["commits_by_retries"].items()}
        )
        stats.fallback_commit_retries = Counter(
            {int(retries): count
             for retries, count in data["fallback_commit_retries"].items()}
        )
        stats.aborts_by_reason = Counter(
            {AbortReason(reason): count
             for reason, count in data["aborts_by_reason"].items()}
        )
        stats.aborts_by_category = Counter(
            {AbortCategory(category): count
             for category, count in data["aborts_by_category"].items()}
        )
        stats.per_region_commits = Counter(
            {_region_key_from_list(region): count
             for region, count in data["per_region_commits"]}
        )
        stats.per_region_aborts = Counter(
            {_region_key_from_list(region): count
             for region, count in data["per_region_aborts"]}
        )
        stats.accesses_by_level = Counter(data["accesses_by_level"])
        stats.compute_ops = data["compute_ops"]
        stats.branch_ops = data["branch_ops"]
        stats.tx_begins = data["tx_begins"]
        stats.line_locks_acquired = data["line_locks_acquired"]
        stats.first_retry_observations = data["first_retry_observations"]
        stats.first_retry_immutable_small = data["first_retry_immutable_small"]
        stats.makespan_cycles = data["makespan_cycles"]
        stats.truncated = data["truncated"]
        return stats

    def summary(self):
        """Human-readable one-line digest (used by examples)."""
        return (
            "cycles={} commits={} aborts={} aborts/commit={:.2f}".format(
                self.makespan_cycles,
                self.total_commits,
                self.total_aborts,
                self.aborts_per_commit(),
            )
        )
