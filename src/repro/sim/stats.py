"""Measurement surface backing every figure of the evaluation.

The executor reports events here; the analysis layer derives the
paper's metrics:

- Fig. 8  — makespan plus cycles spent running aborted-in-discovery.
- Fig. 9  — aborts per committed transaction.
- Fig. 10 — energy inputs (per-level access counts, event counts).
- Fig. 11 — abort breakdown by category.
- Fig. 12 — commit breakdown by execution mode.
- Fig. 13 — commit breakdown by number of (counting) retries.
- Fig. 1  — footprint stability of first retries.

Scalar counters live in an always-on
:class:`~repro.obs.metrics.MetricRegistry` (``stats.metrics``) rather
than ad-hoc attributes; the legacy names (``compute_ops``,
``tx_begins``, ...) are properties over the registry, so every consumer
and the serialized form are unchanged. The registry also carries the
latency histograms (abort latency, retries per committed AR, cacheline
lock hold time, fallback hold time) — all pure functions of simulated
cycles, so they are identical with tracing on or off.

The serializability checkers (:mod:`repro.sim.oracle`,
:mod:`repro.sim.monitor`) keep their own counters (commit records,
reads checked, samples taken) *outside* this surface on purpose: a
checked run must serialize, fingerprint, and golden-compare exactly
like an unchecked one.
"""

from collections import Counter

from repro.common.serialize import Serializable
from repro.core.modes import ExecMode
from repro.htm.abort import AbortCategory, AbortReason, categorize_abort
from repro.obs.metrics import MetricRegistry


def _region_key_to_list(region_id):
    """JSON-safe form of a region id (tuples become lists)."""
    if isinstance(region_id, tuple):
        return list(region_id)
    return region_id


def _region_key_from_list(region_id):
    """Inverse of :func:`_region_key_to_list`."""
    if isinstance(region_id, list):
        return tuple(region_id)
    return region_id


class CoreStats:
    """Per-core cycle accounting."""

    __slots__ = ("busy_cycles", "discovery_failed_cycles", "wait_cycles",
                 "lock_acquire_cycles", "commits", "aborts")

    def __init__(self):
        self.busy_cycles = 0
        self.discovery_failed_cycles = 0
        self.wait_cycles = 0
        self.lock_acquire_cycles = 0
        self.commits = 0
        self.aborts = 0

    def to_dict(self):
        """All counters as a JSON-serializable dict."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        """Rebuild per-core counters from :meth:`to_dict` output."""
        stats = cls()
        for slot in cls.__slots__:
            setattr(stats, slot, data[slot])
        return stats


class MachineStats(Serializable):
    """Aggregated statistics for one simulation run."""

    def __init__(self, num_cores):
        self.num_cores = num_cores
        self.cores = [CoreStats() for _ in range(num_cores)]
        self.commits_by_mode = Counter()
        self.commits_by_retries = Counter()  # non-fallback commits only
        self.fallback_commit_retries = Counter()
        self.aborts_by_reason = Counter()
        self.per_region_commits = Counter()
        self.per_region_aborts = Counter()
        # Energy inputs.
        self.accesses_by_level = Counter()
        # Scalar counters and latency histograms live in the registry;
        # _bind_metrics exposes them as cheap bound objects.
        self.metrics = MetricRegistry()
        self._bind_metrics()
        # Run outcome.
        self.makespan_cycles = 0
        self.truncated = False
        # Design-specific counters (HtmDesign.stat_annotations); empty
        # for the four legacy designs, and serialized only when set so
        # legacy result payloads stay byte-identical.
        self.design_annotations = {}

    def _bind_metrics(self):
        """Bind the named registry metrics to attributes (idempotent)."""
        metrics = self.metrics
        self._compute_ops = metrics.counter("compute_ops")
        self._branch_ops = metrics.counter("branch_ops")
        self._tx_begins = metrics.counter("tx_begins")
        self._line_locks_acquired = metrics.counter("line_locks_acquired")
        self._first_retry_observations = metrics.counter(
            "first_retry_observations"
        )
        self._first_retry_immutable_small = metrics.counter(
            "first_retry_immutable_small"
        )
        self._abort_latency = metrics.histogram("abort_latency_cycles")
        self._retries_per_commit = metrics.histogram("retries_per_ar_commit")
        self._lock_hold = metrics.histogram("lock_hold_cycles")
        self._fallback_hold = metrics.histogram("fallback_hold_cycles")

    # -- registry-backed scalars ----------------------------------------------

    @property
    def compute_ops(self):
        """Non-memory ops executed (energy input)."""
        return self._compute_ops.value

    @property
    def branch_ops(self):
        """Branches retired inside ARs (energy input)."""
        return self._branch_ops.value

    @property
    def tx_begins(self):
        """Attempt begins across every mode (energy input)."""
        return self._tx_begins.value

    @property
    def line_locks_acquired(self):
        """Cacheline locks taken by CL-mode attempts (energy input)."""
        return self._line_locks_acquired.value

    @property
    def first_retry_observations(self):
        """Fig. 1: first retries observed."""
        return self._first_retry_observations.value

    @property
    def first_retry_immutable_small(self):
        """Fig. 1: first retries with a small, unchanged footprint."""
        return self._first_retry_immutable_small.value

    # -- event recording ------------------------------------------------------

    # The three busiest recorders below update their bound metrics with
    # inlined field bumps rather than Metric.inc()/Histogram.observe()
    # calls: they run once per attempt/commit/abort, and the call
    # overhead alone is measurable against the tracing-off perf gate.
    # The inlined bodies are exact copies of the method semantics.

    def record_begin(self, core):
        """A transaction (any mode) began an attempt."""
        self._tx_begins.value += 1

    def record_commit(self, core, mode, counting_retries, region_id):
        """An AR committed in ``mode`` after ``counting_retries`` counted retries."""
        self.cores[core].commits += 1
        self.commits_by_mode[mode] += 1
        self.per_region_commits[region_id] += 1
        histogram = self._retries_per_commit
        histogram.count += 1
        histogram.total += counting_retries
        if histogram.min is None or counting_retries < histogram.min:
            histogram.min = counting_retries
        if histogram.max is None or counting_retries > histogram.max:
            histogram.max = counting_retries
        bucket = counting_retries.bit_length()
        histogram.buckets[bucket] = histogram.buckets.get(bucket, 0) + 1
        if mode is ExecMode.FALLBACK:
            self.fallback_commit_retries[counting_retries] += 1
        else:
            self.commits_by_retries[counting_retries] += 1

    def record_abort(self, core, reason, region_id, latency=None):
        """An attempt aborted for ``reason`` (categorized per Fig. 11).

        ``latency`` is the attempt's begin-to-abort cycle count when the
        caller knows it (Explicit Fallback aborts happen *at* begin and
        pass None).
        """
        self.cores[core].aborts += 1
        self.aborts_by_reason[reason] += 1
        self.per_region_aborts[region_id] += 1
        if latency is not None:
            if latency < 0:
                latency = 0
            histogram = self._abort_latency
            histogram.count += 1
            histogram.total += latency
            if histogram.min is None or latency < histogram.min:
                histogram.min = latency
            if histogram.max is None or latency > histogram.max:
                histogram.max = latency
            bucket = latency.bit_length()
            histogram.buckets[bucket] = histogram.buckets.get(bucket, 0) + 1

    def record_access(self, level):
        """A memory access served at ``level`` (L1/L2/L3/MEM/C2C/UPG/LOCK)."""
        self.accesses_by_level[level] += 1

    def record_compute(self, ops=1):
        """Non-memory work (for the dynamic-energy model)."""
        self._compute_ops.value += ops

    def record_branch(self):
        """A branch retired inside an AR."""
        self._branch_ops.value += 1

    def record_lock_acquired(self, count=1):
        """Cacheline locks taken by a CL-mode attempt."""
        self._line_locks_acquired.value += count

    def record_lock_hold(self, cycles):
        """A CL-mode attempt released its locks ``cycles`` after the first."""
        self._lock_hold.observe(cycles)

    def record_fallback_hold(self, cycles):
        """A fallback execution held the global lock for ``cycles``."""
        self._fallback_hold.observe(cycles)

    def record_first_retry(self, immutable_and_small):
        """Fig. 1 observation for one first retry."""
        self._first_retry_observations.inc()
        if immutable_and_small:
            self._first_retry_immutable_small.inc()

    def add_busy(self, core, cycles, failed_discovery=False, lock_acquire=False):
        """Attribute executing cycles to a core (with phase tags)."""
        self.cores[core].busy_cycles += cycles
        if failed_discovery:
            self.cores[core].discovery_failed_cycles += cycles
        if lock_acquire:
            self.cores[core].lock_acquire_cycles += cycles

    def add_wait(self, core, cycles):
        """Attribute parked/blocked cycles to a core."""
        self.cores[core].wait_cycles += cycles

    # -- derived metrics --------------------------------------------------------

    @property
    def aborts_by_category(self):
        """Fig. 11 categories, derived on demand from the reason counts.

        ``categorize_abort`` is a pure function of the reason, so keeping
        a second enum-keyed counter updated per abort would be redundant
        work on the hot path; deriving at read time is lossless.
        """
        categories = Counter()
        for reason, count in self.aborts_by_reason.items():
            categories[categorize_abort(reason)] += count
        return categories

    @property
    def total_commits(self):
        """All commits across modes."""
        return sum(self.commits_by_mode.values())

    @property
    def total_aborts(self):
        """All aborts across reasons."""
        return sum(self.aborts_by_reason.values())

    def injected_abort_count(self):
        """Aborts recorded under the chaos layer's ``Injected`` category."""
        return self.aborts_by_category.get(AbortCategory.INJECTED, 0)

    def aborts_per_commit(self):
        """Fig. 9 metric."""
        commits = self.total_commits
        if commits == 0:
            return 0.0
        return self.total_aborts / commits

    def commit_mode_shares(self):
        """Fig. 12 metric: fraction of commits per execution mode."""
        commits = self.total_commits
        if commits == 0:
            return {}
        return {
            mode: count / commits for mode, count in self.commits_by_mode.items()
        }

    def abort_category_shares(self):
        """Fig. 11 metric: fraction of aborts per category."""
        aborts = self.total_aborts
        if aborts == 0:
            return {}
        return {
            category: count / aborts
            for category, count in self.aborts_by_category.items()
        }

    def retry_shares(self):
        """Fig. 13 metric over commits that needed at least one retry.

        Returns (first_retry_share, n_retry_share, fallback_share); all
        zero when nothing ever retried.
        """
        non_fallback_retried = sum(
            count for retries, count in self.commits_by_retries.items() if retries >= 1
        )
        fallback = sum(self.fallback_commit_retries.values())
        denominator = non_fallback_retried + fallback
        if denominator == 0:
            return (0.0, 0.0, 0.0)
        first = self.commits_by_retries.get(1, 0)
        n_retry = non_fallback_retried - first
        return (first / denominator, n_retry / denominator, fallback / denominator)

    def discovery_time_fraction(self):
        """Fig. 8 overlay: share of busy cycles spent in failed discovery."""
        busy = sum(core.busy_cycles for core in self.cores)
        if busy == 0:
            return 0.0
        failed = sum(core.discovery_failed_cycles for core in self.cores)
        return failed / busy

    def first_retry_immutable_ratio(self):
        """Fig. 1 metric."""
        if self.first_retry_observations == 0:
            return 0.0
        return self.first_retry_immutable_small / self.first_retry_observations

    # -- serialization ----------------------------------------------------------

    def to_dict(self):
        """The full measurement surface as a JSON-serializable dict.

        Enum-keyed counters are stored by enum ``value``; integer-keyed
        retry counters are stored with stringified keys (JSON objects
        only key on strings); tuple region ids become two-element lists.
        The registry rides along under ``"metrics"`` (scalar counters
        stay duplicated under their legacy keys so older readers keep
        working). :meth:`from_dict` inverts all of it losslessly.
        """
        data = {
            "num_cores": self.num_cores,
            "cores": [core.to_dict() for core in self.cores],
            "commits_by_mode": {
                mode.value: count for mode, count in self.commits_by_mode.items()
            },
            "commits_by_retries": {
                str(retries): count
                for retries, count in self.commits_by_retries.items()
            },
            "fallback_commit_retries": {
                str(retries): count
                for retries, count in self.fallback_commit_retries.items()
            },
            "aborts_by_reason": {
                reason.value: count
                for reason, count in self.aborts_by_reason.items()
            },
            "aborts_by_category": {
                category.value: count
                for category, count in self.aborts_by_category.items()
            },
            "per_region_commits": [
                [_region_key_to_list(region), count]
                for region, count in self.per_region_commits.items()
            ],
            "per_region_aborts": [
                [_region_key_to_list(region), count]
                for region, count in self.per_region_aborts.items()
            ],
            "accesses_by_level": dict(self.accesses_by_level),
            "compute_ops": self.compute_ops,
            "branch_ops": self.branch_ops,
            "tx_begins": self.tx_begins,
            "line_locks_acquired": self.line_locks_acquired,
            "first_retry_observations": self.first_retry_observations,
            "first_retry_immutable_small": self.first_retry_immutable_small,
            "metrics": self.metrics.to_dict(),
            "makespan_cycles": self.makespan_cycles,
            "truncated": self.truncated,
        }
        if self.design_annotations:
            data["design_annotations"] = dict(self.design_annotations)
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`MachineStats` from :meth:`to_dict` output."""
        stats = cls(data["num_cores"])
        stats.cores = [CoreStats.from_dict(core) for core in data["cores"]]
        stats.commits_by_mode = Counter(
            {ExecMode(mode): count
             for mode, count in data["commits_by_mode"].items()}
        )
        stats.commits_by_retries = Counter(
            {int(retries): count
             for retries, count in data["commits_by_retries"].items()}
        )
        stats.fallback_commit_retries = Counter(
            {int(retries): count
             for retries, count in data["fallback_commit_retries"].items()}
        )
        stats.aborts_by_reason = Counter(
            {AbortReason(reason): count
             for reason, count in data["aborts_by_reason"].items()}
        )
        # aborts_by_category is derived from aborts_by_reason (the stored
        # copy was generated by the same pure function, so dropping it is
        # lossless and keeps the roundtrip exact).
        stats.per_region_commits = Counter(
            {_region_key_from_list(region): count
             for region, count in data["per_region_commits"]}
        )
        stats.per_region_aborts = Counter(
            {_region_key_from_list(region): count
             for region, count in data["per_region_aborts"]}
        )
        stats.accesses_by_level = Counter(data["accesses_by_level"])
        metrics = data.get("metrics")
        if metrics is not None:
            stats.metrics = MetricRegistry.from_dict(metrics)
            stats._bind_metrics()
        # The legacy scalar keys are authoritative (and present in every
        # schema version); with a "metrics" section they agree anyway.
        stats._compute_ops.value = data["compute_ops"]
        stats._branch_ops.value = data["branch_ops"]
        stats._tx_begins.value = data["tx_begins"]
        stats._line_locks_acquired.value = data["line_locks_acquired"]
        stats._first_retry_observations.value = data["first_retry_observations"]
        stats._first_retry_immutable_small.value = (
            data["first_retry_immutable_small"]
        )
        stats.makespan_cycles = data["makespan_cycles"]
        stats.truncated = data["truncated"]
        stats.design_annotations = dict(data.get("design_annotations", {}))
        return stats

    def summary(self):
        """Human-readable one-line digest (used by examples)."""
        return (
            "cycles={} commits={} aborts={} aborts/commit={:.2f}".format(
                self.makespan_cycles,
                self.total_commits,
                self.total_aborts,
                self.aborts_per_commit(),
            )
        )
