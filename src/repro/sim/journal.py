"""Crash-safe sweep journaling: job folders with an append-only log.

The engine's in-memory :class:`~repro.sim.engine.SweepReport` dies with
the process; a ``kill -9`` mid-sweep used to lose every completed cell
that had not reached the cache (and, with ``--no-cache``, everything).
:class:`SweepJournal` gives a sweep the same contract the source paper
gives an atomic region — bounded rework, guaranteed forward progress —
by making every finished cell durable the moment it finishes:

``<job dir>/manifest.json``
    Written atomically (temp file + fsync + rename). Records the
    journal format version, the engine's result ``schema_version``,
    and a ``cells`` map from content-addressed cache key to a
    human-readable spec summary, following the job-folder/run-manifest
    convention of ErdosLab's experiment runner. Re-opening a folder
    validates both versions — replaying records that mean something
    else is worse than re-executing — and merges any new cells in, so
    one folder can journal a multi-call sweep (e.g. the cross-design
    matrix, one engine call per cell).

``<job dir>/journal.jsonl``
    Append-only outcome log: one JSON record per line, fsync'd before
    the engine moves on. ``{"key": K, "status": "done", "result": R}``
    for completed cells, ``{"key": K, "status": "failed", "failure":
    F}`` for quarantined ones. Records are keyed by cache key — not
    list position — so a resumed sweep may reorder, extend, or subset
    the spec list and still replay exactly the cells it shares.

Replay tolerates exactly the corruption a crash can cause: a torn tail
line (the process died mid-``write``) is detected, counted, and
truncated away so later appends start on a clean boundary; an interior
unparseable line (disk corruption, chaos injection) is skipped and
counted, costing one cell's re-execution rather than the resume. The
last record for a key wins, so re-executed cells simply supersede
their earlier entries.
"""

import json
import os

from repro.common.diskio import DiskIO
from repro.common.errors import JournalError, JournalSchemaError

#: Bump when the manifest/record format itself changes shape.
JOURNAL_VERSION = 1

MANIFEST_NAME = "manifest.json"
LOG_NAME = "journal.jsonl"

#: Recognised per-record outcomes.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


def spec_summary(spec):
    """The manifest's human-readable description of one cell.

    ``backend`` is journalled explicitly (not just folded into the
    config fingerprint) so :meth:`SweepJournal.ensure` can refuse to
    resume a sweep with a different event loop — without it, a resumed
    ``--backend`` mismatch would silently fingerprint every cell as new
    and re-run the whole sweep inside the old job folder.
    """
    return {
        "workload": spec.workload,
        "seed": spec.seed,
        "ops_per_thread": spec.ops_per_thread,
        "trace": spec.trace,
        "backend": spec.config.backend,
        "config": spec.config.fingerprint(),
    }


class SweepJournal:
    """One crash-safe job folder (manifest + append-only outcome log).

    The journal is single-writer: one engine process appends at a time
    (concurrent *cache* writers are handled by the cache's own lock;
    concurrent journal writers would interleave records, which is safe
    for replay but means two sweeps racing one folder — don't). All
    filesystem traffic goes through the injectable ``io`` seam so the
    chaos harness can tear and corrupt it.
    """

    def __init__(self, path, io=None):
        self.path = os.fspath(path)
        self.io = io if io is not None else DiskIO()
        self.manifest = None
        self._records = None  # key -> record dict, populated by replay()
        # Replay/recovery counters (what the resume proof reads).
        self.replayed_results = 0
        self.replayed_failures = 0
        self.dropped_tail = 0
        self.skipped_corrupt = 0
        self.recorded = 0

    @property
    def manifest_path(self):
        return os.path.join(self.path, MANIFEST_NAME)

    @property
    def log_path(self):
        return os.path.join(self.path, LOG_NAME)

    def exists(self):
        """True when the folder already holds a manifest (resumable)."""
        return os.path.exists(self.manifest_path)

    # -- manifest ------------------------------------------------------------

    def ensure(self, specs, schema_version):
        """Create the job folder, or validate and extend an existing one.

        ``schema_version`` is the engine's result schema
        (:data:`repro.sim.engine.SCHEMA_VERSION`), pinned into the
        manifest so a resume against incompatible result payloads
        raises :class:`~repro.common.errors.JournalSchemaError` instead
        of silently replaying them.
        """
        cells = {spec.cache_key(): spec_summary(spec) for spec in specs}
        if self.exists():
            manifest = self._load_manifest()
            if manifest.get("journal_version") != JOURNAL_VERSION:
                raise JournalSchemaError(
                    "job folder {} has journal_version {!r}; this build "
                    "writes {} — start a fresh job folder".format(
                        self.path, manifest.get("journal_version"),
                        JOURNAL_VERSION,
                    )
                )
            if manifest.get("schema_version") != schema_version:
                raise JournalSchemaError(
                    "job folder {} holds schema_version {!r} results; "
                    "this build produces {} — its records cannot be "
                    "replayed, start a fresh job folder".format(
                        self.path, manifest.get("schema_version"),
                        schema_version,
                    )
                )
            known = manifest.setdefault("cells", {})
            # Backend mixing guard: a resumed sweep must run the same
            # event loop it started with. Manifests predating the
            # backend field journalled reference-loop cells only.
            known_backends = {
                cell.get("backend", "reference") for cell in known.values()
            }
            incoming_backends = {
                cell.get("backend", "reference") for cell in cells.values()
            }
            mixed = incoming_backends - known_backends
            if known_backends and mixed:
                raise JournalSchemaError(
                    "job folder {} journals {}-backend cells; resuming "
                    "with backend {} would silently mix event loops — "
                    "pass the original --backend or start a fresh job "
                    "folder".format(
                        self.path,
                        "/".join(sorted(known_backends)),
                        "/".join(sorted(mixed)),
                    )
                )
            new = {key: cells[key] for key in cells if key not in known}
            if new:
                known.update(new)
                self._write_manifest(manifest)
            else:
                self.manifest = manifest
        else:
            self._write_manifest({
                "journal_version": JOURNAL_VERSION,
                "schema_version": schema_version,
                "cells": cells,
            })
        return self.manifest

    def _load_manifest(self):
        data = self.io.read_bytes(self.manifest_path)
        try:
            manifest = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise JournalError(
                "job folder {} has an unreadable manifest; it was "
                "written atomically, so this is disk corruption — "
                "start a fresh job folder".format(self.path)
            )
        if not isinstance(manifest, dict):
            raise JournalError(
                "job folder {} manifest is not an object".format(self.path)
            )
        return manifest

    def _write_manifest(self, manifest):
        os.makedirs(self.path, exist_ok=True)
        self.io.write_atomic(
            self.manifest_path,
            json.dumps(manifest, sort_keys=True, indent=1).encode("utf-8"),
        )
        self.manifest = manifest

    # -- replay --------------------------------------------------------------

    def replay(self):
        """key -> outcome record for every recoverable logged cell.

        Parses the log once, repairs a torn tail in place (truncates the
        partial bytes so subsequent appends start on a line boundary),
        and caches the result — later calls (and records appended
        through this instance) update the in-memory map directly.
        """
        if self._records is not None:
            return self._records
        records = {}
        data = self.io.read_bytes(self.log_path)
        body, sep, tail = data.rpartition(b"\n")
        keep_end = len(body) + len(sep)
        if sep:
            for line in body.split(b"\n"):
                record = self._parse_record(line)
                if record is None:
                    self.skipped_corrupt += 1
                else:
                    records[record["key"]] = record
        if tail:
            # No trailing newline: the final write was torn. The bytes
            # may still parse (only the terminator was lost) — keep the
            # record then; drop and truncate otherwise.
            record = self._parse_record(tail)
            if record is not None:
                records[record["key"]] = record
                self._repair_append_newline()
            else:
                self.dropped_tail += 1
                self._repair_truncate(keep_end)
        for record in records.values():
            if record["status"] == STATUS_DONE:
                self.replayed_results += 1
            else:
                self.replayed_failures += 1
        self._records = records
        return records

    @staticmethod
    def _parse_record(line):
        """The validated record on ``line``, or None if unusable."""
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(record, dict) or not isinstance(
            record.get("key"), str
        ):
            return None
        status = record.get("status")
        if status == STATUS_DONE and isinstance(record.get("result"), dict):
            return record
        if status == STATUS_FAILED and isinstance(record.get("failure"), dict):
            return record
        return None

    def _repair_truncate(self, keep_end):
        """Drop torn tail bytes so future appends land on a boundary."""
        try:
            with open(self.log_path, "rb+") as handle:
                handle.truncate(keep_end)
        except OSError:
            pass  # read-only media: replay still works, appends may not

    def _repair_append_newline(self):
        """Seal a record that lost only its terminator."""
        try:
            fd = os.open(self.log_path, os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, b"\n")
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            pass

    # -- recording -----------------------------------------------------------

    def record_result(self, key, result):
        """Durably log one completed cell's result dict."""
        self._append({"key": key, "status": STATUS_DONE, "result": result})

    def record_failure(self, key, failure):
        """Durably log one quarantined cell's failure dict."""
        self._append({"key": key, "status": STATUS_FAILED, "failure": failure})

    def _append(self, record):
        os.makedirs(self.path, exist_ok=True)
        self.io.append_line(
            self.log_path,
            json.dumps(record, sort_keys=True, separators=(",", ":")),
        )
        if self._records is not None:
            self._records[record["key"]] = record
        self.recorded += 1

    def counters(self):
        """Replay/recovery counters as one JSON-friendly dict."""
        return {
            "replayed_results": self.replayed_results,
            "replayed_failures": self.replayed_failures,
            "recorded": self.recorded,
            "dropped_tail": self.dropped_tail,
            "skipped_corrupt": self.skipped_corrupt,
        }


__all__ = [
    "JOURNAL_VERSION",
    "LOG_NAME",
    "MANIFEST_NAME",
    "SweepJournal",
    "spec_summary",
]
