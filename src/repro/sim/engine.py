"""Parallel, cached experiment engine.

Every simulated cell of the evaluation — one (workload, configuration,
seed) triple — is independent and fully deterministic, so the whole
19-benchmark × 4-configuration × 10-seed matrix (plus the per-
application retry-threshold sweep) is embarrassingly parallel and
perfectly memoizable. This module provides the fan-out-and-aggregate
machinery everything above it builds on:

- :class:`RunSpec` — one picklable, hashable cell description.
- :class:`DiskCache` — a content-addressed on-disk result store keyed
  by SHA-256 over (schema version, workload, ops_per_thread, seed,
  config fingerprint); re-runs and crashed sweeps resume for free.
  Production-hardened: size-capped LRU eviction, cross-process write
  locking, corrupt-entry quarantine, and graceful degradation to
  cache-off on a full disk.
- Crash-safe sweeps — pass ``journal=`` (a
  :class:`~repro.sim.journal.SweepJournal` job folder) to the run
  entry points and every finished cell is durably logged; a SIGKILL'd
  sweep resumed with the same folder replays completed cells with
  exactly-once execution semantics.
- :class:`ExperimentEngine` — expands specs, serves what it can from
  the cache, fans the misses out over a ``ProcessPoolExecutor``
  (``jobs=1`` degenerates to a strictly serial in-process loop so
  determinism tests can compare parallel vs. serial output
  bit-for-bit), and streams :class:`ProgressEvent` updates to a
  callback.

Results cross the process boundary (and the cache) as the
``RunResult.to_dict()`` JSON form; the engine reconstructs
:class:`~repro.sim.runner.RunResult` objects on the way out. The
inline ``jobs=1`` path round-trips through the same representation, so
serial, parallel, and cached runs are indistinguishable downstream.
"""

import collections
import concurrent.futures
import contextlib
import cProfile
import dataclasses
import errno
import functools
import hashlib
import json
import os
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.common.diskio import DiskIO
from repro.common.errors import ExperimentCellError
from repro.common.retry import RetryPolicy
from repro.common.serialize import Serializable
from repro.sim.journal import SweepJournal
from repro.obs.trace import EventTrace
from repro.sim.config import SimConfig
from repro.sim.runner import RunResult, _simulate_one
from repro.workloads import make_workload, workload_cache_token

#: Bump when the cached result format (or anything influencing a run's
#: output) changes; every key embeds it, so old entries simply miss.
#: v2: RunResult dicts grew a "trace" slot and MachineStats a "metrics"
#: registry section.
#: v3: SimConfig serializes the canonical ``design`` name instead of
#: the powertm/clear booleans (from_dict migrates v2 payloads).
#: v4: SimConfig.oracle is a checker-mode string ("off"/"shadow"/
#: "online"/"cross-check") instead of a boolean (from_dict migrates
#: v3 payloads).
SCHEMA_VERSION = 4

DEFAULT_CACHE_DIR = ".exp_cache"


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One independent simulation cell: (workload, config, seed).

    ``ops_per_thread`` scales the named workload; ``None`` keeps the
    workload's own default. ``trace`` asks the worker to record the
    run's full event trace into the result (simulated behaviour is
    identical either way, but traced and untraced results are cached
    under different keys because their payloads differ). The spec is
    hashable and picklable, so it can cross process boundaries and key
    dictionaries.
    """

    workload: str
    config: SimConfig
    seed: int
    ops_per_thread: int = None
    trace: bool = False

    def cache_key(self):
        """Content address of this cell's result.

        SHA-256 over canonical JSON of every input that determines the
        output, including :data:`SCHEMA_VERSION` so format bumps
        invalidate the whole cache without touching files.
        """
        key_input = {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "ops_per_thread": self.ops_per_thread,
            "seed": self.seed,
            "config": self.config.fingerprint(),
            "trace": self.trace,
        }
        # Namespaced workloads (gen:/trace:) contribute their content
        # token so regenerated specs or rewritten trace folders cannot
        # alias a cached result; built-in names add nothing, keeping
        # their keys byte-identical to every earlier release.
        token = workload_cache_token(self.workload)
        if token is not None:
            key_input["workload_token"] = token
        payload = json.dumps(
            key_input,
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute_spec(spec):
    """Simulate one spec and return the result in dict (cache) form.

    Module-level so ``ProcessPoolExecutor`` can pickle it; also the
    ``jobs=1`` inline path, so every run takes the identical code path.
    """
    kwargs = {}
    if spec.ops_per_thread is not None:
        kwargs["ops_per_thread"] = spec.ops_per_thread
    result = _simulate_one(
        lambda: make_workload(spec.workload, **kwargs),
        spec.config,
        seed=spec.seed,
        trace=EventTrace() if spec.trace else None,
    )
    return result.to_dict()


def execute_spec_profiled(spec, profile_dir):
    """:func:`execute_spec` under cProfile, dumping a per-cell ``.prof``.

    The profile file name encodes the workload, config letter, seed,
    and a cache-key prefix, so a sweep's profiles are self-describing
    and collision-free. Module-level (wrapped by ``functools.partial``)
    so the parallel path can pickle it.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = execute_spec(spec)
    finally:
        profile.disable()
    os.makedirs(profile_dir, exist_ok=True)
    name = "{}-{}-s{}-{}.prof".format(
        spec.workload, spec.config.config_letter, spec.seed,
        spec.cache_key()[:8],
    )
    profile.dump_stats(os.path.join(profile_dir, name))
    return result


@dataclasses.dataclass
class CacheStats:
    """What the cache did this process: served, stored, shed, survived."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    corrupt_quarantined: int = 0
    enospc_degraded: bool = False

    def to_dict(self):
        return dataclasses.asdict(self)


class DiskCache:
    """Content-addressed JSON store under one root directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out keeps any
    single directory small). Writes are atomic (temp file + fsync +
    rename, through the injectable :class:`~repro.common.diskio.DiskIO`
    seam), so a crashed run never leaves a truncated entry. Production
    hardening beyond the original store:

    - **Size bound** — with ``max_bytes`` set, stores evict the
      least-recently-used entries (mtime order; loads touch mtime)
      until the cache fits. Entries read or written since the last
      :meth:`begin_sweep` are pinned and never evicted, so a sweep can
      trust every key it has already observed.
    - **Concurrent writers** — stores and evictions run under an
      advisory ``flock`` on ``<root>/.lock``, so parallel sweeps
      sharing one cache (the service's dedupe path) cannot interleave
      an eviction scan with each other's renames.
    - **Corruption accounting** — an unparseable entry is moved to
      ``<root>/quarantine/`` and counted (``stats.corrupt_quarantined``)
      instead of silently shadowing a bug; the key reads as a miss and
      the next store rewrites it.
    - **Graceful ENOSPC degradation** — a full disk flips the cache to
      disabled (every load a miss, every store a no-op) so the sweep
      finishes uncached instead of crashing.
    """

    QUARANTINE_DIR = "quarantine"
    LOCK_NAME = ".lock"

    def __init__(self, root, max_bytes=None, io=None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive or None")
        self.root = root
        self.max_bytes = max_bytes
        self.io = io if io is not None else DiskIO()
        self.stats = CacheStats()
        self.disabled = False
        self._pinned = set()

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def begin_sweep(self):
        """Start a fresh pin generation: prior pins become evictable."""
        self._pinned.clear()

    @contextlib.contextmanager
    def _locked(self):
        """Advisory cross-process lock over mutating operations."""
        if fcntl is None:
            yield
            return
        os.makedirs(self.root, exist_ok=True)
        fd = os.open(os.path.join(self.root, self.LOCK_NAME),
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing releases the flock

    def load(self, key):
        """The stored dict for ``key``, or None on miss/corruption.

        A missing file or a stale ``schema_version`` is a plain miss.
        An *unparseable or malformed* entry is quarantined (moved to
        ``quarantine/``, counted) — the atomic write protocol means it
        cannot be a torn write of ours, so it is evidence worth keeping.
        """
        if self.disabled:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            self.stats.misses += 1
            return None
        except ValueError:
            self._quarantine(key)
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            self._quarantine(key)
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        self._pinned.add(key)
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return payload["result"]

    def _quarantine(self, key):
        """Preserve a corrupt entry out of band; the key reads as a miss."""
        self.stats.corrupt_quarantined += 1
        quarantine = os.path.join(self.root, self.QUARANTINE_DIR)
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(self._path(key),
                       os.path.join(quarantine, key + ".json"))
        except OSError:
            pass  # racing writer already replaced/removed it

    def store(self, key, result, spec=None):
        """Atomically persist ``result`` (a RunResult dict) under ``key``.

        No-op once the cache has degraded to off (ENOSPC). A failed
        serialization or write never leaves a temp file behind (the
        DiskIO seam cleans up), so the cache directory cannot fill with
        ``*.tmp`` litter from crashed or erroring sweeps.
        """
        if self.disabled:
            return
        payload = {"schema_version": SCHEMA_VERSION, "result": result}
        if spec is not None:
            payload["spec"] = {
                "workload": spec.workload,
                "ops_per_thread": spec.ops_per_thread,
                "seed": spec.seed,
                "config": spec.config.to_dict(),
            }
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        try:
            with self._locked():
                self.io.write_atomic(self._path(key), data)
                self._pinned.add(key)
                self.stats.stores += 1
                if self.max_bytes is not None:
                    self._evict()
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                self.disabled = True
                self.stats.enospc_degraded = True
                return
            raise

    def _entries(self):
        """Every cache entry as ``(mtime, size, key, path)``."""
        entries = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return entries
        for shard in shards:
            if len(shard) != 2:
                continue  # quarantine/, .lock, stray files
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, name[:-5], path))
        return entries

    def _evict(self):
        """Drop least-recently-used unpinned entries until under budget.

        Called with the lock held. Pinned keys (read or written this
        sweep) are never candidates, so the cache may temporarily
        exceed ``max_bytes`` when the live working set alone is larger
        than the bound — by design: correctness of the running sweep
        beats the size target.
        """
        entries = self._entries()
        total = sum(size for _, size, _, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, key, path in sorted(entries):
            if key in self._pinned:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.stats.evictions += 1
            self.stats.evicted_bytes += size
            if total <= self.max_bytes:
                return


class _FailureLog(list):
    """A failure list that durably journals each quarantine as it lands.

    Quarantines are appended from several recovery paths (serial
    errors, timeouts, crash loops); hooking ``append`` records every
    one the moment it is decided, so a SIGKILL after a quarantine but
    before sweep end cannot forget it. Replayed failures bypass the
    hook (``list.append``) — they are already on disk.
    """

    def __init__(self, on_failure=None):
        super().__init__()
        self._on_failure = on_failure

    def append(self, failure):
        super().append(failure)
        if self._on_failure is not None:
            self._on_failure(failure)


@dataclasses.dataclass
class ProgressEvent:
    """One structured progress update, emitted after every finished cell."""

    done: int
    total: int
    cache_hits: int
    elapsed_seconds: float
    spec: RunSpec
    from_cache: bool

    @property
    def cells_per_second(self):
        """Completion throughput so far (cache hits included)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.done / self.elapsed_seconds

    @property
    def eta_seconds(self):
        """Naive remaining-time estimate from current throughput."""
        rate = self.cells_per_second
        if rate <= 0.0:
            return 0.0
        return (self.total - self.done) / rate


@dataclasses.dataclass
class CellFailure(Serializable):
    """One cell the engine gave up on, with why and after how many tries.

    ``kind`` is one of ``"timeout"`` (the cell exceeded ``cell_timeout``
    on every allowed attempt), ``"worker-crash"`` (its worker process
    died repeatedly), or ``"error"`` (the simulation raised — these are
    deterministic, so the cell is quarantined on the first attempt).
    ``exception`` carries the original error object for ``"error"``
    failures (not serialized); ``diagnostic`` the structured dump a
    stall error shipped with it — including the machine's trace tail
    when the cell ran with ``spec.trace`` — so a quarantined cell can be
    forensically examined from the failure report alone.
    """

    spec: RunSpec
    kind: str
    attempts: int
    message: str
    exception: Exception = None
    diagnostic: dict = None

    def to_dict(self):
        """JSON-serializable form (for failure reports in script output)."""
        return {
            "workload": self.spec.workload,
            "ops_per_thread": self.spec.ops_per_thread,
            "seed": self.spec.seed,
            "config": self.spec.config.fingerprint(),
            "spec_config": self.spec.config.to_dict(),
            "trace": self.spec.trace,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "diagnostic": self.diagnostic,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a failure (minus the live exception object)."""
        spec = RunSpec(
            workload=data["workload"],
            config=SimConfig.from_dict(data["spec_config"]),
            seed=data["seed"],
            ops_per_thread=data["ops_per_thread"],
            trace=data.get("trace", False),
        )
        return cls(
            spec=spec,
            kind=data["kind"],
            attempts=data["attempts"],
            message=data["message"],
            diagnostic=data.get("diagnostic"),
        )


@dataclasses.dataclass
class SweepReport(Serializable):
    """Outcome of a fault-tolerant sweep: a possibly partial matrix.

    ``results`` aligns with the input specs; failed cells hold ``None``.
    ``journal`` (journaled sweeps only) carries the exactly-once proof:
    how many cells were replayed from the job folder versus freshly
    executed, plus the recovery counters (torn tail dropped, corrupt
    records skipped).
    """

    results: list
    failures: list
    total: int
    completed: int
    cache_hits: int
    journal: dict = None

    @property
    def ok(self):
        """True when every cell completed."""
        return not self.failures

    def failure_report(self):
        """JSON-serializable digest of what failed and why."""
        return {
            "total": self.total,
            "completed": self.completed,
            "failed": len(self.failures),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def to_dict(self):
        """The whole (possibly partial) matrix as a JSON dict.

        The ``journal`` key only appears for journaled sweeps, so an
        unjournaled report serializes byte-identically to one from a
        build without the durability layer.
        """
        data = {
            "results": [
                result.to_dict() if result is not None else None
                for result in self.results
            ],
            "failures": [failure.to_dict() for failure in self.failures],
            "total": self.total,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
        }
        if self.journal is not None:
            data["journal"] = self.journal
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            results=[
                RunResult.from_dict(result) if result is not None else None
                for result in data["results"]
            ],
            failures=[
                CellFailure.from_dict(failure) for failure in data["failures"]
            ],
            total=data["total"],
            completed=data["completed"],
            cache_hits=data["cache_hits"],
            journal=data.get("journal"),
        )


class ExperimentEngine:
    """Runs batches of :class:`RunSpec` cells, parallel and memoized.

    ``jobs``         — worker processes; ``None`` means
                       ``os.cpu_count()`` and ``1`` is a strictly serial
                       in-process loop.
    ``cache_dir``    — root of the on-disk cache; ``None`` disables
                       caching entirely.
    ``progress``     — optional callback receiving a
                       :class:`ProgressEvent` after every finished cell
                       (hit or simulated).
    ``cell_timeout`` — wall-clock seconds one cell may run before its
                       worker pool is killed and the cell retried
                       (parallel mode only; ``None`` disables).
    ``max_cell_retries``      — extra attempts a timed-out or
                       crash-victim cell gets before quarantine.
    ``retry_backoff_seconds`` — base sleep after a pool kill/crash
                       (legacy spelling; builds the default
                       ``retry_policy``).
    ``retry_policy`` — a :class:`~repro.common.retry.RetryPolicy`
                       governing pool-restart backoff: jittered
                       exponential delays plus an optional total
                       retry-time budget; once the budget is exhausted
                       further retry candidates are quarantined so the
                       sweep always terminates.
    ``cache_max_bytes`` — LRU size bound for the on-disk cache
                       (``None`` = unbounded); ``cache_dir`` may also
                       be a prebuilt :class:`DiskCache` for full
                       control (size bound, custom IO seam).
    ``execute``      — override the per-cell executor (module-level
                       picklable callable; the chaos harness's seam).

    Durability: pass ``journal=`` (a job-folder path or
    :class:`~repro.sim.journal.SweepJournal`) to the run entry points
    and every finished cell is durably logged the moment it completes.
    A killed sweep resumed with the same journal replays completed
    cells and remembered quarantines instead of re-executing them, and
    a torn tail record (the crash hit mid-write) is detected and
    dropped rather than poisoning the resume.

    Fault tolerance: a hung cell trips the per-cell deadline, the pool
    is torn down (``ProcessPoolExecutor`` cannot cancel a *running*
    task), innocent in-flight cells are requeued uncharged, and the
    offender is retried up to ``max_cell_retries`` times before being
    quarantined. A crashed worker (``BrokenProcessPool``) similarly
    charges every in-flight cell one attempt — the poisonous one keeps
    crashing until quarantined, the rest recover. Deterministic
    simulation errors quarantine immediately: a seeded sim raises
    identically on every retry. :meth:`run_specs` stays strict (any
    failure raises); :meth:`run_specs_report` degrades gracefully to a
    partial matrix plus a structured failure report.

    A ``KeyboardInterrupt`` mid-sweep cancels whatever has not started,
    persists every already-finished cell to the cache, and re-raises —
    an interrupted sweep resumes from where it stopped.
    """

    #: Cap on the exponential pool-restart backoff.
    MAX_BACKOFF_SECONDS = 10.0

    def __init__(self, jobs=None, cache_dir=DEFAULT_CACHE_DIR, progress=None,
                 cell_timeout=None, max_cell_retries=2,
                 retry_backoff_seconds=0.5, profile_dir=None,
                 retry_policy=None, cache_max_bytes=None, execute=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, not {}".format(self.jobs))
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive or None")
        if max_cell_retries < 0:
            raise ValueError("max_cell_retries must be >= 0")
        if isinstance(cache_dir, DiskCache):
            self.cache = cache_dir
        else:
            self.cache = (
                DiskCache(cache_dir, max_bytes=cache_max_bytes)
                if cache_dir else None
            )
        self.progress = progress
        self.cell_timeout = cell_timeout
        self.max_cell_retries = max_cell_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.retry_policy = retry_policy if retry_policy is not None else (
            RetryPolicy(base_seconds=retry_backoff_seconds,
                        max_seconds=self.MAX_BACKOFF_SECONDS)
        )
        self.profile_dir = profile_dir
        # Cells served from cache are never profiled — only actual
        # simulation work produces a .prof file.
        if execute is not None:
            self._execute = execute
        elif profile_dir is None:
            self._execute = execute_spec
        else:
            self._execute = functools.partial(
                execute_spec_profiled, profile_dir=profile_dir
            )

    def run_specs(self, specs, *, journal=None):
        """Simulate (or recall) every spec; results in spec order.

        Strict mode: the first failed cell raises — the original
        simulation error when there is one, otherwise an
        :class:`~repro.common.errors.ExperimentCellError` (timeouts,
        repeated worker crashes, replayed quarantines).
        """
        report = self._run(list(specs), journal=journal)
        if report.failures:
            failure = report.failures[0]
            if failure.exception is not None:
                raise failure.exception
            raise ExperimentCellError(
                "cell {} ({}) failed after {} attempt(s): {}".format(
                    failure.spec.workload, failure.kind, failure.attempts,
                    failure.message,
                ),
                failure=failure,
            )
        return report.results

    def run_specs_report(self, specs, *, journal=None):
        """Fault-tolerant sweep: a :class:`SweepReport`, never raising
        for individual cell failures (results carry ``None`` holes).

        With ``journal`` (a job-folder path or
        :class:`~repro.sim.journal.SweepJournal`) the sweep is
        crash-safe: completed cells and quarantines are durably logged
        as they happen, and a resumed run replays them instead of
        re-executing (``report.journal`` carries the proof counters).
        """
        return self._run(list(specs), journal=journal)

    def run_spec(self, spec):
        """Convenience single-cell entry point."""
        return self.run_specs([spec])[0]

    def map_cells(self, cells, execute):
        """Fan arbitrary picklable cells through the pool machinery.

        The generalized fan-out path (used by :mod:`repro.verify`
        schedule exploration): ``execute`` is a module-level function
        mapping one cell to a JSON-serializable dict, and ``cells`` are
        picklable objects exposing ``workload`` / ``config`` / ``seed``
        / ``ops_per_thread`` attributes (what progress events and
        failure reports read). Same timeout/crash/retry fault tolerance
        as :meth:`run_specs`, but no disk cache and no RunResult
        decoding — raw result dicts in cell order. Strict: the first
        failed cell raises.
        """
        report = self._run(
            list(cells), execute=execute, decode=False, use_cache=False
        )
        if report.failures:
            failure = report.failures[0]
            if failure.exception is not None:
                raise failure.exception
            raise ExperimentCellError(
                "cell {} ({}) failed after {} attempt(s): {}".format(
                    failure.spec.workload, failure.kind, failure.attempts,
                    failure.message,
                ),
                failure=failure,
            )
        return report.results

    # -- internals ----------------------------------------------------------

    def _run(self, specs, *, execute=None, decode=True, use_cache=True,
             journal=None):
        started = time.monotonic()
        total = len(specs)
        progress_state = {"done": 0, "cache_hits": 0, "replayed": 0,
                          "executed": 0}
        result_dicts = [None] * total
        if execute is None:
            execute = self._execute
        use_cache = use_cache and self.cache is not None
        if isinstance(journal, (str, os.PathLike)):
            journal = SweepJournal(journal)
        keys = None
        if use_cache or journal is not None:
            keys = [spec.cache_key() for spec in specs]
        if journal is not None:
            journal.ensure(specs, SCHEMA_VERSION)
        if use_cache:
            self.cache.begin_sweep()
        self.retry_policy.begin()

        def emit(index, from_cache):
            if self.progress is None:
                return
            self.progress(ProgressEvent(
                done=progress_state["done"],
                total=total,
                cache_hits=progress_state["cache_hits"],
                elapsed_seconds=time.monotonic() - started,
                spec=specs[index],
                from_cache=from_cache,
            ))

        def record(index, result, from_cache=False, replayed=False):
            result_dicts[index] = result
            if not from_cache and use_cache:
                self.cache.store(keys[index], result, specs[index])
            if journal is not None and not replayed:
                # Durable the moment it finishes: cache hits included,
                # so the journal stays self-contained even if the cache
                # is later evicted or the resume runs with --no-cache.
                journal.record_result(keys[index], result)
            progress_state["done"] += 1
            if from_cache:
                progress_state["cache_hits"] += 1
            elif replayed:
                progress_state["replayed"] += 1
            else:
                progress_state["executed"] += 1
            emit(index, from_cache or replayed)

        failures = _FailureLog(
            None if journal is None
            else (lambda failure: journal.record_failure(
                failure.spec.cache_key(), failure.to_dict()))
        )
        replayed_records = journal.replay() if journal is not None else {}
        misses = []
        for index in range(total):
            if journal is not None:
                record_entry = replayed_records.get(keys[index])
                if record_entry is not None:
                    if record_entry["status"] == "done":
                        record(index, record_entry["result"], replayed=True)
                    else:
                        # A remembered quarantine: deterministic retries
                        # already failed; re-append without re-logging.
                        list.append(failures, CellFailure.from_dict(
                            record_entry["failure"]
                        ))
                    continue
            if use_cache:
                cached = self.cache.load(keys[index])
                if cached is not None:
                    record(index, cached, from_cache=True)
                    continue
            misses.append(index)

        if misses:
            if self.jobs == 1:
                self._run_serial(specs, misses, record, execute, failures)
            else:
                self._run_parallel(specs, misses, record, execute, failures)

        if decode:
            results = [
                RunResult.from_dict(result) if result is not None else None
                for result in result_dicts
            ]
        else:
            results = result_dicts
        journal_info = None
        if journal is not None:
            journal_info = dict(journal.counters())
            journal_info.update(
                job_dir=journal.path,
                replayed=progress_state["replayed"],
                executed=progress_state["executed"],
            )
        return SweepReport(
            results=results,
            failures=list(failures),
            total=total,
            completed=progress_state["done"],
            cache_hits=progress_state["cache_hits"],
            journal=journal_info,
        )

    def _run_serial(self, specs, misses, record, execute, failures):
        """In-process loop (``jobs=1``): deterministic, no timeouts.

        Each finished cell is persisted before the next starts, so a
        ``KeyboardInterrupt`` (or SIGKILL, with a journal) loses at
        most the in-flight cell.
        """
        for index in misses:
            try:
                result = execute(specs[index])
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                failures.append(CellFailure(
                    spec=specs[index], kind="error", attempts=1,
                    message="{}: {}".format(type(exc).__name__, exc),
                    exception=exc,
                    diagnostic=getattr(exc, "diagnostic", None),
                ))
                continue
            record(index, result)
        return failures

    def _run_parallel(self, specs, misses, record, execute, failures):
        """Bounded-submission pool loop with deadlines and recovery.

        At most ``workers`` cells are in flight at once, so every
        submitted cell is actually *running* and its wall-clock deadline
        is meaningful (an unbounded submit queue would start the clock
        while cells sit unscheduled).
        """
        workers = min(self.jobs, len(misses))
        pending = collections.deque(misses)
        attempts = collections.Counter()
        pool = concurrent.futures.ProcessPoolExecutor(workers)
        inflight = {}  # future -> (spec index, deadline or None)
        pool_restarts = 0
        # Cells requeued after a worker crash. A crash poisons every
        # future sharing the pool, so the culprit is unknowable; retry
        # the involved cells one at a time so an innocent cell completes
        # instead of being quarantined as collateral damage.
        suspects = set()
        try:
            while pending or inflight:
                cap = 1 if suspects else workers
                while pending and len(inflight) < cap:
                    index = pending.popleft()
                    attempts[index] += 1
                    future = pool.submit(execute, specs[index])
                    deadline = None
                    if self.cell_timeout is not None:
                        deadline = time.monotonic() + self.cell_timeout
                    inflight[future] = (index, deadline)
                wait_timeout = None
                if self.cell_timeout is not None:
                    nearest = min(d for _, d in inflight.values())
                    wait_timeout = max(0.0, nearest - time.monotonic())
                done, _ = concurrent.futures.wait(
                    inflight, timeout=wait_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if not done:
                    # Deadline expired with nothing finished: at least
                    # one cell is hung. Kill the pool (a running task
                    # cannot be cancelled), quarantine or requeue the
                    # expired cells, requeue the innocent ones uncharged.
                    now = time.monotonic()
                    self._kill_pool(pool)
                    for future, (index, deadline) in inflight.items():
                        if deadline is not None and deadline <= now:
                            if not self._requeue_or_quarantine(
                                specs, index, attempts, pending, failures,
                                kind="timeout",
                                message="exceeded cell_timeout={}s".format(
                                    self.cell_timeout
                                ),
                            ):
                                suspects.discard(index)
                        else:
                            attempts[index] -= 1  # innocent victim
                            pending.appendleft(index)
                    inflight = {}
                    pool_restarts += 1
                    self._backoff(pool_restarts)
                    pool = concurrent.futures.ProcessPoolExecutor(workers)
                    continue
                broken = False
                for future in done:
                    index, _ = inflight.pop(future)
                    try:
                        result = future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        broken = True
                        if self._requeue_or_quarantine(
                            specs, index, attempts, pending, failures,
                            kind="worker-crash",
                            message="worker process died",
                        ):
                            suspects.add(index)
                        else:
                            suspects.discard(index)
                        continue
                    except Exception as exc:
                        # A real simulation error is deterministic for a
                        # seeded cell: retrying cannot help.
                        failures.append(CellFailure(
                            spec=specs[index], kind="error",
                            attempts=attempts[index],
                            message="{}: {}".format(type(exc).__name__, exc),
                            exception=exc,
                            diagnostic=getattr(exc, "diagnostic", None),
                        ))
                        continue
                    record(index, result)
                    suspects.discard(index)
                if broken:
                    # The whole pool is poisoned: every remaining
                    # in-flight future will raise BrokenProcessPool too.
                    for future, (index, _) in inflight.items():
                        if self._requeue_or_quarantine(
                            specs, index, attempts, pending, failures,
                            kind="worker-crash",
                            message="worker process died",
                        ):
                            suspects.add(index)
                        else:
                            suspects.discard(index)
                    inflight = {}
                    self._kill_pool(pool)
                    pool_restarts += 1
                    self._backoff(pool_restarts)
                    pool = concurrent.futures.ProcessPoolExecutor(workers)
            pool.shutdown(wait=True)
        except KeyboardInterrupt:
            # Persist whatever already finished, drop the rest, and let
            # the interrupt propagate: the next run resumes from cache.
            for future, (index, _) in inflight.items():
                if future.done() and not future.cancelled():
                    try:
                        record(index, future.result())
                    except Exception:
                        pass
            self._kill_pool(pool)
            raise
        except BaseException:
            self._kill_pool(pool)
            raise
        return failures

    def _requeue_or_quarantine(self, specs, index, attempts, pending,
                               failures, kind, message):
        """Requeue ``index`` for another attempt, or quarantine it.

        Returns True when the cell was requeued, False when it was
        quarantined into ``failures``. A cell is quarantined either
        when its per-cell attempts are spent or when the engine-wide
        retry budget (``retry_policy.budget_seconds``) has run out —
        the substrate's analogue of the paper's bounded speculation:
        retries are strictly bounded, then the fallback (a partial
        matrix plus a structured report) always completes.
        """
        if self.retry_policy.exhausted():
            failures.append(CellFailure(
                spec=specs[index], kind=kind, attempts=attempts[index],
                message=message + " (retry budget exhausted)",
            ))
            return False
        if attempts[index] > self.max_cell_retries:
            failures.append(CellFailure(
                spec=specs[index], kind=kind, attempts=attempts[index],
                message=message,
            ))
            return False
        pending.append(index)
        return True

    def _backoff(self, restarts):
        """Pause before the next pool restart, per the retry policy."""
        self.retry_policy.pause(restarts)

    @staticmethod
    def _kill_pool(pool):
        """Tear a pool down *now*, hung workers included.

        ``shutdown(cancel_futures=True)`` only cancels queued tasks; a
        wedged worker must be terminated directly or shutdown would
        block on it forever.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)


def run_specs(specs, *, jobs=None, cache_dir=DEFAULT_CACHE_DIR, progress=None,
              cell_timeout=None, max_cell_retries=2,
              retry_backoff_seconds=0.5, retry_policy=None, journal=None):
    """One-shot functional entry point over a throwaway engine."""
    engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir,
                              progress=progress, cell_timeout=cell_timeout,
                              max_cell_retries=max_cell_retries,
                              retry_backoff_seconds=retry_backoff_seconds,
                              retry_policy=retry_policy)
    return engine.run_specs(specs, journal=journal)
