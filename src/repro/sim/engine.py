"""Parallel, cached experiment engine.

Every simulated cell of the evaluation — one (workload, configuration,
seed) triple — is independent and fully deterministic, so the whole
19-benchmark × 4-configuration × 10-seed matrix (plus the per-
application retry-threshold sweep) is embarrassingly parallel and
perfectly memoizable. This module provides the fan-out-and-aggregate
machinery everything above it builds on:

- :class:`RunSpec` — one picklable, hashable cell description.
- :class:`DiskCache` — a content-addressed on-disk result store keyed
  by SHA-256 over (schema version, workload, ops_per_thread, seed,
  config fingerprint); re-runs and crashed sweeps resume for free.
- :class:`ExperimentEngine` — expands specs, serves what it can from
  the cache, fans the misses out over a ``ProcessPoolExecutor``
  (``jobs=1`` degenerates to a strictly serial in-process loop so
  determinism tests can compare parallel vs. serial output
  bit-for-bit), and streams :class:`ProgressEvent` updates to a
  callback.

Results cross the process boundary (and the cache) as the
``RunResult.to_dict()`` JSON form; the engine reconstructs
:class:`~repro.sim.runner.RunResult` objects on the way out. The
inline ``jobs=1`` path round-trips through the same representation, so
serial, parallel, and cached runs are indistinguishable downstream.
"""

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import tempfile
import time

from repro.sim.config import SimConfig
from repro.sim.runner import RunResult, run_workload
from repro.workloads import make_workload

#: Bump when the cached result format (or anything influencing a run's
#: output) changes; every key embeds it, so old entries simply miss.
SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".exp_cache"


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One independent simulation cell: (workload, config, seed).

    ``ops_per_thread`` scales the named workload; ``None`` keeps the
    workload's own default. The spec is hashable and picklable, so it
    can cross process boundaries and key dictionaries.
    """

    workload: str
    config: SimConfig
    seed: int
    ops_per_thread: int = None

    def cache_key(self):
        """Content address of this cell's result.

        SHA-256 over canonical JSON of every input that determines the
        output, including :data:`SCHEMA_VERSION` so format bumps
        invalidate the whole cache without touching files.
        """
        payload = json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "workload": self.workload,
                "ops_per_thread": self.ops_per_thread,
                "seed": self.seed,
                "config": self.config.fingerprint(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute_spec(spec):
    """Simulate one spec and return the result in dict (cache) form.

    Module-level so ``ProcessPoolExecutor`` can pickle it; also the
    ``jobs=1`` inline path, so every run takes the identical code path.
    """
    kwargs = {}
    if spec.ops_per_thread is not None:
        kwargs["ops_per_thread"] = spec.ops_per_thread
    result = run_workload(
        lambda: make_workload(spec.workload, **kwargs),
        spec.config,
        seed=spec.seed,
    )
    return result.to_dict()


class DiskCache:
    """Content-addressed JSON store under one root directory.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out keeps any
    single directory small). Writes are atomic (temp file + rename), so
    a crashed run never leaves a truncated entry; corrupt or unreadable
    entries read as misses and are overwritten on the next store.
    """

    def __init__(self, root):
        self.root = root

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def load(self, key):
        """The stored dict for ``key``, or None on miss/corruption."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "result" not in payload:
            return None
        return payload["result"]

    def store(self, key, result, spec=None):
        """Atomically persist ``result`` (a RunResult dict) under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"schema_version": SCHEMA_VERSION, "result": result}
        if spec is not None:
            payload["spec"] = {
                "workload": spec.workload,
                "ops_per_thread": spec.ops_per_thread,
                "seed": spec.seed,
                "config": spec.config.to_dict(),
            }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=os.path.dirname(path), suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


@dataclasses.dataclass
class ProgressEvent:
    """One structured progress update, emitted after every finished cell."""

    done: int
    total: int
    cache_hits: int
    elapsed_seconds: float
    spec: RunSpec
    from_cache: bool

    @property
    def cells_per_second(self):
        """Completion throughput so far (cache hits included)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.done / self.elapsed_seconds

    @property
    def eta_seconds(self):
        """Naive remaining-time estimate from current throughput."""
        rate = self.cells_per_second
        if rate <= 0.0:
            return 0.0
        return (self.total - self.done) / rate


class ExperimentEngine:
    """Runs batches of :class:`RunSpec` cells, parallel and memoized.

    ``jobs``      — worker processes; ``None`` means ``os.cpu_count()``
                    and ``1`` is a strictly serial in-process loop.
    ``cache_dir`` — root of the on-disk cache; ``None`` disables
                    caching entirely.
    ``progress``  — optional callback receiving a :class:`ProgressEvent`
                    after every finished cell (hit or simulated).
    """

    def __init__(self, jobs=None, cache_dir=DEFAULT_CACHE_DIR, progress=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, not {}".format(self.jobs))
        self.cache = DiskCache(cache_dir) if cache_dir else None
        self.progress = progress

    def run_specs(self, specs):
        """Simulate (or recall) every spec; results in spec order."""
        specs = list(specs)
        started = time.monotonic()
        total = len(specs)
        done = 0
        cache_hits = 0
        result_dicts = [None] * total

        def emit(index, from_cache):
            if self.progress is None:
                return
            self.progress(ProgressEvent(
                done=done,
                total=total,
                cache_hits=cache_hits,
                elapsed_seconds=time.monotonic() - started,
                spec=specs[index],
                from_cache=from_cache,
            ))

        keys = [spec.cache_key() for spec in specs]
        misses = []
        for index, key in enumerate(keys):
            cached = self.cache.load(key) if self.cache else None
            if cached is not None:
                result_dicts[index] = cached
                done += 1
                cache_hits += 1
                emit(index, from_cache=True)
            else:
                misses.append(index)

        if misses and self.jobs == 1:
            for index in misses:
                result_dicts[index] = execute_spec(specs[index])
                if self.cache:
                    self.cache.store(keys[index], result_dicts[index],
                                     specs[index])
                done += 1
                emit(index, from_cache=False)
        elif misses:
            workers = min(self.jobs, len(misses))
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {
                    pool.submit(execute_spec, specs[index]): index
                    for index in misses
                }
                for future in concurrent.futures.as_completed(futures):
                    index = futures[future]
                    result_dicts[index] = future.result()
                    if self.cache:
                        self.cache.store(keys[index], result_dicts[index],
                                         specs[index])
                    done += 1
                    emit(index, from_cache=False)

        return [RunResult.from_dict(result) for result in result_dicts]

    def run_spec(self, spec):
        """Convenience single-cell entry point."""
        return self.run_specs([spec])[0]


def run_specs(specs, *, jobs=None, cache_dir=DEFAULT_CACHE_DIR, progress=None):
    """One-shot functional entry point over a throwaway engine."""
    engine = ExperimentEngine(jobs=jobs, cache_dir=cache_dir,
                              progress=progress)
    return engine.run_specs(specs)
