"""Conflicting Reads Table (CRT) — Fig. 7 ④ of the paper.

Tracks cacheline addresses that (i) the AR reads but does not write and
(ii) received an invalidation causing a conflict/abort in a previous
execution. Before an S-CL retry, lines present in the CRT are promoted
to *Needs Locking* in the ALT so the same conflict cannot recur.

64 entries, 8-way set associative, LRU within each set (544 bytes in
the paper's sizing).
"""

from collections import OrderedDict


class ConflictingReadsTable:
    """Set-associative, per-core table of previously conflicting reads."""

    def __init__(self, num_entries=64, assoc=8):
        if num_entries % assoc != 0:
            raise ValueError("entries must divide evenly into ways")
        self.num_sets = num_entries // assoc
        self.assoc = assoc
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.insertions = 0
        self.evictions = 0

    def _set_for(self, line):
        return self._sets[line % self.num_sets]

    def insert(self, line):
        """Record a conflicting read; evicts LRU within the set."""
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            return
        if len(entries) >= self.assoc:
            entries.popitem(last=False)
            self.evictions += 1
        entries[line] = True
        self.insertions += 1

    def __contains__(self, line):
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            return True
        return False

    def __len__(self):
        return sum(len(entries) for entries in self._sets)

    def lines(self):
        """All tracked lines (for tests)."""
        tracked = []
        for entries in self._sets:
            tracked.extend(entries.keys())
        return tracked
