"""Execution modes of an atomic-region attempt."""

import enum


class ExecMode(enum.Enum):
    """How an AR attempt executes (paper §4.3).

    ``SPECULATIVE`` is the baseline HTM/SLE attempt (discovery may run on
    top of it); ``FAILED_DISCOVERY`` is a speculative attempt that has
    already conflicted but keeps executing to finish learning its
    footprint; ``S_CL``/``NS_CL`` are CLEAR's cacheline-locked retry
    modes; ``FALLBACK`` is serialized execution under the global lock.
    """

    SPECULATIVE = "speculative"
    FAILED_DISCOVERY = "failed_discovery"
    S_CL = "s_cl"
    NS_CL = "ns_cl"
    FALLBACK = "fallback"

    @property
    def is_cacheline_locked(self):
        """True for the NS-CL and S-CL retry modes."""
        return self in (ExecMode.S_CL, ExecMode.NS_CL)

    @property
    def is_speculative(self):
        """Conflict detection active and state rollback possible."""
        return self in (ExecMode.SPECULATIVE, ExecMode.FAILED_DISCOVERY, ExecMode.S_CL)
