"""CLEAR: Cacheline-Locked Executed Atomic Regions (the paper's core).

Components map one-to-one onto Fig. 7 of the paper:

- :mod:`repro.core.indirection` — register-file indirection bits ①,
  realized as taint-propagating values.
- :mod:`repro.core.ert` — Explored Region Table ②.
- :mod:`repro.core.alt` — Addresses-to-Lock Table ③ with lexicographical
  groups, Hit and Conflict bits.
- :mod:`repro.core.crt` — Conflicting Reads Table ④.
- :mod:`repro.core.discovery` — the discovery phase, including failed
  mode (§4.1, §4.2) and its hierarchical assessments.
- :mod:`repro.core.decision` — the decision tree of Fig. 2.
- :mod:`repro.core.controller` — the per-core controller gluing the
  tables to the transaction lifecycle (§5.1).
"""

from repro.core.modes import ExecMode
from repro.core.indirection import TaintedValue, taint_of, value_of
from repro.core.ert import ExploredRegionTable, ErtEntry
from repro.core.alt import AddressToLockTable, AltEntry, AltOverflow
from repro.core.crt import ConflictingReadsTable
from repro.core.discovery import DiscoveryState, DiscoveryAssessment
from repro.core.decision import RetryDecision, decide_retry_mode
from repro.core.controller import ClearController

__all__ = [
    "ExecMode",
    "TaintedValue",
    "taint_of",
    "value_of",
    "ExploredRegionTable",
    "ErtEntry",
    "AddressToLockTable",
    "AltEntry",
    "AltOverflow",
    "ConflictingReadsTable",
    "DiscoveryState",
    "DiscoveryAssessment",
    "RetryDecision",
    "decide_retry_mode",
    "ClearController",
]
