"""Register-file indirection bits, realized as taint propagation.

The paper extends every physical register with an *indirection bit*
(Fig. 7 ①): the bit is set when the register is the destination of a
load issued inside the AR, and it propagates through every instruction
whose sources carry it. When a memory operation's address or a branch
condition retires with the bit set, the AR is not immutable.

In this reproduction, workload AR bodies are ordinary Python code whose
loads return :class:`TaintedValue`. Arithmetic and comparisons on
tainted values propagate the taint exactly as the hardware bit would
propagate through the register dataflow, so address expressions derived
from AR loads are detected as indirections with zero effort from the
workload author.
"""


class TaintedValue:
    """An integer carrying an indirection bit.

    Supports the arithmetic/comparison surface workload bodies need.
    Binary operations taint their result iff either operand is tainted.
    Comparisons return plain bools, so workloads must route tainted
    branch conditions through ``Branch`` operations (the executor checks
    the condition *value* it is given); helper :func:`taint_of` extracts
    the taint of any value for that purpose.
    """

    __slots__ = ("value", "tainted")

    def __init__(self, value, tainted=True):
        self.value = int(value)
        self.tainted = bool(tainted)

    # -- arithmetic ----------------------------------------------------------
    # These run once per arithmetic op inside every AR body, which makes
    # them some of the hottest code in the simulator; each is written
    # out directly (no shared _combine helper, no lambda per call, no
    # constructor coercion) because both operand paths provably produce
    # a plain int value and a plain bool taint.

    def __add__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value + other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value + int(other)
            result.tainted = self.tainted
        return result

    def __radd__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        result.value = int(other) + self.value
        result.tainted = self.tainted
        return result

    def __sub__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value - other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value - int(other)
            result.tainted = self.tainted
        return result

    def __rsub__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        result.value = int(other) - self.value
        result.tainted = self.tainted
        return result

    def __mul__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value * other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value * int(other)
            result.tainted = self.tainted
        return result

    def __rmul__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        result.value = int(other) * self.value
        result.tainted = self.tainted
        return result

    def __floordiv__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value // other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value // int(other)
            result.tainted = self.tainted
        return result

    def __mod__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value % other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value % int(other)
            result.tainted = self.tainted
        return result

    def __and__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value & other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value & int(other)
            result.tainted = self.tainted
        return result

    def __or__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value | other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value | int(other)
            result.tainted = self.tainted
        return result

    def __xor__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value ^ other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value ^ int(other)
            result.tainted = self.tainted
        return result

    def __rshift__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value >> other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value >> int(other)
            result.tainted = self.tainted
        return result

    def __lshift__(self, other):
        result = TaintedValue.__new__(TaintedValue)
        if other.__class__ is TaintedValue:
            result.value = self.value << other.value
            result.tainted = self.tainted or other.tainted
        else:
            result.value = self.value << int(other)
            result.tainted = self.tainted
        return result

    def __neg__(self):
        result = TaintedValue.__new__(TaintedValue)
        result.value = -self.value
        result.tainted = self.tainted
        return result

    # -- comparisons (plain bools; branch taint is handled via Branch ops) ---

    def __eq__(self, other):
        if other.__class__ is TaintedValue:
            return self.value == other.value
        return self.value == int(other)

    def __ne__(self, other):
        if other.__class__ is TaintedValue:
            return self.value != other.value
        return self.value != int(other)

    def __lt__(self, other):
        if other.__class__ is TaintedValue:
            return self.value < other.value
        return self.value < int(other)

    def __le__(self, other):
        if other.__class__ is TaintedValue:
            return self.value <= other.value
        return self.value <= int(other)

    def __gt__(self, other):
        if other.__class__ is TaintedValue:
            return self.value > other.value
        return self.value > int(other)

    def __ge__(self, other):
        if other.__class__ is TaintedValue:
            return self.value >= other.value
        return self.value >= int(other)

    def __hash__(self):
        return hash(self.value)

    def __int__(self):
        return self.value

    def __index__(self):
        return self.value

    def __bool__(self):
        return bool(self.value)

    def __repr__(self):
        return "TaintedValue({}, tainted={})".format(self.value, self.tainted)


def value_of(operand):
    """Plain integer value of an operand that may be tainted."""
    if isinstance(operand, TaintedValue):
        return operand.value
    return int(operand)


def taint_of(operand):
    """Indirection bit of an operand (False for plain ints/bools)."""
    if isinstance(operand, TaintedValue):
        return operand.tainted
    return False
