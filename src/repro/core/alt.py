"""Addresses-to-Lock Table (ALT) — Fig. 7 ③ of the paper.

The cache controller's table of cacheline addresses learned during
discovery, kept sorted by lexicographical order (directory set index of
the line). 32 entries, CAM with priority search (276 bytes in the
paper's sizing).

Per entry: the address, *Needs Locking* (written lines, plus reads found
in the CRT), *Locked* (already acquired), and the group-locking support
bits *Hit* and *Conflict*. Addresses mapping to the same directory set
form a lexicographical group; every member but the last carries the
Conflict bit, delimiting the group (paper §5). At lock time a group
first probes the private cache: if all members hit exclusively they are
locked silently, otherwise the whole directory set is locked.
"""

from repro.common.errors import ProtocolError


class AltOverflow(Exception):
    """The discovered footprint exceeds the ALT capacity."""

    def __init__(self, line):
        super().__init__("ALT full; cannot track line {}".format(line))
        self.line = line


class AltEntry:
    """One tracked cacheline."""

    __slots__ = ("line", "dir_set", "needs_locking", "locked", "hit", "conflict")

    def __init__(self, line, dir_set, needs_locking=False):
        self.line = line
        self.dir_set = dir_set
        self.needs_locking = needs_locking
        self.locked = False
        self.hit = False
        self.conflict = False

    def __repr__(self):
        return "AltEntry(line={}, set={}, needs_locking={}, locked={})".format(
            self.line, self.dir_set, self.needs_locking, self.locked
        )


class AddressToLockTable:
    """Sorted-by-lexicographical-order table of discovered cachelines."""

    def __init__(self, num_entries=32):
        self.num_entries = num_entries
        self._entries = []  # kept sorted by (dir_set, line)
        self._by_line = {}

    def __len__(self):
        return len(self._entries)

    def __contains__(self, line):
        return line in self._by_line

    def entry(self, line):
        """The tracked entry for a line, or None."""
        return self._by_line.get(line)

    def record_access(self, line, dir_set, written):
        """Track an access discovered inside the AR.

        Written lines set *Needs Locking*; re-recording a line as
        written upgrades it. Raises :class:`AltOverflow` when a new line
        does not fit — the region is then not convertible.
        """
        existing = self._by_line.get(line)
        if existing is not None:
            if written:
                existing.needs_locking = True
            return existing
        if len(self._entries) >= self.num_entries:
            raise AltOverflow(line)
        entry = AltEntry(line, dir_set, needs_locking=written)
        self._insert_sorted(entry)
        self._by_line[line] = entry
        return entry

    def _insert_sorted(self, entry):
        key = (entry.dir_set, entry.line)
        low, high = 0, len(self._entries)
        while low < high:
            mid = (low + high) // 2
            mid_key = (self._entries[mid].dir_set, self._entries[mid].line)
            if mid_key < key:
                low = mid + 1
            else:
                high = mid
        self._entries.insert(low, entry)

    def mark_needs_locking(self, line):
        """Force a tracked line to be locked (CRT hit before S-CL)."""
        entry = self._by_line.get(line)
        if entry is None:
            raise KeyError("line {} not tracked by ALT".format(line))
        entry.needs_locking = True

    def finalize_groups(self):
        """Set the Conflict bits delimiting lexicographical groups.

        All entries of a group except the *last* carry the bit (paper
        §5), so a scan knows the group continues while the bit is set.
        """
        for index, entry in enumerate(self._entries):
            next_entry = self._entries[index + 1] if index + 1 < len(self._entries) else None
            entry.conflict = (
                next_entry is not None and next_entry.dir_set == entry.dir_set
            )

    def entries(self):
        """All entries in lexicographical order."""
        return list(self._entries)

    def all_lines(self):
        """Every tracked line, in lexicographical order."""
        return [entry.line for entry in self._entries]

    def locking_plan(self, lock_all):
        """Ordered groups of entries to lock.

        ``lock_all`` selects NS-CL behaviour (every entry) versus S-CL
        (only *Needs Locking* entries). Returns a list of groups; each
        group is a list of entries sharing a directory set, in order.
        """
        self.finalize_groups()
        plan = []
        current = []
        for entry in self._entries:
            if not lock_all and not entry.needs_locking:
                continue
            if current and current[-1].dir_set != entry.dir_set:
                plan.append(current)
                current = []
            current.append(entry)
        if current:
            plan.append(current)
        return plan

    def verify_sorted(self):
        """Invariant check used by tests and property-based suites."""
        keys = [(entry.dir_set, entry.line) for entry in self._entries]
        if keys != sorted(keys):
            raise ProtocolError("ALT lost lexicographical order")
        return True
