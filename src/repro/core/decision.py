"""The retry decision tree (Fig. 2 of the paper).

Walked in the reverse order of the hierarchical discovery assessment:

3. **NS-CL** — immutable footprint that can be held locked: re-execute
   non-speculatively under cacheline locking; success guaranteed.
2. **S-CL** — lockable but possibly mutable: lock the critical part of
   the footprint, keep a speculative checkpoint and conflict detection.
1. **Speculative retry** — footprint not lockable (or a previous S-CL
   attempt aborted): plain HTM/SLE retry.
0. **Fallback** — retry budget exhausted: coarse-grain lock. (The
   fallback step is enforced by the retry policy in the executor, not
   here.)
"""

from repro.core.modes import ExecMode


class RetryDecision:
    """Outcome of the decision tree for one failed attempt."""

    __slots__ = ("mode", "reason")

    def __init__(self, mode, reason):
        self.mode = mode
        self.reason = reason

    def __repr__(self):
        return "RetryDecision({}, {!r})".format(self.mode, self.reason)


def decide_retry_mode(assessment, has_writes=True):
    """Map a discovery assessment to the retry execution mode (Fig. 2).

    ``has_writes`` guards the S-CL branch: a read-only AR has nothing
    for cacheline locking to protect — exclusive-locking its conflicted
    *reads* would only serialize every other reader of those lines — so
    it takes the plain speculative retry. (NS-CL is unaffected: an
    immutable read-only AR still gains a guaranteed completion.)
    """
    if not assessment.fits_window:
        return RetryDecision(ExecMode.SPECULATIVE, "core structures overflow")
    if not assessment.lockable:
        return RetryDecision(ExecMode.SPECULATIVE, "address set not lockable")
    if assessment.immutable:
        return RetryDecision(ExecMode.NS_CL, "immutable lockable footprint")
    if not has_writes:
        return RetryDecision(ExecMode.SPECULATIVE, "read-only region")
    return RetryDecision(ExecMode.S_CL, "lockable footprint with indirections")
