"""Per-core CLEAR controller (paper §5.1).

Owns the per-core tables (ERT, CRT) and glues them to the transaction
lifecycle:

- At ``XBegin``, the ERT decides whether this invocation runs discovery.
- During execution, the executor feeds loads/stores/branches into the
  current :class:`repro.core.discovery.DiscoveryState`.
- On the first conflict, the attempt enters *failed mode* and keeps
  discovering; at region end the assessment and the decision tree pick
  the retry mode, and the ERT bits are updated.
- For an S-CL retry, ALT read entries present in the CRT are promoted to
  *Needs Locking* so a previously conflicting read cannot strike twice.
"""

from repro.core.crt import ConflictingReadsTable
from repro.core.decision import RetryDecision, decide_retry_mode
from repro.core.discovery import DiscoveryState
from repro.core.ert import ExploredRegionTable
from repro.core.modes import ExecMode


class ClearController:
    """CLEAR hardware state and policy for one core."""

    def __init__(self, core, dir_set_of, can_coreside,
                 ert_entries=16, crt_entries=64, crt_assoc=8,
                 alt_entries=32, sq_capacity=72, lq_capacity=128,
                 scl_lock_policy="writes", crt_enabled=True):
        self.core = core
        self._dir_set_of = dir_set_of
        self._can_coreside = can_coreside
        self.scl_lock_policy = scl_lock_policy
        self.crt_enabled = crt_enabled
        self.ert = ExploredRegionTable(ert_entries)
        self.crt = ConflictingReadsTable(crt_entries, crt_assoc)
        self.alt_entries = alt_entries
        self.sq_capacity = sq_capacity
        self.lq_capacity = lq_capacity
        self.discoveries_started = 0
        self.discoveries_failed_mode = 0

    # -- XBegin ---------------------------------------------------------------

    def begin_invocation(self, region_id):
        """ERT lookup at XBegin: returns a DiscoveryState or None.

        Discovery is skipped when the region is known non-convertible or
        its SQ-Full counter saturated (§5, §5.1); the transaction then
        follows the baseline execution.
        """
        entry = self.ert.ensure(region_id)
        if not entry.discovery_allowed:
            return None
        self.discoveries_started += 1
        return DiscoveryState(
            region_id,
            dir_set_of=self._dir_set_of,
            can_coreside=self._can_coreside,
            sq_capacity=self.sq_capacity,
            lq_capacity=self.lq_capacity,
            alt_entries=self.alt_entries,
        )

    # -- conflict while discovering --------------------------------------------

    def note_conflict(self, discovery):
        """First conflict: hold the abort and continue in failed mode."""
        if not discovery.failed:
            discovery.enter_failed_mode()
            self.discoveries_failed_mode += 1

    # -- end of a discovery attempt ---------------------------------------------

    def conclude_failed_discovery(self, discovery):
        """Failed attempt reached XEnd (or exhausted resources): decide.

        Updates the ERT bits from the assessment and returns the
        :class:`repro.core.decision.RetryDecision` for the next attempt.
        """
        entry = self.ert.ensure(discovery.region_id)
        if discovery.sq_overflow:
            entry.note_sq_overflow()
        assessment = discovery.assess()
        entry.is_convertible = assessment.lockable
        entry.is_immutable = assessment.immutable
        if discovery.exhausted:
            # Assessment 1: hopeless to continue; abort immediately and
            # fall back to a plain speculative retry.
            return RetryDecision(ExecMode.SPECULATIVE, "discovery resources exhausted")
        has_writes = any(
            entry.needs_locking for entry in discovery.alt.entries()
        )
        return decide_retry_mode(assessment, has_writes=has_writes)

    def conclude_committed_discovery(self, discovery):
        """Committed attempt: discard the decision, keep the knowledge.

        A committed AR needs no retry decision (§4.3), but the observed
        footprint still updates the ERT bits so future invocations skip
        discovery for hopeless regions (this produces the paper's bst
        behaviour: eligible while the structure is small, permanently
        non-convertible once its footprint outgrows the tables).
        """
        entry = self.ert.ensure(discovery.region_id)
        entry.note_commit()
        assessment = discovery.assess()
        if not assessment.fits_window:
            entry.is_convertible = False
        entry.is_immutable = assessment.immutable

    # -- cacheline-locked retries -------------------------------------------------

    def prepare_lock_plan(self, discovery, mode):
        """Ordered lock groups for an NS-CL or S-CL retry.

        NS-CL locks every ALT entry; S-CL locks written lines plus reads
        found in the CRT (paper §4.4.2, §5.1).
        """
        if mode is ExecMode.NS_CL:
            return discovery.alt.locking_plan(lock_all=True)
        if mode is not ExecMode.S_CL:
            raise ValueError("lock plan only exists for CL modes, not {}".format(mode))
        if self.scl_lock_policy == "all":
            # S-CL "-all-" variant (§4.4.2): lock reads too, trading
            # extra invalidation traffic for fewer S-CL aborts.
            return discovery.alt.locking_plan(lock_all=True)
        if self.crt_enabled:
            for alt_entry in discovery.alt.entries():
                if not alt_entry.needs_locking and alt_entry.line in self.crt:
                    discovery.alt.mark_needs_locking(alt_entry.line)
        return discovery.alt.locking_plan(lock_all=False)

    def note_scl_conflicting_read(self, line):
        """An S-CL non-locked read conflicted: remember it in the CRT."""
        if self.crt_enabled:
            self.crt.insert(line)

    def mark_non_discoverable(self, region_id):
        """Non-memory-conflict abort in S-CL: stop retrying CL (§4.4.2)."""
        entry = self.ert.ensure(region_id)
        entry.is_convertible = False

    # -- diagnostics -------------------------------------------------------------

    def diagnostic_state(self):
        """JSON-serializable ERT/CRT digest for stall diagnostic dumps."""
        return {
            "ert": self.ert.snapshot(),
            "crt_lines": len(self.crt),
            "discoveries_started": self.discoveries_started,
            "discoveries_failed_mode": self.discoveries_failed_mode,
        }
