"""The discovery phase (paper §4.1, §4.2).

Every speculative invocation of a convertible region doubles as a
discovery phase: CLEAR tracks the cachelines accessed (into the ALT, up
to its capacity), watches for indirections via the register indirection
bits, and — crucially — on a conflict does *not* abort immediately but
continues in **failed mode** until the region ends or the speculative
resources run out, so that it can make an informed retry decision.

With HTM as the baseline (§4.2) speculation extends beyond the ROB and
the store queue becomes the limiting resource for failed-mode discovery;
stores are kept in the SQ and loads are flagged non-aborting.
"""

from repro.core.alt import AddressToLockTable, AltOverflow


class DiscoveryAssessment:
    """The hierarchical assessment made at the end of discovery (§4.1).

    1. ``fits_window`` — the AR fit the speculative resources (SQ with
       HTM; plus the ALT tracking limit).
    2. ``lockable`` — the accessed cachelines can all be held locked in
       the private cache simultaneously (no over-full L1 set).
    3. ``immutable`` — no indirection and no branch dependent on values
       accessed inside the AR.
    """

    __slots__ = ("fits_window", "lockable", "immutable", "sq_overflow",
                 "alt_overflow", "footprint")

    def __init__(self, fits_window, lockable, immutable, sq_overflow,
                 alt_overflow, footprint):
        self.fits_window = fits_window
        self.lockable = lockable
        self.immutable = immutable
        self.sq_overflow = sq_overflow
        self.alt_overflow = alt_overflow
        self.footprint = footprint

    def __repr__(self):
        return (
            "DiscoveryAssessment(fits_window={}, lockable={}, immutable={})".format(
                self.fits_window, self.lockable, self.immutable
            )
        )


class DiscoveryState:
    """Per-attempt tracking of footprint, indirection, and resource use."""

    def __init__(self, region_id, dir_set_of, can_coreside,
                 sq_capacity=72, lq_capacity=128, alt_entries=32):
        self.region_id = region_id
        self._dir_set_of = dir_set_of
        self._can_coreside = can_coreside
        self.sq_capacity = sq_capacity
        self.lq_capacity = lq_capacity
        self.alt = AddressToLockTable(alt_entries)
        self.failed = False
        self.indirection_seen = False
        self.sq_overflow = False
        self.alt_overflow = False
        self.load_count = 0
        self.store_count = 0
        self.op_count = 0

    # -- event hooks called by the executor ---------------------------------

    def enter_failed_mode(self):
        """A conflict arrived; keep executing to finish learning (§4.1)."""
        self.failed = True

    @property
    def exhausted(self):
        """Discovery can learn nothing more; a failed AR aborts now."""
        return self.sq_overflow or self.alt_overflow

    def on_load(self, line, address_tainted):
        """Track a load retiring inside the AR."""
        self.op_count += 1
        self.load_count += 1
        if address_tainted:
            self.indirection_seen = True
        self._track(line, written=False)

    def on_store(self, line, address_tainted):
        """Track a store entering the SQ inside the AR."""
        self.op_count += 1
        self.store_count += 1
        if address_tainted:
            self.indirection_seen = True
        if self.store_count > self.sq_capacity:
            self.sq_overflow = True
        self._track(line, written=True)

    def on_branch(self, condition_tainted):
        """Track a branch retiring inside the AR.

        A branch whose condition depends on an AR-loaded value can steer
        execution to a different footprint, so it poisons immutability
        exactly like an address indirection (paper §3).
        """
        self.op_count += 1
        if condition_tainted:
            self.indirection_seen = True

    def on_compute(self, op_count=1):
        """Track non-memory work (for window accounting only)."""
        self.op_count += op_count

    def _track(self, line, written):
        if self.alt_overflow:
            return
        try:
            self.alt.record_access(line, self._dir_set_of(line), written)
        except AltOverflow:
            self.alt_overflow = True

    # -- final assessment -----------------------------------------------------

    def assess(self):
        """The informed decision input produced at region end (§4.1)."""
        fits_window = not self.sq_overflow and not self.alt_overflow
        footprint = self.alt.all_lines()
        lockable = fits_window and self._can_coreside(footprint)
        immutable = not self.indirection_seen
        return DiscoveryAssessment(
            fits_window=fits_window,
            lockable=lockable,
            immutable=immutable,
            sq_overflow=self.sq_overflow,
            alt_overflow=self.alt_overflow,
            footprint=footprint,
        )
