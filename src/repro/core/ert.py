"""Explored Region Table (ERT) — Fig. 7 ② of the paper.

One entry per static atomic region, identified by the address of its
first instruction (here: a stable region id supplied by the workload).
16 entries, fully associative, LRU replacement (146 bytes of state in
the paper's sizing).

Fields per entry:

- *Is Convertible*: cacheline locking may be employed on a retry.
- *Is Immutable*: a retry can start directly in NS-CL mode (S-CL if
  convertible but not immutable).
- *SQ-Full Counter*: 2-bit saturating counter of failed discoveries that
  ran out of SQ resources; saturation disables discovery for the region,
  a commit decrements it.

New entries initialize Is Convertible = 1, Is Immutable = 1,
SQ-Full Counter = 0 (paper §5).
"""

from collections import OrderedDict

SQ_FULL_COUNTER_MAX = 3  # 2-bit saturating counter


class ErtEntry:
    """One explored region."""

    __slots__ = ("region_id", "is_convertible", "is_immutable", "sq_full_counter")

    def __init__(self, region_id):
        self.region_id = region_id
        self.is_convertible = True
        self.is_immutable = True
        self.sq_full_counter = 0

    @property
    def discovery_allowed(self):
        """Whether a new invocation should run the discovery phase.

        Discovery is skipped for regions marked non-convertible (§5.1)
        and for regions whose SQ-Full counter saturated (§5).
        """
        return self.is_convertible and self.sq_full_counter < SQ_FULL_COUNTER_MAX

    def note_sq_overflow(self):
        """Saturating increment on a discovery that exhausted the SQ."""
        if self.sq_full_counter < SQ_FULL_COUNTER_MAX:
            self.sq_full_counter += 1

    def note_commit(self):
        """Saturating decrement when the region commits."""
        if self.sq_full_counter > 0:
            self.sq_full_counter -= 1

    def __repr__(self):
        return (
            "ErtEntry({!r}, convertible={}, immutable={}, sq_full={})".format(
                self.region_id,
                self.is_convertible,
                self.is_immutable,
                self.sq_full_counter,
            )
        )


class ExploredRegionTable:
    """Fully associative, LRU-replaced table of explored regions."""

    def __init__(self, num_entries=16):
        self.num_entries = num_entries
        self._entries = OrderedDict()
        self.evictions = 0

    def lookup(self, region_id):
        """Entry for a region, refreshing LRU; None if absent."""
        entry = self._entries.get(region_id)
        if entry is not None:
            self._entries.move_to_end(region_id)
        return entry

    def ensure(self, region_id):
        """Entry for a region, allocating (with LRU eviction) if absent."""
        entry = self.lookup(region_id)
        if entry is not None:
            return entry
        if len(self._entries) >= self.num_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        entry = ErtEntry(region_id)
        self._entries[region_id] = entry
        return entry

    def __len__(self):
        return len(self._entries)

    def __contains__(self, region_id):
        return region_id in self._entries

    def snapshot(self):
        """JSON-serializable per-region bit dump (for diagnostics)."""
        return [
            {
                "region": list(region) if isinstance(region, tuple) else region,
                "is_convertible": entry.is_convertible,
                "is_immutable": entry.is_immutable,
                "sq_full_counter": entry.sq_full_counter,
            }
            for region, entry in self._entries.items()
        ]
