"""deque — work deque with ticket-claimed bottom slots [7, 11, 24, 25].

Two ARs per Table 1: ``push_bottom`` is likely immutable (the slot is
claimed with a pre-AR ticket and reached through the stable deque
descriptor — an indirection no concurrent AR rewrites), ``steal_top``
is mutable (a branch on the loaded ``top``/``bottom`` pair decides
whether — and which — slot is read).
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload


class DequeWorkload(Workload):
    """Work deque: ticket-claimed pushes, emptiness-branching steals."""
    name = "deque"

    def __init__(self, capacity=64, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.capacity = capacity
        self.bottom_addr = None
        self.top_addr = None
        self.buffer_ptr_addr = None
        self.slots_base = None
        self._next_ticket = 0

    def region_specs(self):
        return [
            RegionSpec("push_bottom", Mutability.LIKELY_IMMUTABLE,
                       "fill ticket-claimed slot via descriptor indirection"),
            RegionSpec("steal_top", Mutability.MUTABLE,
                       "steal with emptiness branch"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.bottom_addr = allocator.alloc_lines(1)
        self.top_addr = allocator.alloc_lines(1)
        self.buffer_ptr_addr = allocator.alloc_lines(1)
        self.slots_base = allocator.alloc_lines(self.capacity)
        # Each thief records its loot on a private line (workers consume
        # stolen tasks locally in a work-stealing runtime).
        self.result_base = allocator.alloc_lines(num_threads)
        memory.poke(self.buffer_ptr_addr, self.slots_base)
        prefill = self.capacity // 2
        for index in range(prefill):
            memory.poke(self.slots_base + index * WORDS_PER_LINE, 1000 + index)
        memory.poke(self.bottom_addr, prefill)
        memory.poke(self.top_addr, 0)
        self._next_ticket = prefill

    def _claim_ticket(self):
        ticket = self._next_ticket
        self._next_ticket += 1
        return ticket

    def _push_body(self, ticket, value):
        buffer_ptr_addr = self.buffer_ptr_addr
        bottom_addr = self.bottom_addr
        offset = (ticket % self.capacity) * WORDS_PER_LINE

        def body():
            buffer_base = yield Load(buffer_ptr_addr)
            yield Store(buffer_base + offset, value)
            bottom = yield Load(bottom_addr)
            yield Store(bottom_addr, bottom + 1)

        return body

    def _steal_body(self, thread_id):
        buffer_ptr_addr = self.buffer_ptr_addr
        bottom_addr = self.bottom_addr
        top_addr = self.top_addr
        capacity = self.capacity
        result_addr = self.result_base + thread_id * WORDS_PER_LINE

        def body():
            top = yield Load(top_addr)
            bottom = yield Load(bottom_addr)
            yield Branch(bottom - top)
            if bottom - top <= 0:
                return  # empty
            buffer_base = yield Load(buffer_ptr_addr)
            task = yield Load(buffer_base + (top % capacity) * WORDS_PER_LINE)
            yield Store(top_addr, top + 1)
            yield Store(result_addr, task)

        return body

    def make_invocation(self, thread_id, rng):
        # Work-stealing runtimes push more often than they steal.
        if rng.random() < 0.6:
            ticket = self._claim_ticket()
            return self.invoke(
                "push_bottom", self._push_body(ticket, rng.randint(1, 10_000))
            )
        return self.invoke("steal_top", self._steal_body(thread_id))

    def size(self, memory):
        """Logical occupancy (bottom - top); never negative (tests)."""
        return memory.peek(self.bottom_addr) - memory.peek(self.top_addr)
