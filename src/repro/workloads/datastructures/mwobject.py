"""mwobject — multi-word object update [12, 13].

One immutable AR performing 4 additions to 4 different words that fall
into the same cacheline. Maximal contention (every thread hammers the
same line), minimal footprint — the poster child for NS-CL.
"""

from repro.workloads.base import Mutability, RegionSpec, Workload
from repro.workloads.patterns import direct_multi_rmw


class MwObjectWorkload(Workload):
    """Four counters in one cacheline, updated atomically together."""
    name = "mwobject"

    def __init__(self, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.object_base = None

    def region_specs(self):
        return [
            RegionSpec(
                "mw_update", Mutability.IMMUTABLE,
                "4 additions to 4 words of one cacheline",
            ),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.object_base = allocator.alloc_lines(1)
        for offset in range(4):
            memory.poke(self.object_base + offset, 0)

    def make_invocation(self, thread_id, rng):
        addrs = [self.object_base + offset for offset in range(4)]
        return self.invoke("mw_update", direct_multi_rmw(addrs, delta=1))

    def field_values(self, memory):
        """The four counters (used by invariants: all equal under fairness-free
        schedules is NOT guaranteed, but their sum equals total commits)."""
        return [memory.peek(self.object_base + offset) for offset in range(4)]
