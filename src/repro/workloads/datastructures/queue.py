"""queue — bounded FIFO with ticket-claimed slots [20, 33].

Two ARs per Table 1:

- ``enqueue`` (likely immutable): the slot index is a *ticket* reserved
  with an atomic fetch-and-add before the AR (as real slot-reserving
  queues do), and the buffer is reached through a stable
  queue-descriptor pointer loaded inside the AR — an indirection whose
  value no concurrent AR modifies. The footprint (descriptor, claimed
  slot, tail counter) is identical on every retry.
- ``dequeue`` (mutable): branches on the loaded occupancy and reads the
  slot selected by the loaded head index, both of which concurrent ARs
  modify constantly.

As in the classic array queue, producers and consumers contend on
*different* counters (tail vs head); they only cross via the dequeue's
occupancy check reading the tail counter.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload


class QueueWorkload(Workload):
    """Bounded FIFO: ticket-claimed enqueues, head-chasing dequeues."""
    name = "queue"

    def __init__(self, capacity=64, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.capacity = capacity
        self.tail_addr = None
        self.head_addr = None
        self.buffer_ptr_addr = None
        self.slots_base = None
        self._next_ticket = 0

    def region_specs(self):
        return [
            RegionSpec("enqueue", Mutability.LIKELY_IMMUTABLE,
                       "fill ticket-claimed slot via descriptor indirection"),
            RegionSpec("dequeue", Mutability.MUTABLE,
                       "remove at head with emptiness branch"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.tail_addr = allocator.alloc_lines(1)
        self.head_addr = allocator.alloc_lines(1)
        self.buffer_ptr_addr = allocator.alloc_lines(1)
        self.slots_base = allocator.alloc_lines(self.capacity)
        memory.poke(self.buffer_ptr_addr, self.slots_base)
        prefill = self.capacity // 2
        for index in range(prefill):
            memory.poke(self.slots_base + index * WORDS_PER_LINE, 500 + index)
        memory.poke(self.tail_addr, prefill)
        memory.poke(self.head_addr, 0)
        self._next_ticket = prefill

    def _claim_ticket(self):
        """Slot reservation via fetch-and-add, outside the AR."""
        ticket = self._next_ticket
        self._next_ticket += 1
        return ticket

    def _enqueue_body(self, ticket, value):
        buffer_ptr_addr = self.buffer_ptr_addr
        tail_addr = self.tail_addr
        offset = (ticket % self.capacity) * WORDS_PER_LINE

        def body():
            buffer_base = yield Load(buffer_ptr_addr)
            yield Store(buffer_base + offset, value)
            tail = yield Load(tail_addr)
            yield Store(tail_addr, tail + 1)

        return body

    def _dequeue_body(self):
        buffer_ptr_addr = self.buffer_ptr_addr
        tail_addr = self.tail_addr
        head_addr = self.head_addr
        capacity = self.capacity

        def body():
            head = yield Load(head_addr)
            tail = yield Load(tail_addr)
            yield Branch(tail - head)
            if tail - head <= 0:
                return  # empty
            buffer_base = yield Load(buffer_ptr_addr)
            yield Load(buffer_base + (head % capacity) * WORDS_PER_LINE)
            yield Store(head_addr, head + 1)

        return body

    def make_invocation(self, thread_id, rng):
        if rng.random() < 0.5:
            ticket = self._claim_ticket()
            return self.invoke(
                "enqueue", self._enqueue_body(ticket, rng.randint(1, 10_000))
            )
        return self.invoke("dequeue", self._dequeue_body())

    def size(self, memory):
        """Logical occupancy (tail - head); never negative (tests)."""
        return memory.peek(self.tail_addr) - memory.peek(self.head_addr)
