"""sorted-list — ordered singly linked list [20]; Listing 3 source.

Three ARs per Table 1 (1 immutable, 2 mutable):

- ``count_matches`` (mutable) is literally Listing 3: walk the list
  counting nodes whose data equals a value.
- ``insert`` (mutable): sorted insertion, pointer chase.
- ``bump_stats`` (immutable): increment a fixed statistics counter.

Node layout (one cacheline per node): [data, next].
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload
from repro.workloads.patterns import counter_increment, list_traverse_count

DATA = 0
NEXT = 1

MAX_STEPS = 96


class SortedListWorkload(Workload):
    """Ordered linked list; source of the paper's Listing 3."""
    name = "sorted-list"

    def __init__(self, value_range=64, initial_length=24,
                 ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.value_range = value_range
        self.initial_length = initial_length
        self.head_addr = None
        self.stats_addr = None
        self._memory = None
        self._node_pool = None
        self._pool_next = None

    def region_specs(self):
        return [
            RegionSpec("bump_stats", Mutability.IMMUTABLE, "fixed counter update"),
            RegionSpec("insert", Mutability.MUTABLE, "sorted insertion"),
            RegionSpec("count_matches", Mutability.MUTABLE, "Listing 3 traversal"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self._memory = memory
        self.head_addr = allocator.alloc_lines(1)
        self.stats_addr = allocator.alloc_lines(1)
        memory.poke(self.head_addr, 0)
        pool_size = max(1, self.ops_per_thread)
        self._node_pool = []
        self._pool_next = [0] * num_threads
        for _ in range(num_threads):
            base = allocator.alloc_lines(pool_size)
            self._node_pool.append(
                [base + index * WORDS_PER_LINE for index in range(pool_size)]
            )
        values = sorted(rng.randint(0, self.value_range - 1)
                        for _ in range(self.initial_length))
        previous = 0
        for value in reversed(values):
            node = allocator.alloc_lines(1)
            memory.poke(node + DATA, value)
            memory.poke(node + NEXT, previous)
            previous = node
        memory.poke(self.head_addr, previous)

    def _fresh_node(self, thread_id, value):
        pool = self._node_pool[thread_id]
        index = self._pool_next[thread_id] % len(pool)
        self._pool_next[thread_id] += 1
        node = pool[index]
        self._memory.poke(node + DATA, value)
        self._memory.poke(node + NEXT, 0)
        return node

    def _insert_body(self, value, node):
        head_addr = self.head_addr

        def body():
            previous = 0
            current = yield Load(head_addr)
            yield Branch(current)
            steps = 0
            while current != 0 and steps < MAX_STEPS:
                data = yield Load(current + DATA)
                yield Branch(data)
                if data >= value:
                    break
                previous = current
                current = yield Load(current + NEXT)
                yield Branch(current)
                steps += 1
            yield Store(node + NEXT, int(current))
            if previous == 0:
                yield Store(head_addr, node)
            else:
                yield Store(previous + NEXT, node)

        return body

    def make_invocation(self, thread_id, rng):
        roll = rng.random()
        if roll < 0.25:
            return self.invoke("bump_stats", counter_increment(self.stats_addr))
        if roll < 0.6:
            value = rng.randint(0, self.value_range - 1)
            node = self._fresh_node(thread_id, value)
            return self.invoke("insert", self._insert_body(value, node))
        value = rng.randint(0, self.value_range - 1)
        return self.invoke(
            "count_matches",
            list_traverse_count(
                self.head_addr, value, max_steps=MAX_STEPS,
                next_offset=NEXT, data_offset=DATA, count_addr=self.stats_addr,
            ),
        )

    def values_in_order(self, memory, max_nodes=100_000):
        """All values; asserts sortedness and acyclicity (tests)."""
        values = []
        seen = set()
        node = memory.peek(self.head_addr)
        while node != 0:
            if node in seen:
                raise AssertionError("cycle in sorted list")
            seen.add(node)
            values.append(memory.peek(node + DATA))
            node = memory.peek(node + NEXT)
            if len(values) > max_nodes:
                raise AssertionError("list longer than plausible")
        if values != sorted(values):
            raise AssertionError("sorted list out of order: {}".format(values))
        return values
