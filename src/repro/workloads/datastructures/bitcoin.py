"""bitcoin — Listing 2 of the paper.

One likely-immutable AR: a transfer between two wallets reached through
the stable ``users`` pointer table (an indirection inside the AR). The
table is never rewritten, so retries see the same footprint, but the
hardware cannot prove it — discovery classifies the region convertible
and not immutable, steering retries to S-CL.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.workloads.base import Mutability, RegionSpec, Workload
from repro.workloads.patterns import indirect_transfer


class BitcoinWorkload(Workload):
    """Wallet transfers through the stable users[] pointer table."""
    name = "bitcoin"

    def __init__(self, num_wallets=64, amount_range=(1, 20),
                 ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.num_wallets = num_wallets
        self.amount_range = amount_range
        self.users_base = None
        self.wallets_base = None

    def region_specs(self):
        return [
            RegionSpec(
                "transfer", Mutability.LIKELY_IMMUTABLE,
                "move bitcoins between two wallets via users[] indirection",
            ),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.users_base = allocator.alloc(self.num_wallets, align_line=True)
        self.wallets_base = allocator.alloc_lines(self.num_wallets)
        for index in range(self.num_wallets):
            wallet_addr = self.wallets_base + index * WORDS_PER_LINE
            memory.poke(self.users_base + index, wallet_addr)
            memory.poke(wallet_addr, 10_000)  # initial balance

    def make_invocation(self, thread_id, rng):
        source, target = rng.sample(range(self.num_wallets), 2)
        amount = rng.randint(*self.amount_range)
        return self.invoke(
            "transfer",
            indirect_transfer(
                self.users_base + source, self.users_base + target, amount
            ),
        )

    def total_balance(self, memory):
        """Invariant: transfers conserve the total (used by tests)."""
        return sum(
            memory.peek(self.wallets_base + index * WORDS_PER_LINE)
            for index in range(self.num_wallets)
        )
