"""arrayswap — Listing 1 of the paper.

Two immutable ARs: addresses are computed *before* the atomic region
(``register uint64_t* a = array[posa]`` in the paper's C), so the AR
body touches a fixed set of cachelines on every retry. ``swap2``
exchanges two slots; ``swap4`` exchanges two disjoint pairs.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.workloads.base import Mutability, RegionSpec, Workload
from repro.workloads.patterns import direct_swap
from repro.sim.program import Load, Store


class ArraySwapWorkload(Workload):
    """Immutable-footprint element swaps over a line-per-slot array."""
    name = "arrayswap"

    def __init__(self, num_elements=48, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.num_elements = num_elements
        self.array_base = None

    def region_specs(self):
        return [
            RegionSpec("swap2", Mutability.IMMUTABLE, "swap two slots"),
            RegionSpec("swap4", Mutability.IMMUTABLE, "swap two disjoint pairs"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        # One element per cacheline so distinct slots never false-share.
        self.array_base = allocator.alloc_lines(self.num_elements)
        for index in range(self.num_elements):
            memory.poke(self._slot(index), index)

    def _slot(self, index):
        return self.array_base + index * WORDS_PER_LINE

    def make_invocation(self, thread_id, rng):
        if rng.random() < 0.5:
            pos_a, pos_b = rng.sample(range(self.num_elements), 2)
            return self.invoke("swap2", direct_swap(self._slot(pos_a), self._slot(pos_b)))
        slots = [self._slot(index) for index in rng.sample(range(self.num_elements), 4)]

        def body():
            value_0 = yield Load(slots[0])
            value_1 = yield Load(slots[1])
            value_2 = yield Load(slots[2])
            value_3 = yield Load(slots[3])
            yield Store(slots[0], value_1)
            yield Store(slots[1], value_0)
            yield Store(slots[2], value_3)
            yield Store(slots[3], value_2)

        return self.invoke("swap4", body)
