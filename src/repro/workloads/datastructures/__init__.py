"""Concurrent data-structure benchmarks (paper §6)."""

from repro.workloads.datastructures.arrayswap import ArraySwapWorkload
from repro.workloads.datastructures.bitcoin import BitcoinWorkload
from repro.workloads.datastructures.bst import BstWorkload
from repro.workloads.datastructures.deque import DequeWorkload
from repro.workloads.datastructures.hashmap import HashmapWorkload
from repro.workloads.datastructures.mwobject import MwObjectWorkload
from repro.workloads.datastructures.queue import QueueWorkload
from repro.workloads.datastructures.stack import StackWorkload
from repro.workloads.datastructures.sorted_list import SortedListWorkload

__all__ = [
    "ArraySwapWorkload",
    "BitcoinWorkload",
    "BstWorkload",
    "DequeWorkload",
    "HashmapWorkload",
    "MwObjectWorkload",
    "QueueWorkload",
    "StackWorkload",
    "SortedListWorkload",
]
