"""stack — array stack with ticket-claimed slots [20].

``push`` is likely immutable: the slot is claimed with a pre-AR ticket
and reached through the stable stack-descriptor pointer (an indirection
whose value no concurrent AR modifies), so retries touch the same
cachelines. ``pop`` is mutable: it branches on the loaded depth and
reads the slot that depth selects.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload


class StackWorkload(Workload):
    """Array stack: ticket-claimed pushes, top-chasing pops."""
    name = "stack"

    def __init__(self, capacity=96, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.capacity = capacity
        self.top_addr = None
        self.buffer_ptr_addr = None
        self.slots_base = None
        self._next_ticket = 0

    def region_specs(self):
        return [
            RegionSpec("push", Mutability.LIKELY_IMMUTABLE,
                       "fill ticket-claimed slot via descriptor indirection"),
            RegionSpec("pop", Mutability.MUTABLE,
                       "remove at top with emptiness branch"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.top_addr = allocator.alloc_lines(1)
        self.buffer_ptr_addr = allocator.alloc_lines(1)
        self.slots_base = allocator.alloc_lines(self.capacity)
        memory.poke(self.buffer_ptr_addr, self.slots_base)
        prefill = self.capacity // 2
        for index in range(prefill):
            memory.poke(self.slots_base + index * WORDS_PER_LINE, 700 + index)
        memory.poke(self.top_addr, prefill)
        self._next_ticket = prefill

    def _claim_ticket(self):
        ticket = self._next_ticket
        self._next_ticket += 1
        return ticket

    def _push_body(self, ticket, value):
        buffer_ptr_addr = self.buffer_ptr_addr
        top_addr = self.top_addr
        offset = (ticket % self.capacity) * WORDS_PER_LINE

        def body():
            buffer_base = yield Load(buffer_ptr_addr)
            yield Store(buffer_base + offset, value)
            top = yield Load(top_addr)
            yield Store(top_addr, top + 1)

        return body

    def _pop_body(self):
        buffer_ptr_addr = self.buffer_ptr_addr
        top_addr = self.top_addr
        capacity = self.capacity

        def body():
            top = yield Load(top_addr)
            yield Branch(top)
            if top <= 0:
                return  # empty
            buffer_base = yield Load(buffer_ptr_addr)
            yield Load(buffer_base + ((top - 1) % capacity) * WORDS_PER_LINE)
            yield Store(top_addr, top - 1)

        return body

    def make_invocation(self, thread_id, rng):
        if rng.random() < 0.5:
            ticket = self._claim_ticket()
            return self.invoke(
                "push", self._push_body(ticket, rng.randint(1, 10_000))
            )
        return self.invoke("pop", self._pop_body())

    def depth(self, memory):
        """Current stack depth; never negative (tests)."""
        return memory.peek(self.top_addr)
