"""hashmap — chained hash table [8, 18].

Three mutable ARs (put / get / remove): every operation walks a bucket
chain through pointers loaded inside the AR, branching on loaded keys,
so footprints track the chain contents.

Bucket heads live one per cacheline; nodes are [key, value, next], one
per cacheline.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload

KEY = 0
VALUE = 1
NEXT = 2

MAX_CHAIN = 48


class HashmapWorkload(Workload):
    """Chained hash table; every operation walks a bucket chain."""
    name = "hashmap"

    def __init__(self, num_buckets=16, key_range=96, initial_keys=48,
                 ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.num_buckets = num_buckets
        self.key_range = key_range
        self.initial_keys = initial_keys
        self.buckets_base = None
        self._memory = None
        self._node_pool = None
        self._pool_next = None

    def region_specs(self):
        return [
            RegionSpec("put", Mutability.MUTABLE, "insert/update walking the chain"),
            RegionSpec("get", Mutability.MUTABLE, "lookup walking the chain"),
            RegionSpec("remove", Mutability.MUTABLE, "unlink walking the chain"),
        ]

    def _bucket_addr(self, key):
        return self.buckets_base + (key % self.num_buckets) * WORDS_PER_LINE

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self._memory = memory
        self.buckets_base = allocator.alloc_lines(self.num_buckets)
        for bucket in range(self.num_buckets):
            memory.poke(self.buckets_base + bucket * WORDS_PER_LINE, 0)
        pool_size = max(1, self.ops_per_thread)
        self._node_pool = []
        self._pool_next = [0] * num_threads
        for _ in range(num_threads):
            base = allocator.alloc_lines(pool_size)
            self._node_pool.append(
                [base + index * WORDS_PER_LINE for index in range(pool_size)]
            )
        for key in rng.sample(range(self.key_range), min(self.initial_keys, self.key_range)):
            node = allocator.alloc_lines(1)
            bucket = self._bucket_addr(key)
            memory.poke(node + KEY, key)
            memory.poke(node + VALUE, key * 10)
            memory.poke(node + NEXT, memory.peek(bucket))
            memory.poke(bucket, node)

    def _fresh_node(self, thread_id, key, value):
        pool = self._node_pool[thread_id]
        index = self._pool_next[thread_id] % len(pool)
        self._pool_next[thread_id] += 1
        node = pool[index]
        self._memory.poke(node + KEY, key)
        self._memory.poke(node + VALUE, value)
        self._memory.poke(node + NEXT, 0)
        return node

    # -- AR bodies --------------------------------------------------------------

    def _put_body(self, key, value, node):
        bucket = self._bucket_addr(key)

        def body():
            current = yield Load(bucket)
            yield Branch(current)
            steps = 0
            while current != 0 and steps < MAX_CHAIN:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if current_key == key:
                    yield Store(current + VALUE, value)
                    return
                current = yield Load(current + NEXT)
                yield Branch(current)
                steps += 1
            head = yield Load(bucket)
            yield Store(node + NEXT, head)
            yield Store(bucket, node)

        return body

    def _get_body(self, key, sink_addr):
        bucket = self._bucket_addr(key)

        def body():
            current = yield Load(bucket)
            yield Branch(current)
            steps = 0
            while current != 0 and steps < MAX_CHAIN:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if current_key == key:
                    value = yield Load(current + VALUE)
                    if sink_addr is not None:
                        old = yield Load(sink_addr)
                        yield Store(sink_addr, old + value)
                    return
                current = yield Load(current + NEXT)
                yield Branch(current)
                steps += 1

        return body

    def _remove_body(self, key):
        bucket = self._bucket_addr(key)

        def body():
            previous = 0
            current = yield Load(bucket)
            yield Branch(current)
            steps = 0
            while current != 0 and steps < MAX_CHAIN:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if current_key == key:
                    successor = yield Load(current + NEXT)
                    if previous == 0:
                        yield Store(bucket, successor)
                    else:
                        yield Store(previous + NEXT, successor)
                    return
                previous = current
                current = yield Load(current + NEXT)
                yield Branch(current)
                steps += 1

        return body

    def make_invocation(self, thread_id, rng):
        key = rng.randint(0, self.key_range - 1)
        roll = rng.random()
        if roll < 0.4:
            node = self._fresh_node(thread_id, key, key * 10)
            return self.invoke("put", self._put_body(key, key * 10, node))
        if roll < 0.7:
            return self.invoke("get", self._get_body(key, None))
        return self.invoke("remove", self._remove_body(key))

    # -- invariants (tests) --------------------------------------------------------

    def chain_keys(self, memory, bucket_index):
        """Keys in one chain; asserts no cycles and correct bucket residency."""
        keys = []
        seen = set()
        node = memory.peek(self.buckets_base + bucket_index * WORDS_PER_LINE)
        while node != 0:
            if node in seen:
                raise AssertionError("cycle in bucket {}".format(bucket_index))
            seen.add(node)
            key = memory.peek(node + KEY)
            if key % self.num_buckets != bucket_index:
                raise AssertionError("key {} in wrong bucket".format(key))
            keys.append(key)
            node = memory.peek(node + NEXT)
        return keys
