"""bst — unbalanced binary search tree with eager deletion [20, 33].

Three mutable ARs (insert / remove / contains): every operation chases
child pointers loaded inside the AR and branches on loaded keys.
Deletion is eager — one-child nodes are unlinked and two-child nodes
take the classic successor-swap (the successor's key is copied up and
the successor unlinked) — so the tree's shape and even node keys change
constantly, making every footprint genuinely mutable.

Node layout (one cacheline per node): [key, left, right].
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload

KEY = 0
LEFT = 1
RIGHT = 2

MAX_DEPTH = 64


class BstWorkload(Workload):
    """Unbalanced BST with eager (successor-swap) deletion."""
    name = "bst"

    def __init__(self, key_range=128, initial_keys=48,
                 ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        self.key_range = key_range
        self.initial_keys = initial_keys
        self.root_addr = None
        self._memory = None
        self._node_pool = None
        self._pool_next = None

    def region_specs(self):
        return [
            RegionSpec("insert", Mutability.MUTABLE, "BST insert (pointer chase)"),
            RegionSpec("remove", Mutability.MUTABLE, "BST eager delete"),
            RegionSpec("contains", Mutability.MUTABLE, "BST lookup"),
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self._memory = memory
        self.root_addr = allocator.alloc_lines(1)
        memory.poke(self.root_addr, 0)
        pool_size = max(1, self.ops_per_thread)
        self._node_pool = []
        self._pool_next = [0] * num_threads
        for _ in range(num_threads):
            base = allocator.alloc_lines(pool_size)
            self._node_pool.append(
                [base + index * WORDS_PER_LINE for index in range(pool_size)]
            )
        for key in rng.sample(range(self.key_range), min(self.initial_keys, self.key_range)):
            self._seed_insert(memory, allocator, key)

    def _seed_insert(self, memory, allocator, key):
        node = allocator.alloc_lines(1)
        memory.poke(node + KEY, key)
        current = memory.peek(self.root_addr)
        if current == 0:
            memory.poke(self.root_addr, node)
            return
        while True:
            current_key = memory.peek(current + KEY)
            if key == current_key:
                return
            child_offset = LEFT if key < current_key else RIGHT
            child = memory.peek(current + child_offset)
            if child == 0:
                memory.poke(current + child_offset, node)
                return
            current = child

    def _fresh_node(self, thread_id, key):
        pool = self._node_pool[thread_id]
        index = self._pool_next[thread_id] % len(pool)
        self._pool_next[thread_id] += 1
        node = pool[index]
        self._memory.poke(node + KEY, key)
        self._memory.poke(node + LEFT, 0)
        self._memory.poke(node + RIGHT, 0)
        return node

    # -- AR bodies -------------------------------------------------------------

    def _insert_body(self, key, node):
        root_addr = self.root_addr

        def body():
            current = yield Load(root_addr)
            yield Branch(current)
            if current == 0:
                yield Store(root_addr, node)
                return
            depth = 0
            while depth < MAX_DEPTH:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if key == current_key:
                    return  # already present
                child_offset = LEFT if key < current_key else RIGHT
                child = yield Load(current + child_offset)
                yield Branch(child)
                if child == 0:
                    yield Store(current + child_offset, node)
                    return
                current = child
                depth += 1

        return body

    def _remove_body(self, key):
        root_addr = self.root_addr

        def body():
            parent = 0
            parent_offset = 0
            current = yield Load(root_addr)
            yield Branch(current)
            depth = 0
            while current != 0 and depth < MAX_DEPTH:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if key == current_key:
                    left = yield Load(current + LEFT)
                    right = yield Load(current + RIGHT)
                    yield Branch(left)
                    yield Branch(right)
                    if left != 0 and right != 0:
                        # Successor swap: pull up the min of the right
                        # subtree, then unlink the successor node.
                        succ_parent = current
                        succ = right
                        succ_depth = 0
                        while succ_depth < MAX_DEPTH:
                            succ_left = yield Load(succ + LEFT)
                            yield Branch(succ_left)
                            if succ_left == 0:
                                break
                            succ_parent = succ
                            succ = succ_left
                            succ_depth += 1
                        succ_key = yield Load(succ + KEY)
                        succ_right = yield Load(succ + RIGHT)
                        yield Store(current + KEY, succ_key)
                        if succ_parent == current:
                            yield Store(succ_parent + RIGHT, int(succ_right))
                        else:
                            yield Store(succ_parent + LEFT, int(succ_right))
                    else:
                        replacement = left if left != 0 else right
                        if parent == 0:
                            yield Store(root_addr, int(replacement))
                        else:
                            yield Store(parent + parent_offset, int(replacement))
                    return
                parent = current
                parent_offset = LEFT if key < current_key else RIGHT
                current = yield Load(current + parent_offset)
                yield Branch(current)
                depth += 1

        return body

    def _contains_body(self, key, found_counter):
        root_addr = self.root_addr

        def body():
            current = yield Load(root_addr)
            yield Branch(current)
            depth = 0
            while current != 0 and depth < MAX_DEPTH:
                current_key = yield Load(current + KEY)
                yield Branch(current_key)
                if key == current_key:
                    if found_counter is not None:
                        count = yield Load(found_counter)
                        yield Store(found_counter, count + 1)
                    return
                offset = LEFT if key < current_key else RIGHT
                current = yield Load(current + offset)
                yield Branch(current)
                depth += 1

        return body

    def make_invocation(self, thread_id, rng):
        key = rng.randint(0, self.key_range - 1)
        roll = rng.random()
        if roll < 0.4:
            node = self._fresh_node(thread_id, key)
            return self.invoke("insert", self._insert_body(key, node))
        if roll < 0.7:
            return self.invoke("remove", self._remove_body(key))
        return self.invoke("contains", self._contains_body(key, None))

    # -- invariants (tests) -----------------------------------------------------

    def inorder_keys(self, memory):
        """Keys in order; asserts the search-tree property held."""
        keys = []

        def walk(node, low, high):
            if node == 0:
                return
            key = memory.peek(node + KEY)
            if not (low < key < high):
                raise AssertionError("BST property violated at key {}".format(key))
            walk(memory.peek(node + LEFT), low, key)
            keys.append(key)
            walk(memory.peek(node + RIGHT), key, high)

        walk(memory.peek(self.root_addr), float("-inf"), float("inf"))
        return keys
