"""All 19 evaluated benchmarks (paper §6), plus the corpus namespaces.

Data-structure benchmarks: arrayswap, bitcoin, bst, deque, hashmap,
mwobject, queue, stack, sorted-list. STAMP suite (synthetic kernels
preserving AR structure, footprint and contention): bayes, genome,
intruder, kmeans-h, kmeans-l, labyrinth, ssca2, vacation-h, vacation-l,
yada.

Beyond the built-ins, :func:`make_workload` resolves ``gen:<spec>``
seeded generated workloads (:mod:`repro.workloads.gen`) and
``trace:<folder>`` recorded-trace replays
(:mod:`repro.workloads.trace`); see DESIGN.md §16.
"""

from repro.workloads.base import Workload, RegionSpec, Mutability
from repro.workloads.registry import (
    WORKLOAD_FACTORIES,
    DATASTRUCTURE_NAMES,
    GEN_PREFIX,
    STAMP_NAMES,
    TRACE_PREFIX,
    ALL_NAMES,
    WORKLOAD_NAMESPACES,
    canonical_workload_name,
    make_workload,
    workload_cache_token,
)

__all__ = [
    "Workload",
    "RegionSpec",
    "Mutability",
    "WORKLOAD_FACTORIES",
    "DATASTRUCTURE_NAMES",
    "STAMP_NAMES",
    "ALL_NAMES",
    "GEN_PREFIX",
    "TRACE_PREFIX",
    "WORKLOAD_NAMESPACES",
    "canonical_workload_name",
    "make_workload",
    "workload_cache_token",
]
