"""All 19 evaluated benchmarks (paper §6).

Data-structure benchmarks: arrayswap, bitcoin, bst, deque, hashmap,
mwobject, queue, stack, sorted-list. STAMP suite (synthetic kernels
preserving AR structure, footprint and contention): bayes, genome,
intruder, kmeans-h, kmeans-l, labyrinth, ssca2, vacation-h, vacation-l,
yada.
"""

from repro.workloads.base import Workload, RegionSpec, Mutability
from repro.workloads.registry import (
    WORKLOAD_FACTORIES,
    DATASTRUCTURE_NAMES,
    STAMP_NAMES,
    ALL_NAMES,
    make_workload,
)

__all__ = [
    "Workload",
    "RegionSpec",
    "Mutability",
    "WORKLOAD_FACTORIES",
    "DATASTRUCTURE_NAMES",
    "STAMP_NAMES",
    "ALL_NAMES",
    "make_workload",
]
