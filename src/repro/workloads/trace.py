"""Recorded-trace workloads — the ``trace:`` namespace.

:func:`record_trace` runs any workload once and captures the run's
per-thread action stream — think times, atomic-region invocations with
their committed operation sequences, and the runtime initialization
pokes issued between ARs — to a versioned on-disk kernel folder:

``manifest.json``
    format/version, the source workload's name and region table, the
    recording config fingerprint and seed, the allocator high-water
    mark, per-file SHA-256 digests, and the folder's content digest.
``memory.json``
    the post-setup architectural memory snapshot (sorted
    ``[addr, value]`` pairs).
``thread-NN.jsonl``
    one compact JSON record per thread-level action: ``{"t": cycles}``
    for think time, ``{"r": region, "pokes": [[a, v], ...], "ops":
    [...]}`` for an invocation. Ops are ``["L", addr, taint]``,
    ``["S", addr, value, taint]``, ``["C", cycles, ops]``,
    ``["B", taint]``, or ``["A"]``.

One folder per kernel with a manifest naming versioned data files is
the ESL-CGRA corpus convention; the data files are written first and
the manifest (carrying their digests) last, so a torn recording is
detected rather than replayed.

:class:`TraceWorkload` replays a folder through the unchanged executor:
each recorded invocation becomes an AR whose body yields the recorded
ops with their taint reconstructed, so discovery, conflict detection,
retry policy, and the online monitor all operate on the replay exactly
as they would on a live run.

Recording captures the *committed* attempt of every invocation: the
executor creates one body generator per attempt, and instrumentation
replays (Fig. 1 footprint comparisons) always run strictly between
attempts, so the last generator created for an invocation is the one
that committed. The replay-based checkers (``oracle="shadow"`` /
``"cross-check"``) break that invariant by replaying at commit time,
so :func:`record_trace` downgrades them to ``"off"`` for the recording
run; the online monitor does not replay and may stay armed.
"""

import functools
import hashlib
import json
import os

from repro.common.errors import ConfigurationError, UnknownWorkloadError
from repro.core.indirection import TaintedValue
from repro.sim.program import (
    AbortOp,
    Branch,
    Compute,
    Invoke,
    Load,
    Store,
    Think,
)
from repro.workloads.base import Mutability, RegionSpec, Workload

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
MEMORY_FILENAME = "memory.json"


class TraceFormatError(ConfigurationError):
    """The folder is not a readable trace of this format/version."""


class TraceIntegrityError(TraceFormatError):
    """A trace data file is torn, truncated, or corrupt.

    Raised when a file's bytes do not match the digest the manifest
    recorded for it, or when a JSONL record fails to parse — the
    manifest is written last, so a mismatch means the folder was
    damaged after a complete recording.
    """


def _encode_op(op):
    kind = type(op)
    if kind is Load:
        return ["L", op.word_addr, 1 if op.addr_tainted else 0]
    if kind is Store:
        return ["S", op.word_addr, op.store_value, 1 if op.addr_tainted else 0]
    if kind is Compute:
        return ["C", op.cycles, op.ops]
    if kind is Branch:
        return ["B", 1 if op.condition_tainted else 0]
    if kind is AbortOp:
        return ["A"]
    raise TraceFormatError(
        "cannot record unsupported AR operation {!r}".format(op)
    )


def _recording_body(gen, ops):
    """Drive ``gen`` transparently, appending each yielded op to ``ops``."""
    send = None
    while True:
        try:
            op = gen.send(send)
        except StopIteration:
            return
        ops.append(_encode_op(op))
        send = yield op


class _RecordingWorkload:
    """Transparent wrapper capturing a workload's action stream.

    Proxies every attribute to the wrapped workload; overrides
    ``setup`` (to snapshot post-setup memory and the allocator
    high-water mark) and ``next_action`` (to log think times, capture
    runtime pokes, and wrap invocation body factories). Per-invocation
    op streams are kept per generator; the last-created generator's
    stream is the committed record (see the module docstring).
    """

    def __init__(self, inner):
        self._inner = inner
        self.records = None
        self._pending = None
        self._memory = None
        self.snapshot = None
        self.high_water = None

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def setup(self, memory, allocator, num_threads, rng):
        self._inner.setup(memory, allocator, num_threads, rng)
        self._memory = memory
        self.snapshot = memory.snapshot()
        self.high_water = allocator.high_water
        self.records = [[] for _ in range(num_threads)]
        self._pending = [None] * num_threads

    def next_action(self, thread_id, rng):
        self._flush(thread_id)
        pokes = []
        memory = self._memory
        previous = memory.poke_mirror

        def mirror(addr, value):
            pokes.append([addr, value])
            if previous is not None:
                previous(addr, value)

        memory.poke_mirror = mirror
        try:
            action = self._inner.next_action(thread_id, rng)
        finally:
            memory.poke_mirror = previous
        if action is None:
            return None
        if isinstance(action, Think):
            self.records[thread_id].append({"t": action.cycles})
            return action
        region = action.region_id
        record = {
            "r": list(region) if isinstance(region, tuple) else region,
            "pokes": pokes,
            "streams": [],
        }
        self._pending[thread_id] = record
        inner_factory = action.body_factory

        def recording_factory():
            ops = []
            record["streams"].append(ops)
            return _recording_body(inner_factory(), ops)

        return Invoke(region, recording_factory)

    def _flush(self, thread_id):
        record = self._pending[thread_id]
        if record is None:
            return
        self._pending[thread_id] = None
        if not record["streams"]:
            raise TraceFormatError(
                "invocation of region {!r} finished without any attempt "
                "stream; cannot record".format(record["r"])
            )
        self.records[thread_id].append({
            "r": record["r"],
            "pokes": record["pokes"],
            "ops": record["streams"][-1],
        })

    def finish(self):
        """Flush every thread's pending invocation; returns the records."""
        for thread_id in range(len(self.records)):
            self._flush(thread_id)
        return self.records


def record_trace(workload, out_dir, *, config=None, seed=1,
                 ops_per_thread=None, io=None):
    """Run ``workload`` once and write its trace folder to ``out_dir``.

    ``workload`` is a registry name (any namespace) or a
    :class:`~repro.workloads.base.Workload` instance; ``config`` is a
    :class:`~repro.sim.config.SimConfig`, a design name, or ``None``
    for defaults. Replay-based checker modes are downgraded to
    ``"off"`` for the recording run (see the module docstring); the
    online monitor may stay armed. Returns the manifest dict.
    """
    from repro.api import _resolve_config
    from repro.sim.machine import build_machine

    if io is None:
        from repro.common.diskio import DiskIO

        io = DiskIO()
    if isinstance(workload, str):
        from repro.workloads.registry import make_workload

        kwargs = {}
        if ops_per_thread is not None:
            kwargs["ops_per_thread"] = ops_per_thread
        inner = make_workload(workload, **kwargs)
    else:
        inner = workload
    config = _resolve_config(config)
    if config.oracle in ("shadow", "cross-check"):
        config = config.replaced(oracle="off")
    recorder = _RecordingWorkload(inner)
    machine = build_machine(config, recorder, seed=seed)
    stats = machine.run()
    records = recorder.finish()

    os.makedirs(out_dir, exist_ok=True)
    words = sorted([addr, value] for addr, value in recorder.snapshot.items())
    memory_bytes = (
        json.dumps(
            {"format": TRACE_FORMAT, "version": TRACE_VERSION, "words": words},
            separators=(",", ":"),
        ).encode("utf-8") + b"\n"
    )
    io.write_atomic(os.path.join(out_dir, MEMORY_FILENAME), memory_bytes)
    file_digests = [hashlib.sha256(memory_bytes).hexdigest()]
    threads = []
    for thread_id, actions in enumerate(records):
        filename = "thread-{:02d}.jsonl".format(thread_id)
        lines = [
            json.dumps(action, separators=(",", ":")) for action in actions
        ]
        data = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
        io.write_atomic(os.path.join(out_dir, filename), data)
        digest = hashlib.sha256(data).hexdigest()
        file_digests.append(digest)
        threads.append({
            "file": filename,
            "sha256": digest,
            "actions": len(actions),
            "invocations": sum(1 for action in actions if "r" in action),
        })
    content = hashlib.sha256(
        "".join(file_digests).encode("utf-8")
    ).hexdigest()
    manifest = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "workload": inner.name,
        "num_threads": len(records),
        "seed": seed,
        "ops_per_thread": inner.ops_per_thread,
        "think_cycles": list(inner.think_cycles),
        "config_fingerprint": config.fingerprint(),
        "design": config.design,
        "region_specs": [
            {"name": spec.name, "mutability": spec.mutability.value}
            for spec in inner.region_specs()
        ],
        "alloc_high_water": recorder.high_water,
        "total_commits": stats.total_commits,
        "memory": {
            "file": MEMORY_FILENAME,
            "sha256": file_digests[0],
            "words": len(words),
        },
        "threads": threads,
        "content_digest": content,
    }
    io.write_atomic(
        os.path.join(out_dir, MANIFEST_FILENAME),
        json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
    )
    return manifest


def read_manifest(path):
    """Load and format-check a trace folder's manifest."""
    manifest_path = os.path.join(path, MANIFEST_FILENAME)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise UnknownWorkloadError(
            "no recorded trace at {!r} (missing {})".format(
                path, MANIFEST_FILENAME
            )
        ) from None
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            "trace manifest {!r} is not valid JSON: {}".format(
                manifest_path, exc
            )
        ) from None
    if manifest.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            "{!r} is not a recorded trace (format {!r})".format(
                path, manifest.get("format")
            )
        )
    if manifest.get("version") != TRACE_VERSION:
        raise TraceFormatError(
            "trace {!r} has version {!r}; this build replays version "
            "{}".format(path, manifest.get("version"), TRACE_VERSION)
        )
    return manifest


@functools.lru_cache(maxsize=None)
def manifest_digest(path):
    """The folder's recorded content digest (the trace's cache token).

    Cached per path: trace folders are immutable once recorded (the
    manifest is the write commit point), and the engine asks for the
    token on every cache-key computation.
    """
    return read_manifest(path)["content_digest"]


def _verified_bytes(path, filename, expected_sha):
    file_path = os.path.join(path, filename)
    try:
        with open(file_path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise TraceIntegrityError(
            "trace file {!r} is missing from {!r}".format(filename, path)
        ) from None
    actual = hashlib.sha256(data).hexdigest()
    if actual != expected_sha:
        raise TraceIntegrityError(
            "trace file {!r} is torn or corrupt: digest {} does not match "
            "the manifest's {}".format(filename, actual, expected_sha)
        )
    return data


class TraceWorkload(Workload):
    """Replay a recorded trace folder as atomic regions.

    ``ops_per_thread`` is accepted (the experiment scripts pass it to
    every workload) but ignored: a recorded trace has a fixed length.
    ``num_threads`` at setup may exceed the recorded thread count
    (extra threads finish immediately) but not undercut it.
    """

    def __init__(self, path, ops_per_thread=None, think_cycles=None):
        self.path = path
        manifest = read_manifest(path)
        self._manifest = manifest
        self._recorded_threads = manifest["num_threads"]
        self._actions = []
        for entry in manifest["threads"]:
            data = _verified_bytes(path, entry["file"], entry["sha256"])
            actions = []
            for line_no, line in enumerate(data.splitlines(), start=1):
                try:
                    actions.append(json.loads(line))
                except json.JSONDecodeError:
                    raise TraceIntegrityError(
                        "trace file {!r} line {} is not valid JSON".format(
                            entry["file"], line_no
                        )
                    ) from None
            if len(actions) != entry["actions"]:
                raise TraceIntegrityError(
                    "trace file {!r} holds {} action(s); the manifest "
                    "recorded {}".format(
                        entry["file"], len(actions), entry["actions"]
                    )
                )
            self._actions.append(actions)
        memory_entry = manifest["memory"]
        data = _verified_bytes(
            path, memory_entry["file"], memory_entry["sha256"]
        )
        try:
            payload = json.loads(data)
        except json.JSONDecodeError:
            raise TraceIntegrityError(
                "trace memory file {!r} is not valid JSON".format(
                    memory_entry["file"]
                )
            ) from None
        self._memory_words = payload["words"]
        self._high_water = manifest["alloc_high_water"]
        # The recorded per-thread action count bounds the replay; the
        # base-class counters are bookkeeping only (next_action is
        # fully overridden).
        super().__init__(
            ops_per_thread=max(
                (entry["invocations"] for entry in manifest["threads"]),
                default=0,
            ),
            think_cycles=tuple(manifest["think_cycles"]),
        )
        self.name = "trace:" + manifest["workload"]
        self._memory = None
        self._cursors = None

    @property
    def manifest(self):
        """The trace folder's manifest dict (read-only use)."""
        return self._manifest

    def region_specs(self):
        return [
            RegionSpec(entry["name"], Mutability(entry["mutability"]))
            for entry in self._manifest["region_specs"]
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        if num_threads < self._recorded_threads:
            raise ConfigurationError(
                "trace {!r} was recorded with {} thread(s); the config "
                "provides only {}".format(
                    self.path, self._recorded_threads, num_threads
                )
            )
        for addr, value in self._memory_words:
            memory.poke(addr, value)
        delta = self._high_water - allocator.high_water
        if delta > 0:
            allocator.alloc(delta)
        self._memory = memory
        self._cursors = [0] * num_threads

    def make_invocation(self, thread_id, rng):
        raise NotImplementedError(
            "TraceWorkload drives next_action directly"
        )

    def next_action(self, thread_id, rng):
        if thread_id >= self._recorded_threads:
            return None
        actions = self._actions[thread_id]
        cursor = self._cursors[thread_id]
        if cursor >= len(actions):
            return None
        self._cursors[thread_id] = cursor + 1
        record = actions[cursor]
        if "t" in record:
            return Think(record["t"])
        for addr, value in record["pokes"]:
            self._memory.poke(addr, value)
        region = record["r"]
        region_id = tuple(region) if isinstance(region, list) else region
        return Invoke(region_id, _replay_factory(record["ops"]))


def _replay_factory(ops):
    """Body factory yielding the recorded ops with taint reconstructed."""

    def body():
        for op in ops:
            kind = op[0]
            if kind == "L":
                addr = TaintedValue(op[1], True) if op[2] else op[1]
                yield Load(addr)
            elif kind == "S":
                addr = TaintedValue(op[1], True) if op[3] else op[1]
                yield Store(addr, op[2])
            elif kind == "C":
                yield Compute(op[1], op[2])
            elif kind == "B":
                yield Branch(TaintedValue(1, True) if op[1] else 0)
            elif kind == "A":
                yield AbortOp()
            else:
                raise TraceFormatError(
                    "unknown recorded op kind {!r}".format(kind)
                )

    return body
