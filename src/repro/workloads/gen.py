"""Seeded parametric workload generator — the ``gen:`` namespace.

A :class:`GenSpec` is a frozen description of a synthetic benchmark
sweeping the axes Table 1 fixes per hand-written kernel: footprint size
(lines touched per atomic region), mutability class (§3 taxonomy),
contention/sharing degree, read/write mix, and AR nesting depth. It
compiles into :class:`GeneratedWorkload`, a real
:class:`~repro.workloads.base.Workload` whose per-seed behaviour is
deterministic and whose stores are all commutative increments — so the
final shared-memory state is schedule-invariant and generated workloads
pass the state-equality oracle on every explored schedule.

Specs have three interchangeable spellings, all resolved by
``make_workload("gen:<...>")``:

- a compact spec string (``footprint=8,mutability=mutable``; omitted
  keys take their defaults, and the empty string is the default spec);
- a kernel folder (or ``genspec.json`` path) written by
  :func:`save_gen_spec` / ``scripts/gen_corpus.py``;
- a fingerprint (hex prefix, >= 12 chars) of a spec previously
  registered in this process via :func:`register_spec` /
  :func:`load_corpus`.

The fingerprint is a SHA-256 over the spec's canonical JSON (all
fields, plus the format version), so it is stable across processes and
machines; the canonical *spec string* is self-contained and is what the
experiment engine ships to worker processes.
"""

import dataclasses
import json
import os
import re

from repro.common.constants import WORDS_PER_LINE
from repro.common.errors import ConfigurationError, UnknownWorkloadError
from repro.common.serialize import canonical_digest
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload

GENSPEC_FORMAT = "repro-genspec"
GENSPEC_VERSION = 1
GENSPEC_FILENAME = "genspec.json"

#: Legal values of :attr:`GenSpec.mutability`. ``"mixed"`` cycles the
#: three §3 classes across the spec's regions.
MUTABILITY_CLASSES = ("immutable", "likely_immutable", "mutable", "mixed")

_MIXED_CYCLE = (
    Mutability.IMMUTABLE, Mutability.LIKELY_IMMUTABLE, Mutability.MUTABLE,
)

_FINGERPRINT_RE = re.compile(r"[0-9a-f]{12,64}")

#: Stride of the mutable regions' moving window (coprime with the pool
#: sizes in practice, so successive windows genuinely move).
_WINDOW_STEP = 3


@dataclasses.dataclass(frozen=True)
class GenSpec:
    """Frozen description of one generated benchmark.

    ``regions``          static ARs the workload exposes.
    ``footprint``        cachelines each sub-body touches.
    ``mutability``       §3 class of every region, or ``"mixed"``.
    ``contention``       probability a sub-body targets the shared hot
                         pool instead of the invoking thread's private
                         pool.
    ``read_fraction``    fraction of touched lines that are read-only.
    ``nesting``          flattened sub-bodies per AR invocation.
    ``hot_lines``        size of the shared hot pool (cachelines).
    ``private_lines``    size of each thread-private pool (cachelines).
    """

    regions: int = 2
    footprint: int = 4
    mutability: str = "mixed"
    contention: float = 0.5
    read_fraction: float = 0.25
    nesting: int = 1
    hot_lines: int = 8
    private_lines: int = 16

    def __post_init__(self):
        # Normalize numeric types up front so equal-valued specs have
        # identical canonical strings and fingerprints regardless of
        # whether the caller spelled 1 or 1.0.
        for name in ("regions", "footprint", "nesting", "hot_lines",
                     "private_lines"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("contention", "read_fraction"):
            object.__setattr__(self, name, float(getattr(self, name)))
        if self.regions < 1:
            raise ConfigurationError("gen spec needs regions >= 1")
        if self.footprint < 1:
            raise ConfigurationError("gen spec needs footprint >= 1")
        if self.mutability not in MUTABILITY_CLASSES:
            raise ConfigurationError(
                "gen spec mutability must be one of {}, not {!r}".format(
                    "/".join(MUTABILITY_CLASSES), self.mutability
                )
            )
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigurationError("gen spec contention must be in [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("gen spec read_fraction must be in [0, 1]")
        if self.nesting < 1:
            raise ConfigurationError("gen spec needs nesting >= 1")
        if self.hot_lines < self.footprint:
            raise ConfigurationError(
                "gen spec needs hot_lines >= footprint ({} < {})".format(
                    self.hot_lines, self.footprint
                )
            )
        if self.private_lines < self.footprint:
            raise ConfigurationError(
                "gen spec needs private_lines >= footprint ({} < {})".format(
                    self.private_lines, self.footprint
                )
            )

    # -- spellings -----------------------------------------------------------

    def canonical(self):
        """Self-contained spec string: non-default fields, declaration order.

        ``parse_gen_spec(spec.canonical())`` reconstructs an equal spec,
        and equal specs produce identical canonical strings — this is
        the spelling the engine ships across process boundaries.
        """
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append("{}={}".format(field.name, value))
        return ",".join(parts)

    def to_dict(self):
        """All fields (defaults included) as a JSON-serializable dict."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                "gen spec has unknown field(s) {}".format(sorted(unknown))
            )
        return cls(**data)

    def fingerprint(self):
        """Stable SHA-256 content address of this spec."""
        return canonical_digest(
            {"format": GENSPEC_FORMAT, "version": GENSPEC_VERSION,
             "spec": self.to_dict()}
        )


# Fingerprint (full and 12-char prefix) -> registered GenSpec, for the
# ``gen:<fingerprint>`` spelling. Process-local by design: the engine
# canonicalizes fingerprints to full spec strings before fan-out, so
# worker processes never need the index populated.
_SPEC_INDEX = {}


def register_spec(spec):
    """Make ``spec`` resolvable as ``gen:<fingerprint>``; returns the fingerprint."""
    fingerprint = spec.fingerprint()
    _SPEC_INDEX[fingerprint] = spec
    _SPEC_INDEX[fingerprint[:12]] = spec
    return fingerprint


def _coerce(field, text):
    if field.type is int or field.default.__class__ is int:
        return int(text)
    if field.default.__class__ is float:
        return float(text)
    return text


def _parse_spec_string(text):
    values = {}
    fields = {field.name: field for field in dataclasses.fields(GenSpec)}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in fields:
            raise UnknownWorkloadError(
                "bad gen spec entry {!r}; expected key=value with keys "
                "{}".format(part, "/".join(sorted(fields)))
            )
        try:
            values[key] = _coerce(fields[key], raw.strip())
        except ValueError:
            raise UnknownWorkloadError(
                "bad gen spec value {!r} for key {!r}".format(raw.strip(), key)
            ) from None
    return GenSpec(**values)


def save_gen_spec(spec, folder, io=None):
    """Write ``folder/genspec.json`` for ``spec``; returns the file path.

    The file is the on-disk kernel format's spec leaf: a versioned
    manifest carrying the full field dict and the fingerprint, written
    atomically so readers never see a torn spec.
    """
    if io is None:
        from repro.common.diskio import DiskIO

        io = DiskIO()
    payload = {
        "format": GENSPEC_FORMAT,
        "version": GENSPEC_VERSION,
        "spec": spec.to_dict(),
        "fingerprint": spec.fingerprint(),
    }
    path = os.path.join(folder, GENSPEC_FILENAME)
    io.write_atomic(
        path, json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
    )
    return path


def load_gen_spec(path):
    """Load a spec from a kernel folder or a ``genspec.json`` path.

    Registers the spec's fingerprint as a side effect, so a loaded
    corpus is immediately addressable by prefix.
    """
    if os.path.isdir(path):
        path = os.path.join(path, GENSPEC_FILENAME)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise UnknownWorkloadError(
            "no gen spec at {!r} (expected a kernel folder containing "
            "{} or the file itself)".format(path, GENSPEC_FILENAME)
        ) from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            "gen spec {!r} is not valid JSON: {}".format(path, exc)
        ) from None
    if payload.get("format") != GENSPEC_FORMAT:
        raise ConfigurationError(
            "{!r} is not a gen spec (format {!r})".format(
                path, payload.get("format")
            )
        )
    if payload.get("version") != GENSPEC_VERSION:
        raise ConfigurationError(
            "gen spec {!r} has version {!r}; this build reads version "
            "{}".format(path, payload.get("version"), GENSPEC_VERSION)
        )
    spec = GenSpec.from_dict(payload.get("spec", {}))
    recorded = payload.get("fingerprint")
    if recorded is not None and recorded != spec.fingerprint():
        raise ConfigurationError(
            "gen spec {!r} is corrupt: recorded fingerprint {} does not "
            "match the spec's {}".format(path, recorded, spec.fingerprint())
        )
    register_spec(spec)
    return spec


def load_corpus(directory):
    """Register every kernel folder under ``directory``.

    Returns ``{fingerprint: GenSpec}`` for each immediate subfolder (or
    ``directory`` itself) containing a ``genspec.json``.
    """
    specs = {}
    candidates = [directory]
    try:
        entries = sorted(os.listdir(directory))
    except FileNotFoundError:
        raise UnknownWorkloadError(
            "no corpus directory at {!r}".format(directory)
        ) from None
    candidates.extend(os.path.join(directory, entry) for entry in entries)
    for folder in candidates:
        if os.path.isfile(os.path.join(folder, GENSPEC_FILENAME)):
            spec = load_gen_spec(folder)
            specs[spec.fingerprint()] = spec
    return specs


def parse_gen_spec(text):
    """Resolve the ``gen:`` namespace argument to a :class:`GenSpec`.

    Accepts a spec string (possibly empty: the default spec), a kernel
    folder / ``genspec.json`` path, or a registered fingerprint prefix.
    """
    text = text.strip()
    if not text:
        return GenSpec()
    if _FINGERPRINT_RE.fullmatch(text):
        spec = _SPEC_INDEX.get(text)
        if spec is None:
            for fingerprint, candidate in _SPEC_INDEX.items():
                if fingerprint.startswith(text):
                    return candidate
            raise UnknownWorkloadError(
                "gen fingerprint {!r} is not registered in this process; "
                "pass the full spec string, the kernel folder, or load "
                "the corpus first (repro.workloads.gen.load_corpus)".format(
                    text
                )
            )
        return spec
    if (os.sep in text or text.endswith(".json")
            or os.path.exists(os.path.join(text, GENSPEC_FILENAME))):
        return load_gen_spec(text)
    return _parse_spec_string(text)


def make_generated(arg, **kwargs):
    """``make_workload`` entry point for ``gen:<arg>``."""
    return GeneratedWorkload(parse_gen_spec(arg), **kwargs)


class GeneratedWorkload(Workload):
    """A :class:`GenSpec` compiled to a runnable benchmark.

    Memory layout (per :meth:`setup`): one shared hot pool, one private
    pool per thread, a stable indirection table per pool (slot ``i``
    holds line ``i``'s base word address — the Listing 2 shape), and one
    private cursor word per thread driving the mutable regions' moving
    windows. Every store is a ``+1`` increment (cursors advance by the
    window size), so generated workloads commute: the final memory
    state is identical across schedules, backends, and engine fan-out —
    the property the determinism suites pin.
    """

    def __init__(self, spec=None, ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread=ops_per_thread,
                         think_cycles=think_cycles)
        self.spec = spec if spec is not None else GenSpec()
        self.name = "gen:" + self.spec.canonical()
        self._regions = [
            RegionSpec(
                "r{:02d}".format(index),
                self._region_mutability(index),
                "generated {} region".format(
                    self._region_mutability(index).value
                ),
            )
            for index in range(self.spec.regions)
        ]

    def _region_mutability(self, index):
        if self.spec.mutability == "mixed":
            return _MIXED_CYCLE[index % len(_MIXED_CYCLE)]
        return Mutability(self.spec.mutability)

    def region_specs(self):
        return list(self._regions)

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        spec = self.spec
        self._hot_base = allocator.alloc_lines(spec.hot_lines)
        self._hot_table = allocator.alloc(spec.hot_lines, align_line=True)
        for line in range(spec.hot_lines):
            memory.poke(
                self._hot_table + line,
                self._hot_base + line * WORDS_PER_LINE,
            )
        self._private_bases = []
        self._private_tables = []
        for thread in range(num_threads):
            base = allocator.alloc_lines(spec.private_lines)
            table = allocator.alloc(spec.private_lines, align_line=True)
            for line in range(spec.private_lines):
                memory.poke(table + line, base + line * WORDS_PER_LINE)
            self._private_bases.append(base)
            self._private_tables.append(table)
        cursor_base = allocator.alloc_lines(num_threads)
        self._cursors = [
            cursor_base + thread * WORDS_PER_LINE
            for thread in range(num_threads)
        ]

    def make_invocation(self, thread_id, rng):
        spec = self.spec
        index = rng.randint(0, spec.regions - 1)
        mutability = self._regions[index].mutability
        subs = [
            self._make_sub_body(thread_id, mutability, rng)
            for _ in range(spec.nesting)
        ]

        def body():
            for sub in subs:
                yield from sub()

        return self.invoke(self._regions[index].name, body)

    def _pool_for(self, thread_id, rng):
        spec = self.spec
        if rng.random() < spec.contention:
            return self._hot_base, self._hot_table, spec.hot_lines
        return (
            self._private_bases[thread_id],
            self._private_tables[thread_id],
            spec.private_lines,
        )

    def _make_sub_body(self, thread_id, mutability, rng):
        spec = self.spec
        base, table, pool_lines = self._pool_for(thread_id, rng)
        reads = [
            rng.random() < spec.read_fraction for _ in range(spec.footprint)
        ]
        if mutability is Mutability.IMMUTABLE:
            # Listing 1 shape: addresses fixed before the AR begins.
            addrs = [
                base + line * WORDS_PER_LINE
                for line in rng.sample(range(pool_lines), spec.footprint)
            ]

            def sub():
                for addr, read_only in zip(addrs, reads):
                    value = yield Load(addr)
                    if not read_only:
                        yield Store(addr, value + 1)

            return sub
        if mutability is Mutability.LIKELY_IMMUTABLE:
            # Listing 2 shape: targets loaded from a stable table, so
            # the record addresses are tainted indirections.
            slots = rng.sample(range(pool_lines), spec.footprint)

            def sub():
                for slot, read_only in zip(slots, reads):
                    target = yield Load(table + slot)
                    value = yield Load(target)
                    if not read_only:
                        yield Store(target, value + 1)

            return sub
        # Listing 3 shape: a cursor-driven window that moves on every
        # commit, behind a tainted branch — a genuinely mutating
        # footprint. The cursor is thread-private, so the window
        # sequence is schedule-independent and the stores still commute.
        cursor = self._cursors[thread_id]
        count = spec.footprint

        def sub():
            position = yield Load(cursor)
            yield Branch(position)
            start = int(position)
            for index in range(count):
                line = (start + index * _WINDOW_STEP) % pool_lines
                addr = base + line * WORDS_PER_LINE
                value = yield Load(addr)
                if not reads[index]:
                    yield Store(addr, value + 1)
            yield Store(cursor, position + count)

        return sub
