"""Reusable atomic-region body patterns.

Bodies are generator functions over :mod:`repro.sim.program` ops. The
patterns here cover the three mutability archetypes of paper §3:

- *direct* patterns (Listing 1, arrayswap): addresses known before the
  AR → immutable footprint;
- *indirect* patterns (Listing 2, bitcoin): addresses loaded from
  tables inside the AR → likely immutable when the tables are stable;
- *traversal* patterns (Listing 3, sorted-list): pointer chasing with
  data-dependent branches → mutable footprint.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Compute, Load, Store


def counter_increment(addr, delta=1):
    """Immutable: read-modify-write one fixed word."""

    def body():
        value = yield Load(addr)
        yield Store(addr, value + delta)

    return body


def direct_swap(addr_a, addr_b):
    """Immutable: Listing 1 — swap two pre-computed locations."""

    def body():
        value_a = yield Load(addr_a)
        value_b = yield Load(addr_b)
        yield Store(addr_a, value_b)
        yield Store(addr_b, value_a)

    return body


def direct_multi_rmw(addrs, delta=1, compute_between=0):
    """Immutable: increment several pre-computed locations."""

    def body():
        for addr in addrs:
            value = yield Load(addr)
            if compute_between:
                yield Compute(compute_between)
            yield Store(addr, value + delta)

    return body


def indirect_transfer(ptr_from_addr, ptr_to_addr, amount, field_offset=0):
    """Likely immutable: Listing 2 — transfer through pointer table.

    Loads two pointers from stable table slots and moves ``amount``
    between the records they point to. The record addresses are tainted
    (loaded inside the AR), so discovery sees an indirection; the
    footprint only mutates if some concurrent AR rewrites the table.
    """

    def body():
        ptr_from = yield Load(ptr_from_addr)
        ptr_to = yield Load(ptr_to_addr)
        balance_from = yield Load(ptr_from + field_offset)
        balance_to = yield Load(ptr_to + field_offset)
        yield Store(ptr_from + field_offset, balance_from - amount)
        yield Store(ptr_to + field_offset, balance_to + amount)

    return body


def indirect_rmw(index_addr, base, stride=WORDS_PER_LINE, delta=1):
    """Likely immutable: update a slot selected by an in-memory index."""

    def body():
        index = yield Load(index_addr)
        slot = base + index * stride
        value = yield Load(slot)
        yield Store(slot, value + delta)

    return body


def list_traverse_count(head_addr, match_value, max_steps=64,
                        next_offset=1, data_offset=0, count_addr=None):
    """Mutable: Listing 3 — walk a null-terminated list counting matches."""

    def body():
        matches = 0
        current = yield Load(head_addr)
        yield Branch(current)
        steps = 0
        while current != 0 and steps < max_steps:
            data = yield Load(current + data_offset)
            yield Branch(data)
            if data == match_value:
                matches += 1
            current = yield Load(current + next_offset)
            yield Branch(current)
            steps += 1
        if count_addr is not None:
            total = yield Load(count_addr)
            yield Store(count_addr, total + matches)

    return body


def scatter_updates(addrs, delta=1, taint_seed_addr=None):
    """Mutable-footprint scatter: update many lines, optionally after a
    data-dependent branch (used by the larger STAMP kernels)."""

    def body():
        if taint_seed_addr is not None:
            seed = yield Load(taint_seed_addr)
            yield Branch(seed)
        for addr in addrs:
            value = yield Load(addr)
            yield Store(addr, value + delta)

    return body


def dynamic_scatter(cursor_addr, base, pool_lines, count,
                    stride=WORDS_PER_LINE, step=7):
    """Mutable: touch ``count`` lines selected by an in-memory cursor.

    The cursor advances on every commit, so a retried execution walks a
    *different* window of the pool — a genuinely mutating footprint, the
    signature of labyrinth/yada-style regions.
    """

    def body():
        cursor = yield Load(cursor_addr)
        yield Branch(cursor)
        position = int(cursor)
        for index in range(count):
            slot = base + ((position + index * step) % pool_lines) * stride
            value = yield Load(slot)
            yield Store(slot, value + 1)
        yield Store(cursor_addr, cursor + count)

    return body


def read_mostly_scan(addrs, write_addr=None, delta=1):
    """Large read set, tiny write set (capacity-pressure pattern)."""

    def body():
        total = 0
        for addr in addrs:
            value = yield Load(addr)
            total = total + value
        if write_addr is not None:
            old = yield Load(write_addr)
            yield Store(write_addr, old + delta)

    return body
