"""Benchmark registry: paper name → workload factory.

Names match the paper's figures exactly (including the ``kmeans-h`` /
``kmeans-l`` and ``vacation-h`` / ``vacation-l`` input variants).
"""

from repro.workloads.datastructures import (
    ArraySwapWorkload,
    BitcoinWorkload,
    BstWorkload,
    DequeWorkload,
    HashmapWorkload,
    MwObjectWorkload,
    QueueWorkload,
    StackWorkload,
    SortedListWorkload,
)
from repro.workloads.stamp import (
    BayesWorkload,
    GenomeWorkload,
    IntruderWorkload,
    KmeansHighWorkload,
    KmeansLowWorkload,
    LabyrinthWorkload,
    Ssca2Workload,
    VacationHighWorkload,
    VacationLowWorkload,
    YadaWorkload,
)

WORKLOAD_FACTORIES = {
    "arrayswap": ArraySwapWorkload,
    "bitcoin": BitcoinWorkload,
    "bst": BstWorkload,
    "deque": DequeWorkload,
    "hashmap": HashmapWorkload,
    "mwobject": MwObjectWorkload,
    "queue": QueueWorkload,
    "stack": StackWorkload,
    "sorted-list": SortedListWorkload,
    "bayes": BayesWorkload,
    "genome": GenomeWorkload,
    "intruder": IntruderWorkload,
    "kmeans-h": KmeansHighWorkload,
    "kmeans-l": KmeansLowWorkload,
    "labyrinth": LabyrinthWorkload,
    "ssca2": Ssca2Workload,
    "vacation-h": VacationHighWorkload,
    "vacation-l": VacationLowWorkload,
    "yada": YadaWorkload,
}

DATASTRUCTURE_NAMES = (
    "arrayswap", "bitcoin", "bst", "deque", "hashmap",
    "mwobject", "queue", "stack", "sorted-list",
)

STAMP_NAMES = (
    "bayes", "genome", "intruder", "kmeans-h", "kmeans-l",
    "labyrinth", "ssca2", "vacation-h", "vacation-l", "yada",
)

ALL_NAMES = DATASTRUCTURE_NAMES + STAMP_NAMES


def make_workload(name, **kwargs):
    """Instantiate a benchmark by its paper name."""
    try:
        factory = WORKLOAD_FACTORIES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark {!r}; choose from {}".format(name, sorted(WORKLOAD_FACTORIES))
        )
    return factory(**kwargs)
