"""Benchmark registry: workload name → workload instance.

Three namespaces resolve through :func:`make_workload`:

- **built-in names** — the paper's 19 kernels, matching its figures
  exactly (including the ``kmeans-h``/``kmeans-l`` and
  ``vacation-h``/``vacation-l`` input variants);
- ``gen:<spec|fingerprint|folder>`` — seeded parametric workloads from
  :mod:`repro.workloads.gen`;
- ``trace:<folder>`` — recorded-trace replays from
  :mod:`repro.workloads.trace`.

:func:`canonical_workload_name` rewrites a name to its self-contained
spelling (the one worker processes can resolve without shared state),
and :func:`workload_cache_token` supplies the extra content-address
material namespaced workloads contribute to engine cache keys.
"""

import os

from repro.common.errors import UnknownWorkloadError
from repro.workloads.datastructures import (
    ArraySwapWorkload,
    BitcoinWorkload,
    BstWorkload,
    DequeWorkload,
    HashmapWorkload,
    MwObjectWorkload,
    QueueWorkload,
    StackWorkload,
    SortedListWorkload,
)
from repro.workloads.stamp import (
    BayesWorkload,
    GenomeWorkload,
    IntruderWorkload,
    KmeansHighWorkload,
    KmeansLowWorkload,
    LabyrinthWorkload,
    Ssca2Workload,
    VacationHighWorkload,
    VacationLowWorkload,
    YadaWorkload,
)

WORKLOAD_FACTORIES = {
    "arrayswap": ArraySwapWorkload,
    "bitcoin": BitcoinWorkload,
    "bst": BstWorkload,
    "deque": DequeWorkload,
    "hashmap": HashmapWorkload,
    "mwobject": MwObjectWorkload,
    "queue": QueueWorkload,
    "stack": StackWorkload,
    "sorted-list": SortedListWorkload,
    "bayes": BayesWorkload,
    "genome": GenomeWorkload,
    "intruder": IntruderWorkload,
    "kmeans-h": KmeansHighWorkload,
    "kmeans-l": KmeansLowWorkload,
    "labyrinth": LabyrinthWorkload,
    "ssca2": Ssca2Workload,
    "vacation-h": VacationHighWorkload,
    "vacation-l": VacationLowWorkload,
    "yada": YadaWorkload,
}

DATASTRUCTURE_NAMES = (
    "arrayswap", "bitcoin", "bst", "deque", "hashmap",
    "mwobject", "queue", "stack", "sorted-list",
)

STAMP_NAMES = (
    "bayes", "genome", "intruder", "kmeans-h", "kmeans-l",
    "labyrinth", "ssca2", "vacation-h", "vacation-l", "yada",
)

ALL_NAMES = DATASTRUCTURE_NAMES + STAMP_NAMES

GEN_PREFIX = "gen:"
TRACE_PREFIX = "trace:"

#: Human-readable description of every resolvable namespace, used by
#: the unknown-name error and the CLI help strings.
WORKLOAD_NAMESPACES = (
    "a built-in benchmark name",
    "gen:<spec|fingerprint|folder> (seeded generator)",
    "trace:<folder> (recorded trace)",
)


def _unknown(name):
    return UnknownWorkloadError(
        "unknown workload {!r}; expected {} — built-in names: {}".format(
            name, ", ".join(WORKLOAD_NAMESPACES),
            ", ".join(sorted(WORKLOAD_FACTORIES)),
        )
    )


def make_workload(name, **kwargs):
    """Instantiate a workload by name (any namespace)."""
    if isinstance(name, str):
        if name.startswith(GEN_PREFIX):
            from repro.workloads.gen import make_generated

            return make_generated(name[len(GEN_PREFIX):], **kwargs)
        if name.startswith(TRACE_PREFIX):
            from repro.workloads.trace import TraceWorkload

            return TraceWorkload(name[len(TRACE_PREFIX):], **kwargs)
    try:
        factory = WORKLOAD_FACTORIES[name]
    except (KeyError, TypeError):
        raise _unknown(name) from None
    return factory(**kwargs)


def canonical_workload_name(name):
    """The self-contained spelling of ``name``.

    Built-in names pass through; ``gen:`` arguments (spec strings,
    fingerprints, kernel folders) become the canonical spec string; a
    ``trace:`` folder becomes its absolute path. The result resolves in
    any process — this is what the experiment engine ships to workers.
    Raises :class:`~repro.common.errors.UnknownWorkloadError` when the
    name matches no namespace.
    """
    if isinstance(name, str):
        if name.startswith(GEN_PREFIX):
            from repro.workloads.gen import parse_gen_spec

            return GEN_PREFIX + parse_gen_spec(name[len(GEN_PREFIX):]).canonical()
        if name.startswith(TRACE_PREFIX):
            from repro.workloads.trace import read_manifest

            path = os.path.abspath(name[len(TRACE_PREFIX):])
            read_manifest(path)
            return TRACE_PREFIX + path
    if name in WORKLOAD_FACTORIES:
        return name
    raise _unknown(name)


def workload_cache_token(name):
    """Extra cache-key material for namespaced workloads, or ``None``.

    Built-in names are fully described by the name itself, so they
    contribute nothing (their cache keys stay byte-identical to every
    earlier release). A ``gen:`` name contributes the spec fingerprint
    and a ``trace:`` name the folder's recorded content digest, so two
    different traces at the same path — or a re-generated spec behind
    the same fingerprint prefix — can never alias a cached result.
    """
    if isinstance(name, str):
        if name.startswith(GEN_PREFIX):
            from repro.workloads.gen import parse_gen_spec

            return parse_gen_spec(name[len(GEN_PREFIX):]).fingerprint()
        if name.startswith(TRACE_PREFIX):
            from repro.workloads.trace import manifest_digest

            return manifest_digest(name[len(TRACE_PREFIX):])
    return None
