"""ssca2 — scalable synthetic compact applications, kernel 1 (graph
construction).

Table 1: 3 static ARs — 2 immutable (tiny direct edge-array updates), 1
likely immutable (adjacency update through the node index). Contention
is low and ARs are tiny: ssca2 mostly commits on the first try.
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class Ssca2Workload(SyntheticStampWorkload):
    """Synthetic ssca2 kernel: tiny ARs, low contention."""
    name = "ssca2"

    def __init__(self, ops_per_thread=30, think_cycles=(100, 260)):
        regions = [
            StampRegionSpec("edge_count", "counter"),
            StampRegionSpec("edge_insert", "direct_multi", params={"count": 2}),
            StampRegionSpec("adjacency_update", "indirect"),
        ]
        super().__init__(
            regions,
            hot_lines=64,      # many hot lines -> low contention
            table_slots=128,
            record_lines=128,
            pool_lines=64,
            list_count=1,
            list_length=4,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
