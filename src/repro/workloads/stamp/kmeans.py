"""kmeans — partitional clustering (high/low contention variants).

Table 1: 3 static ARs — 1 immutable (global delta counter), 2 likely
immutable (centroid accumulators selected through the membership
table). ``kmeans-h`` uses few clusters (every thread lands on the same
accumulators), ``kmeans-l`` many.
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


def _kmeans_regions():
    return [
        StampRegionSpec("delta_counter", "counter"),
        StampRegionSpec("centroid_accumulate", "indirect", weight=2.0),
        StampRegionSpec("membership_update", "indirect", weight=2.0),
    ]


class KmeansHighWorkload(SyntheticStampWorkload):
    """kmeans with few clusters: high accumulator contention."""
    name = "kmeans-h"

    def __init__(self, ops_per_thread=30, think_cycles=(20, 80)):
        super().__init__(
            _kmeans_regions(),
            hot_lines=4,
            table_slots=16,
            record_lines=8,   # few clusters: high contention
            pool_lines=32,
            list_count=1,
            list_length=4,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )


class KmeansLowWorkload(SyntheticStampWorkload):
    """kmeans with many clusters: low accumulator contention."""
    name = "kmeans-l"

    def __init__(self, ops_per_thread=30, think_cycles=(60, 200)):
        super().__init__(
            _kmeans_regions(),
            hot_lines=16,
            table_slots=64,
            record_lines=64,  # many clusters: low contention
            pool_lines=64,
            list_count=1,
            list_length=4,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
