"""genome — gene sequencing by segment deduplication and matching.

Table 1: 5 static ARs, all mutable — hash-set insertion and chain
matching over structures that mutate constantly.
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class GenomeWorkload(SyntheticStampWorkload):
    """Synthetic genome kernel: 5 mutable segment-matching ARs."""
    name = "genome"

    def __init__(self, ops_per_thread=30, think_cycles=(60, 200)):
        regions = [
            StampRegionSpec("segment_dedup_0", "traverse"),
            StampRegionSpec("segment_dedup_1", "traverse"),
            StampRegionSpec("segment_insert_0", "list_insert"),
            StampRegionSpec("segment_insert_1", "list_insert"),
            StampRegionSpec("overlap_update", "dynamic_scatter",
                            params={"count": 8}),
        ]
        super().__init__(
            regions,
            hot_lines=16,
            table_slots=32,
            record_lines=64,
            pool_lines=192,
            list_count=5,
            list_length=14,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
