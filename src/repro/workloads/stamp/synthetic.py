"""Configurable synthetic STAMP kernel.

The STAMP sources cannot run inside a Python memory-trace simulator, so
each application is substituted by a kernel preserving what drives the
paper's evaluation (DESIGN.md §1): the number of static ARs, each AR's
mutability class (Table 1), the footprint scale (small direct updates
versus >32-line scatters), and the contention level (how many hot lines
all threads fight over).

A :class:`StampRegionSpec` names one static AR and the body *kind* that
realizes its class:

=================== ==================== =============================
kind                 mutability           body pattern
=================== ==================== =============================
``counter``          immutable            fixed-address RMW
``direct_multi``     immutable            k fixed-address RMWs
``indirect``         likely immutable     RMW via stable index table
``indirect_transfer`` likely immutable    transfer via pointer table
``traverse``         mutable              linked-list walk (Listing 3)
``list_insert``      mutable              sorted list insertion
``dynamic_scatter``  mutable              cursor-driven window of k lines
=================== ==================== =============================
"""

from repro.common.constants import WORDS_PER_LINE
from repro.sim.program import Branch, Load, Store
from repro.workloads.base import Mutability, RegionSpec, Workload
from repro.workloads.patterns import (
    counter_increment,
    direct_multi_rmw,
    dynamic_scatter,
    indirect_rmw,
    indirect_transfer,
    list_traverse_count,
)

_KIND_MUTABILITY = {
    "counter": Mutability.IMMUTABLE,
    "direct_multi": Mutability.IMMUTABLE,
    "indirect": Mutability.LIKELY_IMMUTABLE,
    "indirect_transfer": Mutability.LIKELY_IMMUTABLE,
    "traverse": Mutability.MUTABLE,
    "list_insert": Mutability.MUTABLE,
    "dynamic_scatter": Mutability.MUTABLE,
}

LIST_DATA = 0
LIST_NEXT = 1
MAX_LIST_STEPS = 80


class StampRegionSpec:
    """One static AR of a synthetic STAMP application."""

    __slots__ = ("name", "kind", "params", "weight")

    def __init__(self, name, kind, params=None, weight=1.0):
        if kind not in _KIND_MUTABILITY:
            raise ValueError("unknown region kind {!r}".format(kind))
        self.name = name
        self.kind = kind
        self.params = dict(params or {})
        self.weight = weight

    @property
    def mutability(self):
        return _KIND_MUTABILITY[self.kind]


class SyntheticStampWorkload(Workload):
    """A STAMP application expressed as weighted synthetic regions."""

    name = "stamp"

    def __init__(self, regions, hot_lines=16, table_slots=32, record_lines=64,
                 pool_lines=256, list_count=4, list_length=16, value_range=64,
                 ops_per_thread=30, think_cycles=(40, 160)):
        super().__init__(ops_per_thread, think_cycles)
        if not regions:
            raise ValueError("a STAMP kernel needs at least one region")
        self.regions = list(regions)
        self.hot_lines = hot_lines
        self.table_slots = table_slots
        self.record_lines = record_lines
        self.pool_lines = pool_lines
        self.list_count = list_count
        self.list_length = list_length
        self.value_range = value_range
        self._memory = None
        self.hot_base = None
        self.index_table_base = None
        self.ptr_table_base = None
        self.records_base = None
        self.pool_base = None
        self.cursor_addrs = []
        self.list_heads = []
        self._node_pool = None
        self._pool_next = None

    def region_specs(self):
        return [
            RegionSpec(region.name, region.mutability, region.kind)
            for region in self.regions
        ]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self._memory = memory
        self.hot_base = allocator.alloc_lines(self.hot_lines)
        self.index_table_base = allocator.alloc(self.table_slots, align_line=True)
        self.ptr_table_base = allocator.alloc(self.table_slots, align_line=True)
        self.records_base = allocator.alloc_lines(self.record_lines)
        self.pool_base = allocator.alloc_lines(self.pool_lines)
        for slot in range(self.table_slots):
            record = rng.randint(0, self.record_lines - 1)
            memory.poke(self.index_table_base + slot, record)
            memory.poke(
                self.ptr_table_base + slot,
                self.records_base + record * WORDS_PER_LINE,
            )
        for record in range(self.record_lines):
            memory.poke(self.records_base + record * WORDS_PER_LINE, 1_000)
        # One cursor per dynamic_scatter region so their windows advance
        # independently.
        self.cursor_addrs = []
        for region in self.regions:
            if region.kind == "dynamic_scatter":
                cursor = allocator.alloc_lines(1)
                memory.poke(cursor, rng.randint(0, self.pool_lines - 1))
                self.cursor_addrs.append((region.name, cursor))
        self.list_heads = []
        for _ in range(self.list_count):
            head = allocator.alloc_lines(1)
            previous = 0
            for value in sorted(
                (rng.randint(0, self.value_range - 1) for _ in range(self.list_length)),
                reverse=True,
            ):
                node = allocator.alloc_lines(1)
                memory.poke(node + LIST_DATA, value)
                memory.poke(node + LIST_NEXT, previous)
                previous = node
            memory.poke(head, previous)
            self.list_heads.append(head)
        pool_size = max(1, self.ops_per_thread)
        self._node_pool = []
        self._pool_next = [0] * num_threads
        for _ in range(num_threads):
            base = allocator.alloc_lines(pool_size)
            self._node_pool.append(
                [base + index * WORDS_PER_LINE for index in range(pool_size)]
            )

    # -- body builders ---------------------------------------------------------

    def _hot_addr(self, index):
        return self.hot_base + (index % self.hot_lines) * WORDS_PER_LINE

    def _cursor_for(self, region_name):
        for name, cursor in self.cursor_addrs:
            if name == region_name:
                return cursor
        raise KeyError(region_name)

    def _fresh_node(self, thread_id, value):
        pool = self._node_pool[thread_id]
        index = self._pool_next[thread_id] % len(pool)
        self._pool_next[thread_id] += 1
        node = pool[index]
        self._memory.poke(node + LIST_DATA, value)
        self._memory.poke(node + LIST_NEXT, 0)
        return node

    def _list_insert_body(self, head_addr, value, node):
        def body():
            previous = 0
            current = yield Load(head_addr)
            yield Branch(current)
            steps = 0
            while current != 0 and steps < MAX_LIST_STEPS:
                data = yield Load(current + LIST_DATA)
                yield Branch(data)
                if data >= value:
                    break
                previous = current
                current = yield Load(current + LIST_NEXT)
                yield Branch(current)
                steps += 1
            yield Store(node + LIST_NEXT, int(current))
            if previous == 0:
                yield Store(head_addr, node)
            else:
                yield Store(previous + LIST_NEXT, node)

        return body

    def _build_body(self, region, thread_id, rng):
        params = region.params
        if region.kind == "counter":
            return counter_increment(self._hot_addr(rng.randint(0, self.hot_lines - 1)))
        if region.kind == "direct_multi":
            count = params.get("count", 2)
            indices = rng.sample(range(self.hot_lines), min(count, self.hot_lines))
            return direct_multi_rmw([self._hot_addr(i) for i in indices])
        if region.kind == "indirect":
            slot = rng.randint(0, self.table_slots - 1)
            return indirect_rmw(
                self.index_table_base + slot, self.records_base,
                stride=WORDS_PER_LINE,
            )
        if region.kind == "indirect_transfer":
            source, target = rng.sample(range(self.table_slots), 2)
            return indirect_transfer(
                self.ptr_table_base + source, self.ptr_table_base + target,
                rng.randint(1, 9),
            )
        if region.kind == "traverse":
            head = rng.choice(self.list_heads)
            return list_traverse_count(
                head, rng.randint(0, self.value_range - 1),
                max_steps=MAX_LIST_STEPS, next_offset=LIST_NEXT,
                data_offset=LIST_DATA,
                count_addr=self._hot_addr(rng.randint(0, self.hot_lines - 1)),
            )
        if region.kind == "list_insert":
            head = rng.choice(self.list_heads)
            value = rng.randint(0, self.value_range - 1)
            node = self._fresh_node(thread_id, value)
            return self._list_insert_body(head, value, node)
        if region.kind == "dynamic_scatter":
            count = params.get("count", 8)
            return dynamic_scatter(
                self._cursor_for(region.name), self.pool_base,
                self.pool_lines, count,
            )
        raise AssertionError("unhandled kind {!r}".format(region.kind))

    def make_invocation(self, thread_id, rng):
        total_weight = sum(region.weight for region in self.regions)
        roll = rng.random() * total_weight
        cumulative = 0.0
        chosen = self.regions[-1]
        for region in self.regions:
            cumulative += region.weight
            if roll < cumulative:
                chosen = region
                break
        return self.invoke(chosen.name, self._build_body(chosen, thread_id, rng))
