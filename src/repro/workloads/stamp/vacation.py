"""vacation — travel reservation system (high/low contention variants).

Table 1: 3 static ARs — 1 likely immutable (customer-record update via
the customer table), 2 mutable (reservation-tree walks modeled as chain
traversal/insertion). ``vacation-h`` queries a smaller record set.
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


def _vacation_regions():
    return [
        StampRegionSpec("customer_update", "indirect"),
        StampRegionSpec("reservation_lookup", "traverse"),
        StampRegionSpec("reservation_insert", "list_insert"),
    ]


class VacationHighWorkload(SyntheticStampWorkload):
    """vacation querying a small record set (higher contention)."""
    name = "vacation-h"

    def __init__(self, ops_per_thread=30, think_cycles=(40, 140)):
        super().__init__(
            _vacation_regions(),
            hot_lines=8,
            table_slots=16,
            record_lines=24,
            pool_lines=64,
            list_count=3,
            list_length=16,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )


class VacationLowWorkload(SyntheticStampWorkload):
    """vacation querying a large record set (lower contention)."""
    name = "vacation-l"

    def __init__(self, ops_per_thread=30, think_cycles=(80, 240)):
        super().__init__(
            _vacation_regions(),
            hot_lines=24,
            table_slots=64,
            record_lines=96,
            pool_lines=64,
            list_count=6,
            list_length=16,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
