"""labyrinth — Lee-routing path claiming on a shared grid.

Table 1: 3 static ARs, all mutable, with *large* footprints: each region
claims a multi-cell path whose cells depend on the evolving grid state.
The footprints routinely exceed the 32-entry ALT, so CLEAR cannot
convert them and the application leans on fallback — reproducing the
serialization effect the paper reports for labyrinth (§7).
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class LabyrinthWorkload(SyntheticStampWorkload):
    """Synthetic labyrinth kernel: huge mutable path-claim footprints."""
    name = "labyrinth"

    def __init__(self, ops_per_thread=20, think_cycles=(100, 300)):
        regions = [
            StampRegionSpec("claim_path_short", "dynamic_scatter",
                            params={"count": 24}),
            StampRegionSpec("claim_path_medium", "dynamic_scatter",
                            params={"count": 40}),
            StampRegionSpec("claim_path_long", "dynamic_scatter",
                            params={"count": 56}),
        ]
        super().__init__(
            regions,
            hot_lines=8,
            table_slots=16,
            record_lines=16,
            pool_lines=512,
            list_count=1,
            list_length=4,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
