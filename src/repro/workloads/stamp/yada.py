"""yada — Delaunay mesh refinement.

Table 1: 6 static ARs — 1 immutable (work counter), 5 mutable (cavity
retriangulation touching many elements, task-queue manipulation). Most
footprints are large; yada in the paper either commits first-try or
lands in fallback, with discovery quickly disabled (§7).
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class YadaWorkload(SyntheticStampWorkload):
    """Synthetic yada kernel: large cavity footprints, fallback-heavy."""
    name = "yada"

    def __init__(self, ops_per_thread=20, think_cycles=(80, 240)):
        regions = [
            StampRegionSpec("work_counter", "counter"),
            StampRegionSpec("cavity_expand", "dynamic_scatter",
                            params={"count": 36}),
            StampRegionSpec("cavity_retriangulate", "dynamic_scatter",
                            params={"count": 48}),
            StampRegionSpec("boundary_update", "dynamic_scatter",
                            params={"count": 20}),
            StampRegionSpec("task_scan", "traverse"),
            StampRegionSpec("task_insert", "list_insert"),
        ]
        super().__init__(
            regions,
            hot_lines=12,
            table_slots=16,
            record_lines=16,
            pool_lines=384,
            list_count=3,
            list_length=12,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
