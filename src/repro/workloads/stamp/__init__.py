"""STAMP benchmark suite (synthetic kernels; paper §6 uses medium inputs).

Each application is a :class:`repro.workloads.stamp.synthetic.SyntheticStampWorkload`
configured to preserve the application's AR structure from Table 1
(count and mutability class of every static AR), its footprint scale,
and its contention level — the three properties the paper's evaluation
trends depend on.
"""

from repro.workloads.stamp.bayes import BayesWorkload
from repro.workloads.stamp.genome import GenomeWorkload
from repro.workloads.stamp.intruder import IntruderWorkload
from repro.workloads.stamp.kmeans import KmeansHighWorkload, KmeansLowWorkload
from repro.workloads.stamp.labyrinth import LabyrinthWorkload
from repro.workloads.stamp.ssca2 import Ssca2Workload
from repro.workloads.stamp.vacation import VacationHighWorkload, VacationLowWorkload
from repro.workloads.stamp.yada import YadaWorkload

__all__ = [
    "BayesWorkload",
    "GenomeWorkload",
    "IntruderWorkload",
    "KmeansHighWorkload",
    "KmeansLowWorkload",
    "LabyrinthWorkload",
    "Ssca2Workload",
    "VacationHighWorkload",
    "VacationLowWorkload",
    "YadaWorkload",
]
