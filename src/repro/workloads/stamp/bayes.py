"""bayes — Bayesian network structure learning.

Table 1: 14 static ARs — 5 likely immutable (score/adjacency updates
through stable index tables), 9 mutable (task-list and dependency-graph
manipulations). Footprints are mixed; contention is moderate.
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class BayesWorkload(SyntheticStampWorkload):
    """Synthetic bayes kernel: 14 ARs (5 likely immutable, 9 mutable)."""
    name = "bayes"

    def __init__(self, ops_per_thread=30, think_cycles=(60, 200)):
        regions = [
            StampRegionSpec("score_update_{}".format(i), "indirect")
            for i in range(3)
        ]
        regions += [
            StampRegionSpec("adjacency_xfer_{}".format(i), "indirect_transfer")
            for i in range(2)
        ]
        regions += [
            StampRegionSpec("task_scan_{}".format(i), "traverse")
            for i in range(4)
        ]
        regions += [
            StampRegionSpec("task_insert_{}".format(i), "list_insert")
            for i in range(3)
        ]
        regions += [
            StampRegionSpec("subnet_update_{}".format(i), "dynamic_scatter",
                            params={"count": 10})
            for i in range(2)
        ]
        super().__init__(
            regions,
            hot_lines=24,
            table_slots=48,
            record_lines=96,
            pool_lines=256,
            list_count=4,
            list_length=12,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
