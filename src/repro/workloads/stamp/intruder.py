"""intruder — network packet reassembly and signature detection.

Table 1: 3 static ARs — 2 likely immutable (fragment-queue slot updates
through stable indices), 1 mutable (sorted insertion into the packet
reassembly list).
Contention is high: intruder is the paper's highest-abort benchmark and
the one that benefits most from CLEAR (Fig. 8/9).
"""

from repro.workloads.stamp.synthetic import StampRegionSpec, SyntheticStampWorkload


class IntruderWorkload(SyntheticStampWorkload):
    """Synthetic intruder kernel: high contention, CLEAR's best case."""
    name = "intruder"

    def __init__(self, ops_per_thread=30, think_cycles=(20, 80)):
        regions = [
            StampRegionSpec("fragment_pop", "indirect", weight=1.5),
            StampRegionSpec("fragment_push", "indirect_transfer", weight=1.5),
            StampRegionSpec("reassembly_insert", "list_insert"),
        ]
        super().__init__(
            regions,
            hot_lines=6,        # few hot lines -> heavy contention
            table_slots=12,
            record_lines=16,
            pool_lines=64,
            list_count=2,
            list_length=18,
            ops_per_thread=ops_per_thread,
            think_cycles=think_cycles,
        )
