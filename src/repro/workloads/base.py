"""Workload abstraction.

A workload owns the simulated data structures (laid out in
:class:`repro.memory.shared.SharedMemory` at setup) and produces the
per-thread action stream: alternating think time and atomic-region
invocations. Each invocation names its *static region* (the ERT key)
and carries a body factory that replays the AR against current memory
on every attempt.
"""

import abc
import enum

from repro.sim.program import Invoke, Think


class Mutability(enum.Enum):
    """Paper §3 classification of a static AR's footprint stability."""

    IMMUTABLE = "immutable"
    LIKELY_IMMUTABLE = "likely_immutable"
    MUTABLE = "mutable"


class RegionSpec:
    """Static description of one AR (a row contribution to Table 1)."""

    __slots__ = ("name", "mutability", "description")

    def __init__(self, name, mutability, description=""):
        self.name = name
        self.mutability = mutability
        self.description = description

    def __repr__(self):
        return "RegionSpec({!r}, {})".format(self.name, self.mutability.value)


class Workload(abc.ABC):
    """Base class for all benchmarks.

    Subclasses define ``name``, implement :meth:`region_specs`,
    :meth:`setup` and :meth:`make_invocation`, and inherit the standard
    think/invoke action stream: each of the ``ops_per_thread``
    operations is a Think followed by an Invoke.
    """

    name = "workload"

    def __init__(self, ops_per_thread=30, think_cycles=(40, 160)):
        if ops_per_thread < 0:
            raise ValueError("ops_per_thread must be non-negative")
        self.ops_per_thread = ops_per_thread
        self.think_cycles = think_cycles
        self._ops_done = None
        self._thinking = None
        self.num_threads = 0

    # -- to be provided by subclasses ---------------------------------------

    @abc.abstractmethod
    def region_specs(self):
        """Static ARs of this benchmark (list of RegionSpec)."""

    @abc.abstractmethod
    def setup(self, memory, allocator, num_threads, rng):
        """Lay out the data structures. Must call super().setup(...)."""

    @abc.abstractmethod
    def make_invocation(self, thread_id, rng):
        """Build the next AR invocation for a thread (an Invoke)."""

    # -- standard behaviour ----------------------------------------------------

    def base_setup(self, num_threads):
        """Initialize the per-thread action bookkeeping."""
        self.num_threads = num_threads
        self._ops_done = [0] * num_threads
        self._thinking = [True] * num_threads

    def next_action(self, thread_id, rng):
        """Standard stream: Think, Invoke, Think, Invoke, ..., None."""
        if self._ops_done is None:
            raise RuntimeError("setup() must run before next_action()")
        if self._ops_done[thread_id] >= self.ops_per_thread:
            return None
        if self._thinking[thread_id]:
            self._thinking[thread_id] = False
            low, high = self.think_cycles
            return Think(rng.randint(low, high))
        self._thinking[thread_id] = True
        self._ops_done[thread_id] += 1
        return self.make_invocation(thread_id, rng)

    def region_id(self, region_name):
        """The ERT key for one of this workload's static regions."""
        return (self.name, region_name)

    def invoke(self, region_name, body_factory):
        """Convenience Invoke builder."""
        return Invoke(self.region_id(region_name), body_factory)

    def spec_by_name(self, region_name):
        """RegionSpec lookup (for tests and the characterizer)."""
        for spec in self.region_specs():
            if spec.name == region_name:
                return spec
        raise KeyError(region_name)
