"""Deterministic random number generation.

Every stochastic choice in the simulator and the workloads flows through
a :class:`DeterministicRng` derived from the run seed, so that a run is
exactly reproducible and multi-seed experiments (the paper runs 10 seeds
and takes a trimmed mean) are well defined.
"""

import random
import zlib


def _stable_stream_hash(stream):
    """Process-independent hash of a stream id.

    Python's built-in ``hash()`` is salted per process for strings, which
    would silently break cross-process reproducibility, so stream ids are
    hashed over their repr with CRC32 instead.
    """
    return zlib.crc32(repr(stream).encode("utf-8"))


def split_seed(seed, stream):
    """Derive an independent child seed from ``seed`` for a named stream.

    Uses a simple splitmix-style integer hash so that nearby seeds and
    stream ids do not produce correlated child streams.
    """
    value = (seed * 0x9E3779B97F4A7C15 + _stable_stream_hash(stream)) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 31
    return value


class DeterministicRng:
    """A seeded RNG with convenience helpers used across the simulator."""

    def __init__(self, seed):
        self.seed = seed
        self._random = random.Random(seed)

    def child(self, stream):
        """Return an independent RNG for the named stream."""
        return DeterministicRng(split_seed(self.seed, stream))

    def randint(self, low, high):
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, seq):
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq):
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(seq)

    def sample(self, seq, k):
        """k distinct elements sampled without replacement."""
        return self._random.sample(seq, k)

    def geometric(self, p):
        """Geometric variate (number of trials until first success, >= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        count = 1
        while self._random.random() >= p:
            count += 1
        return count
