"""Machine-wide constants.

The paper models an Intel Icelake-like machine (Table 2). Cachelines are
the standard 64 bytes; the simulator is word-addressed with 8-byte words,
so each cacheline holds 8 words.
"""

WORD_BYTES = 8
CACHELINE_BYTES = 64
WORDS_PER_LINE = CACHELINE_BYTES // WORD_BYTES
