"""Machine-wide constants.

The paper models an Intel Icelake-like machine (Table 2). Cachelines are
the standard 64 bytes; the simulator is word-addressed with 8-byte words,
so each cacheline holds 8 words.
"""

WORD_BYTES = 8
CACHELINE_BYTES = 64
WORDS_PER_LINE = CACHELINE_BYTES // WORD_BYTES

#: The paper's outlier policy: every application runs 10 seeds "and the
#: trimmed mean is used to remove 3 outliers". Single source of truth
#: for every trim default (runner, aggregate, facade); the literal 3
#: must not be restated at call sites.
PAPER_TRIM = 3

#: The retry-threshold sweep deliberately aggregates *un*-trimmed: it
#: runs 3 seeds per threshold, and trimming 3 of 3 values would warn
#: and degrade to a plain mean anyway (see trimmed_mean).
SWEEP_TRIM = 0

