"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine or workload configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state (a bug, not user error)."""


class ProtocolError(SimulationError):
    """A coherence or locking protocol invariant was violated."""
