"""Exception hierarchy for the reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid machine or workload configuration was supplied."""


class UnknownWorkloadError(ConfigurationError, KeyError):
    """No workload matches the requested name in any registry namespace.

    Raised by :func:`repro.workloads.make_workload` (and the name
    canonicalization helpers) when a name is neither a built-in
    benchmark, a ``gen:<spec|fingerprint|folder>`` generated workload,
    nor a ``trace:<folder>`` recorded trace. Subclasses ``KeyError``
    for backward compatibility with callers that catch the registry's
    historical exception.
    """

    def __str__(self):
        # KeyError.__str__ wins the MRO and would repr-ize the message;
        # user-facing scripts print this, so keep it a plain sentence.
        return str(self.args[0]) if self.args else ""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state (a bug, not user error)."""


class ProtocolError(SimulationError):
    """A coherence or locking protocol invariant was violated."""


class SimulationStallError(SimulationError):
    """The machine stopped making forward progress.

    Base class for the three distinguishable stall outcomes (deadlock,
    livelock, cycle-limit exhaustion). ``diagnostic`` is a structured,
    JSON-serializable dump taken at trip time — per-core phase/mode,
    held locks, retry counters, ALT/ERT state, fallback and power-token
    holders — and ``stats`` carries the partial
    :class:`repro.sim.stats.MachineStats` accumulated so far.
    """

    def __init__(self, message, diagnostic=None, stats=None):
        super().__init__(message)
        self.diagnostic = diagnostic if diagnostic is not None else {}
        self.stats = stats

    def __reduce__(self):
        # Default Exception pickling only carries ``args``, so a stall
        # raised inside a worker process would arrive at the engine with
        # its diagnostic and partial stats silently dropped.
        message = self.args[0] if self.args else ""
        return (self.__class__, (message, self.diagnostic, self.stats))


class DeadlockError(SimulationStallError):
    """Every unfinished core is parked and no event can wake one."""


class LivelockError(SimulationStallError):
    """Cores stay runnable but no AR committed within the watchdog window."""


class CycleLimitExceeded(SimulationStallError):
    """The run passed ``max_cycles`` without completing every thread."""


class ConflictIndexMismatch(SimulationError):
    """The sharer-index fast path disagreed with the legacy peer scan.

    Raised only under ``debug_conflict_check=True``; ``details`` carries
    the request and both resolutions.
    """

    def __init__(self, message, details=None):
        super().__init__(message)
        self.details = details if details is not None else {}


class OracleViolation(SimulationError):
    """A runtime correctness oracle detected a broken guarantee.

    ``details`` is a structured description of the violation (e.g. the
    diverging addresses of a failed commit-order replay, or the leaked
    lock-table entries).
    """

    def __init__(self, message, details=None):
        super().__init__(message)
        self.details = details if details is not None else {}


class OracleDivergence(OracleViolation):
    """The online monitor and the shadow oracle disagreed.

    Raised only under ``oracle="cross-check"``: one checker flagged the
    run and the other passed it, which means a checker (not the
    machine) is wrong. ``details`` carries both verdicts.
    """


class ExperimentCellError(ReproError):
    """An experiment cell failed permanently after bounded retries.

    Raised by the strict (non-report) engine entry points; carries the
    :class:`repro.sim.engine.CellFailure` describing what happened.
    """

    def __init__(self, message, failure=None):
        super().__init__(message)
        self.failure = failure


class JournalError(ReproError):
    """A sweep journal's job folder cannot be used for this sweep."""


class JournalSchemaError(JournalError):
    """The job folder was written by an incompatible schema version.

    Raised on resume when the manifest's journal or result schema
    version disagrees with the running code; the recorded results
    could silently mismean, so the engine refuses to replay them.
    Start a fresh job folder (or delete the stale one) to proceed.
    """
