"""Unified retry policy: jittered exponential backoff under a budget.

The engine used to carry ad-hoc ``retry_backoff_seconds`` doubling
logic inline; :class:`RetryPolicy` replaces it with one object that
every restart loop shares — pool restarts today, the remote executor
of the simulation service tomorrow. Mirroring the source paper's
contract (bounded speculation, then a fallback that always completes),
a policy bounds *total* time spent retrying: once the optional
``budget_seconds`` deadline is exhausted the caller stops retrying and
falls back (for the engine: quarantine the cell, degrade to a partial
matrix) instead of looping forever.

Jitter is deterministic: the perturbation for attempt ``n`` is drawn
from ``random.Random("<seed>:<n>")``, so two runs with the same policy
seed back off identically — seeded chaos tests stay reproducible while
real fleets still decorrelate by choosing distinct seeds.
"""

import random
import time


class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    ``delay(n)`` for attempt ``n`` (1-based) is
    ``min(base_seconds * multiplier**(n-1), max_seconds)`` scaled by a
    seeded jitter factor in ``[1-jitter, 1+jitter]``. ``begin()`` arms
    the optional total-time budget; once :meth:`exhausted` the policy
    refuses further pauses so callers fall back promptly. ``sleep`` and
    ``clock`` are injectable for tests.
    """

    def __init__(self, base_seconds=0.5, multiplier=2.0, max_seconds=10.0,
                 jitter=0.25, budget_seconds=None, seed=0,
                 sleep=time.sleep, clock=time.monotonic):
        if base_seconds < 0:
            raise ValueError("base_seconds must be >= 0")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if max_seconds < 0:
            raise ValueError("max_seconds must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive or None")
        self.base_seconds = base_seconds
        self.multiplier = multiplier
        self.max_seconds = max_seconds
        self.jitter = jitter
        self.budget_seconds = budget_seconds
        self.seed = seed
        self._sleep = sleep
        self._clock = clock
        self._deadline = None

    def delay(self, attempt):
        """The jittered backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.base_seconds <= 0:
            return 0.0
        raw = min(
            self.base_seconds * self.multiplier ** (attempt - 1),
            self.max_seconds,
        )
        if not self.jitter:
            return raw
        rng = random.Random("{}:{}".format(self.seed, attempt))
        spread = self.jitter * (2.0 * rng.random() - 1.0)
        return raw * (1.0 + spread)

    def begin(self):
        """Arm (or re-arm) the total retry-time budget for one sweep."""
        if self.budget_seconds is None:
            self._deadline = None
        else:
            self._deadline = self._clock() + self.budget_seconds

    def remaining(self):
        """Seconds left in the armed budget, or None when unbounded."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def exhausted(self):
        """True once the armed budget has been fully spent."""
        return self._deadline is not None and self._clock() >= self._deadline

    def pause(self, attempt):
        """Sleep the attempt's delay, clamped to the remaining budget.

        Returns False (without sleeping) when the budget is already
        exhausted — the caller should give up and fall back.
        """
        if self.exhausted():
            return False
        delay = self.delay(attempt)
        remaining = self.remaining()
        if remaining is not None:
            delay = min(delay, remaining)
        if delay > 0:
            self._sleep(delay)
        return True


__all__ = ["RetryPolicy"]
