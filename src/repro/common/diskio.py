"""Injectable filesystem seam for the durability layer.

Every durable side effect the experiment substrate performs — atomic
manifest/cache-entry writes and fsync'd journal appends — goes through
a :class:`DiskIO` instance instead of raw ``open`` calls. That single
seam is what makes the engine's crash-safety *testable*: the chaos
harness (:mod:`repro.sim.enginefaults`) subclasses it to inject torn
writes, corrupted payloads, and ``ENOSPC`` at seeded rates, so the
recovery paths in :class:`~repro.sim.journal.SweepJournal` and
:class:`~repro.sim.engine.DiskCache` are exercised by tests rather
than trusted.

Durability contract:

- :meth:`DiskIO.write_atomic` — readers never observe a partial file:
  the payload lands in a same-directory temp file, is flushed and
  fsync'd, then renamed over the destination. The temp file is removed
  on *any* failure (including a serialization error mid-write).
- :meth:`DiskIO.append_line` — one record per call, newline-terminated,
  fsync'd before returning. A crash can tear at most the final line,
  which the journal's replay detects and drops.
"""

import os
import tempfile


class DiskIO:
    """Real filesystem operations (the production seam)."""

    def write_atomic(self, path, data):
        """Atomically replace ``path`` with ``data`` (bytes).

        fsyncs the temp file before the rename so a power loss cannot
        leave the destination pointing at unwritten blocks; cleans the
        temp file up on any failure so an aborted write leaves no
        ``*.tmp`` litter behind.
        """
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def append_line(self, path, line):
        """Append ``line`` (str, no newline) as one fsync'd record."""
        self.append_bytes(path, line.encode("utf-8") + b"\n")

    def append_bytes(self, path, data):
        """Append raw bytes and fsync (the torn-write injection point)."""
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path):
        """The file's bytes, or ``b""`` when it does not exist."""
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return b""


__all__ = ["DiskIO"]
