"""Shared utilities: constants, deterministic RNG, and error types."""

from repro.common.constants import (
    CACHELINE_BYTES,
    WORDS_PER_LINE,
    WORD_BYTES,
)
from repro.common.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    ProtocolError,
)
from repro.common.rng import DeterministicRng, split_seed

__all__ = [
    "CACHELINE_BYTES",
    "WORDS_PER_LINE",
    "WORD_BYTES",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "DeterministicRng",
    "split_seed",
]
