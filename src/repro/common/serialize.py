"""Shared dict/JSON round-trip contract for result and config types.

Every serializable value object in the library (configs, per-run stats,
run/aggregate results, sweep reports) speaks the same two-method
protocol — ``to_dict()`` producing a JSON-serializable dict and
``from_dict()`` rebuilding an equivalent object — and inherits the JSON
conveniences from one place instead of hand-rolling them. The on-disk
experiment cache, the process-pool result transport, and every script's
``--out`` file are all ``to_dict()`` output, so "round-trips through
:class:`Serializable`" is the single compatibility contract a schema
bump has to preserve.
"""

import hashlib
import json


def canonical_digest(obj):
    """SHA-256 hex digest of ``obj``'s canonical JSON encoding.

    The one digest convention shared by the workload-corpus formats
    (gen-spec fingerprints, trace manifests) and the determinism test
    suites: keys sorted, separators minimal, UTF-8 bytes hashed.
    """
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Serializable:
    """Mixin deriving JSON round-trips from ``to_dict``/``from_dict``.

    Subclasses implement :meth:`to_dict` (JSON-serializable dict out)
    and :meth:`from_dict` (equivalent object back); the mixin supplies
    ``to_json``/``from_json`` strings and ``write_json``/``read_json``
    files on top. ``from_dict(to_dict())`` must reconstruct an object
    whose ``to_dict()`` is equal — tests assert exactly that.
    """

    def to_dict(self):
        """This object as a JSON-serializable dict."""
        raise NotImplementedError(
            "{} must implement to_dict()".format(type(self).__name__)
        )

    @classmethod
    def from_dict(cls, data):
        """Rebuild an equivalent object from :meth:`to_dict` output."""
        raise NotImplementedError(
            "{} must implement from_dict()".format(cls.__name__)
        )

    def to_json(self, *, indent=None, sort_keys=False):
        """This object as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=sort_keys)

    @classmethod
    def from_json(cls, text):
        """Rebuild an equivalent object from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def write_json(self, path, *, indent=2):
        """Serialize to a file; returns ``path`` for chaining."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=indent)
            handle.write("\n")
        return path

    @classmethod
    def read_json(cls, path):
        """Rebuild an equivalent object from a :meth:`write_json` file."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
