"""CLEAR: Bounding Speculative Execution of Atomic Regions to a Single Retry.

A from-scratch Python reproduction of Gómez-Hernández et al., ASPLOS
2024. The package provides:

- a cacheline-granular multicore simulator with a TSX-like HTM,
  PowerTM, and the CLEAR mechanism (ERT/ALT/CRT, discovery, NS-CL and
  S-CL retry modes);
- the paper's 19 benchmarks (9 concurrent data structures + the STAMP
  suite as synthetic kernels);
- analysis and benchmark harnesses regenerating every table and figure
  of the evaluation.

Quickstart::

    from repro import api

    report = api.simulate("mwobject", "clear+powertm", seeds=1)
    print(report.stats.summary())

:func:`repro.api.simulate` is the single supported entry point. HTM
designs are pluggable: :class:`repro.HtmDesign` is the backend
protocol, :data:`repro.DESIGN_REGISTRY` maps design names to
implementations, and :func:`repro.register_design` adds new ones (see
DESIGN.md §12). The historical ``run_workload``/``run_seeds``/
``sweep_retry_threshold`` trio still lives in :mod:`repro.sim.runner`
with a :class:`DeprecationWarning` but is no longer re-exported here.
"""

from repro.core.modes import ExecMode
from repro.htm.design import DESIGN_REGISTRY, HtmDesign, register_design
from repro.sim.config import ORACLE_MODES, SimConfig
from repro.sim.engine import ExperimentEngine, RunSpec, run_specs
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.sim.monitor import OnlineMonitor
from repro.sim.oracle import RuntimeOracle
from repro.sim.runner import AggregateResult, RunResult
from repro.energy.model import EnergyModel
from repro.workloads import ALL_NAMES, make_workload
from repro import api, obs
from repro.api import SimulationReport, simulate
from repro.obs import EventTrace, MetricRegistry

__version__ = "1.2.0"

__all__ = [
    "api",
    "obs",
    "simulate",
    "SimulationReport",
    "EventTrace",
    "MetricRegistry",
    "ExecMode",
    "SimConfig",
    "HtmDesign",
    "DESIGN_REGISTRY",
    "register_design",
    "Machine",
    "AggregateResult",
    "RunResult",
    "RunSpec",
    "ExperimentEngine",
    "FaultPlan",
    "ORACLE_MODES",
    "OnlineMonitor",
    "RuntimeOracle",
    "run_specs",
    "EnergyModel",
    "ALL_NAMES",
    "make_workload",
    "__version__",
]
