"""The unified simulation facade.

One entry point — :func:`simulate` — replaces the historical trio of
``run_workload`` / ``run_seeds`` / ``sweep_retry_threshold`` spread
across :mod:`repro.sim.runner`. It accepts a workload by name or
factory, a configuration by object or design name, any number of
seeds, and optional tracing/oracle/engine knobs, and returns a
:class:`SimulationReport` that carries every run, the trimmed-mean
aggregate, and any captured event traces.

Quickstart::

    from repro import api

    report = api.simulate("genome", "clear+powertm", seeds=(1, 2, 3), trace=True)
    print(report.stats.summary())
    report.write_chrome_trace("trace.json")      # load in Perfetto
    print(report.forensic_report())

Migration from the deprecated entry points:

=====================================  ====================================
Old                                    New
=====================================  ====================================
``run_workload(f, cfg, seed=3)``       ``simulate(f, cfg, seeds=3).run``
``run_seeds(f, cfg, seeds=S)``         ``simulate(f, cfg, seeds=S).aggregate()``
``sweep_retry_threshold(w, cfg, ...)`` ``api.sweep_retry_threshold(w, cfg, ...)``
=====================================  ====================================
"""

import numbers
import warnings

from repro.common.constants import PAPER_TRIM, SWEEP_TRIM
from repro.common.errors import ConfigurationError
from repro.common.serialize import Serializable
from repro.htm.design import DESIGN_REGISTRY, LEGACY_LETTER_DESIGNS
from repro.obs.chrome import write_chrome_trace
from repro.obs.report import forensic_report as _forensic_report
from repro.obs.report import write_forensic_report
from repro.obs.trace import EventTrace, TraceSink
from repro.sim.config import SimConfig, resolve_oracle_mode
from repro.sim.runner import (
    AggregateResult,
    RunResult,
    _simulate_one,
    _sweep_retry_threshold,
)

def _resolve_config(config, oracle=None):
    """Accept a SimConfig, a design name, a legacy paper letter, or None.

    Design names (``DESIGN_REGISTRY`` keys) are the canonical string
    spelling; the paper letters B/P/C/W still resolve but raise a
    :class:`DeprecationWarning`.

    ``oracle`` is the facade-level checker-mode override: ``None``
    (the default) leaves the config's own mode untouched — an explicit
    config-level mode is never silently downgraded by the kwarg
    default — while a mode name from
    :data:`~repro.sim.config.ORACLE_MODES` (or a deprecated boolean,
    which warns and maps to ``"shadow"``/``"off"``) replaces it.
    """
    if config is None:
        config = SimConfig()
    elif isinstance(config, str):
        if config in DESIGN_REGISTRY:
            config = SimConfig.for_design(config)
        elif config in LEGACY_LETTER_DESIGNS:
            name = LEGACY_LETTER_DESIGNS[config]
            warnings.warn(
                "config letter {!r} is deprecated; pass the design name "
                "{!r} instead".format(config, name),
                DeprecationWarning,
                stacklevel=3,
            )
            config = SimConfig.for_design(name)
        else:
            raise ConfigurationError(
                "config must name a registered design ({}), not "
                "{!r}".format(", ".join(sorted(DESIGN_REGISTRY)), config)
            )
    elif not isinstance(config, SimConfig):
        raise TypeError(
            "config must be a SimConfig, a design name, or None, not "
            "{!r}".format(type(config).__name__)
        )
    mode = resolve_oracle_mode(oracle, stacklevel=4)
    if mode is not None and config.oracle != mode:
        config = config.replaced(oracle=mode)
    return config


def _resolve_seeds(seeds):
    """Accept one seed or an iterable of them; always returns a tuple."""
    if isinstance(seeds, numbers.Integral):
        return (int(seeds),)
    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    return seeds


class SimulationReport(Serializable):
    """Everything :func:`simulate` learned, in one object.

    ``runs`` holds one :class:`~repro.sim.runner.RunResult` per seed (in
    seed order); single-seed conveniences (``run``, ``stats``,
    ``cycles``, ``trace``) refer to the first run. The report
    round-trips through :class:`~repro.common.serialize.Serializable`
    like every other result type, traces included.
    """

    def __init__(self, runs, trim=PAPER_TRIM):
        if not runs:
            raise ValueError("a SimulationReport needs at least one run")
        self.runs = list(runs)
        self.trim = trim

    # -- single-run conveniences --------------------------------------------

    @property
    def run(self):
        """The first (often only) run."""
        return self.runs[0]

    @property
    def workload_name(self):
        return self.run.workload_name

    @property
    def config(self):
        return self.run.config

    @property
    def stats(self):
        """The first run's :class:`~repro.sim.stats.MachineStats`."""
        return self.run.stats

    @property
    def cycles(self):
        """First run's makespan, or the trimmed mean over many seeds."""
        if len(self.runs) == 1:
            return self.run.cycles
        return self.aggregate().cycles

    @property
    def aborts_per_commit(self):
        if len(self.runs) == 1:
            return self.run.aborts_per_commit
        return self.aggregate().aborts_per_commit

    @property
    def energy(self):
        """First run's energy breakdown."""
        return self.run.energy

    @property
    def seeds(self):
        """The seeds simulated, in run order."""
        return tuple(run.seed for run in self.runs)

    def aggregate(self):
        """Trimmed-mean :class:`AggregateResult` over every run."""
        return AggregateResult(
            self.workload_name, self.config, self.runs, self.trim
        )

    # -- observability -------------------------------------------------------

    @property
    def trace(self):
        """The first run's :class:`~repro.obs.trace.EventTrace`, or None."""
        return self.run.trace

    @property
    def traces(self):
        """seed -> EventTrace for every traced run."""
        return {
            run.seed: run.trace for run in self.runs if run.trace is not None
        }

    def _require_trace(self):
        if self.run.trace is None:
            raise ValueError(
                "this report has no trace; pass trace=True to simulate()"
            )
        return self.run.trace

    def write_chrome_trace(self, path):
        """Export the first run's trace as Chrome/Perfetto trace JSON."""
        return write_chrome_trace(
            self._require_trace(), path, num_cores=self.config.num_cores
        )

    def forensic_report(self, max_regions=None):
        """Per-region forensic text report of the first run's trace."""
        return _forensic_report(self._require_trace(), max_regions=max_regions)

    def write_forensic_report(self, path, max_regions=None):
        """Write :meth:`forensic_report` to ``path``."""
        return write_forensic_report(
            self._require_trace(), path, max_regions=max_regions
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        """The report (every run, traces included) as a JSON dict."""
        return {
            "trim": self.trim,
            "runs": [run.to_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            runs=[RunResult.from_dict(run) for run in data["runs"]],
            trim=data["trim"],
        )

    def __repr__(self):
        return "SimulationReport({}, {}, seeds={}, runs={})".format(
            self.workload_name, self.config.config_letter, self.seeds,
            len(self.runs),
        )


def simulate(workload, config=None, *, seeds=1, trim=PAPER_TRIM, trace=False,
             oracle=None, engine=None, ops_per_thread=None,
             energy_model=None, journal=None):
    """Simulate a workload and return a :class:`SimulationReport`.

    Parameters
    ----------
    workload:
        A benchmark name from the registry (``repro.ALL_NAMES``), a
        namespaced name (``gen:<spec|fingerprint|folder>`` for a seeded
        generated workload, ``trace:<folder>`` for a recorded trace),
        or a zero-argument workload factory.
    config:
        A :class:`~repro.sim.config.SimConfig`, a registered design
        name (``"baseline"``/``"powertm"``/``"clear"``/
        ``"clear+powertm"``/``"lrw"``/``"bigatomics"``), or None for
        defaults. The paper letters ``"B"``/``"P"``/``"C"``/``"W"``
        still resolve, with a :class:`DeprecationWarning`.
        ``config.backend`` selects the event loop (``"reference"`` or
        the bit-identical, faster ``"batch"``; see DESIGN.md §14) —
        results are the same either way.
    seeds:
        One seed (int) or an iterable of seeds; one run per seed.
    trim:
        Outliers removed by the report's trimmed-mean aggregate
        (defaults to the paper's 3).
    trace:
        ``True`` records a full :class:`~repro.obs.trace.EventTrace`
        per run (attached to each run and the report); a
        :class:`~repro.obs.trace.TraceSink` instance streams events to
        that sink instead (single-seed only). Simulated results are
        identical with tracing on or off.
    oracle:
        Serializability-checker mode for these runs: ``"off"``,
        ``"shadow"`` (replay oracle), ``"online"`` (incremental
        monitor, cheap enough to leave on), or ``"cross-check"``
        (both, verdicts compared). ``None`` (the default) keeps the
        config's own mode; the deprecated ``True``/``False`` map to
        ``"shadow"``/``"off"`` with a :class:`DeprecationWarning`.
    engine:
        An :class:`~repro.sim.engine.ExperimentEngine` to fan the seeds
        out through (parallel and cached). Requires ``workload`` by
        name; inline single-process execution otherwise.
    ops_per_thread:
        Scales a named workload; None keeps its default. Rejected for
        factory workloads (bake it into the factory instead).
    energy_model:
        Override the default :class:`~repro.energy.model.EnergyModel`
        (inline execution only).
    journal:
        A crash-safe job folder (path or
        :class:`~repro.sim.journal.SweepJournal`) durably logging every
        finished cell; a killed run re-invoked with the same journal
        replays completed cells instead of re-executing them. Requires
        ``engine`` (durability is an engine-level property).
    """
    config = _resolve_config(config, oracle)
    seed_list = _resolve_seeds(seeds)
    named = isinstance(workload, str)
    if not named and not callable(workload):
        raise TypeError(
            "workload must be a benchmark name or a zero-argument factory"
        )
    custom_sink = isinstance(trace, TraceSink) or (
        not isinstance(trace, bool) and trace
    )
    if custom_sink and len(seed_list) > 1:
        raise ValueError(
            "a custom trace sink only works with a single seed; pass "
            "trace=True to get one EventTrace per run"
        )

    if journal is not None and engine is None:
        raise ValueError(
            "journal is engine-only (crash-safe sweeps need the engine's "
            "fan-out); pass engine= as well"
        )
    if engine is not None:
        if not named:
            raise ValueError(
                "engine fan-out needs the workload by name (factories "
                "cannot cross process boundaries)"
            )
        if custom_sink:
            raise ValueError(
                "engine fan-out supports trace=True/False, not a custom sink"
            )
        if energy_model is not None:
            raise ValueError("energy_model is inline-only; omit engine")
        from repro.sim.engine import RunSpec
        from repro.workloads import canonical_workload_name

        # Worker processes resolve the name from scratch, so ship the
        # self-contained spelling (gen fingerprints/folders become full
        # spec strings, trace folders become absolute paths).
        workload = canonical_workload_name(workload)
        specs = [
            RunSpec(workload=workload, config=config, seed=seed,
                    ops_per_thread=ops_per_thread, trace=bool(trace))
            for seed in seed_list
        ]
        return SimulationReport(
            engine.run_specs(specs, journal=journal), trim=trim
        )

    if named:
        from repro.workloads import make_workload

        kwargs = {}
        if ops_per_thread is not None:
            kwargs["ops_per_thread"] = ops_per_thread
        name = workload
        factory = lambda: make_workload(name, **kwargs)  # noqa: E731
    else:
        if ops_per_thread is not None:
            raise ValueError(
                "ops_per_thread only scales named workloads; bake it into "
                "the factory instead"
            )
        factory = workload

    runs = []
    for seed in seed_list:
        if custom_sink:
            sink = trace
        elif trace:
            sink = EventTrace()
        else:
            sink = None
        runs.append(_simulate_one(
            factory, config, seed=seed, energy_model=energy_model, trace=sink
        ))
    return SimulationReport(runs, trim=trim)


def verify(workload, config=None, **kwargs):
    """Schedule-exploration verification: ``repro.verify.verify``.

    Explores the workload's schedule space (random/PCT fuzzing or the
    exhaustive DPOR-lite explorer), checks the serializability,
    single-retry-bound, and state-equivalence oracles on every
    schedule, and shrinks any failure to a replayable
    :class:`~repro.verify.ScheduleArtifact`. See
    :func:`repro.verify.explore.verify` for the full parameter list.
    """
    from repro.verify import verify as _verify

    return _verify(workload, config, **kwargs)


def run_seeds(workload, config=None, *, seeds=range(1, 11), trim=PAPER_TRIM,
              **kwargs):
    """Multi-seed convenience: the :class:`AggregateResult` directly.

    Equivalent to ``simulate(..., seeds=seeds, trim=trim).aggregate()``.
    """
    return simulate(
        workload, config, seeds=seeds, trim=trim, **kwargs
    ).aggregate()


def sweep_retry_threshold(workload, config=None, thresholds=range(1, 11),
                          seeds=(1, 2, 3), trim=SWEEP_TRIM, *,
                          ops_per_thread=None, engine=None, oracle=None):
    """Best retry threshold per application (paper §6 methodology).

    The supported replacement for the deprecated
    ``repro.sim.runner.sweep_retry_threshold``; same contract, plus the
    facade's config-letter convenience. Returns ``(best_aggregate,
    best_threshold)``.
    """
    config = _resolve_config(config, oracle)
    return _sweep_retry_threshold(
        workload, config, thresholds=thresholds, seeds=seeds, trim=trim,
        ops_per_thread=ops_per_thread, engine=engine,
    )


__all__ = [
    "SimulationReport",
    "simulate",
    "verify",
    "run_seeds",
    "sweep_retry_threshold",
]
