"""Pluggable HTM designs: the protocol-backend seam of the simulator.

The paper evaluates four configurations (B/P/C/W) that the reproduction
originally hard-coded as two booleans threaded through the executor,
arbiter, and fallback layers. This module turns that choice into a
first-class backend API:

- :class:`HtmDesign` — the protocol every design implements. One
  instance is created per :class:`~repro.sim.machine.Machine` and
  shared by its executors; hooks cover attempt construction (read/write
  set tracking, CLEAR controller, fallback lock), conflict-resolution
  policy, retry/fallback threshold decisions, capacity-abort
  classification, commit cost, and per-design stat/energy annotations.
  Every hook takes keyword-only arguments so designs can override a
  subset without positional drift.
- :data:`DESIGN_REGISTRY` — string-keyed registry of design classes;
  :class:`~repro.sim.config.SimConfig` validates its ``design`` field
  against it and :func:`register_design` adds new entries.

The four paper configurations are registered as ``baseline``,
``powertm``, ``clear``, and ``clear+powertm``; their hooks reproduce
the pre-seam behaviour exactly (the micro-matrix figure goldens are
byte-identical through the dispatch). On top of the seam live two
designs from the related-work survey:

- ``lrw`` — FORTH-style Limited Read/Write-set HTM (arXiv 2510.15888):
  speculative footprints are bounded by small flat line budgets on top
  of the cache-geometry limits, and an overflow routes the region
  straight to the serial fallback instead of burning retries that
  cannot possibly fit.
- ``bigatomics`` — Big-Atomics-style constant-time multiword commit
  (arXiv 2501.07503): atomic regions whose footprint fits a small
  multiword budget commit with a short fixed latency; larger regions
  fall through to CLEAR-style failed-mode discovery unchanged.
"""

from repro.core.controller import ClearController
from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.htm.fallback import FallbackLock
from repro.htm.rwset import LimitedReadWriteSets, ReadWriteSets

#: name -> HtmDesign subclass for every registered design.
DESIGN_REGISTRY = {}

#: The paper's single-letter names for the four legacy designs.
LEGACY_LETTER_DESIGNS = {
    "B": "baseline",
    "P": "powertm",
    "C": "clear",
    "W": "clear+powertm",
}


def register_design(cls):
    """Class decorator adding a design to :data:`DESIGN_REGISTRY`."""
    if not cls.name:
        raise ValueError("a design needs a non-empty name")
    DESIGN_REGISTRY[cls.name] = cls
    return cls


class HtmDesign:
    """Base protocol (and requester-wins default behaviour).

    Subclass, set the class attributes, override the hooks that differ,
    and decorate with :func:`register_design`. All hook arguments are
    keyword-only. A design instance is per-machine and may keep run
    state (see :class:`BigAtomicsDesign`); it must not assume anything
    survives across machines.
    """

    #: Registry key; also the canonical ``SimConfig.design`` value.
    name = ""
    #: The paper's single-letter name, or None for post-paper designs.
    letter = None
    #: Conflict-resolution baseline: power-token priority when True.
    powertm = False
    #: Whether the CLEAR mechanism (discovery, NS-CL/S-CL) is active.
    clear = False
    #: Abort reasons this design legitimately routes straight to the
    #: fallback path before the retry budget is spent; the retry-bound
    #: oracle exempts such commits from its threshold-undershoot check.
    early_fallback_reasons = frozenset()

    def __init__(self, config):
        self.config = config

    # -- machine construction ------------------------------------------------

    def build_fallback_lock(self, *, line):
        """The global fallback lock guarding serial execution."""
        return FallbackLock(line)

    def make_controller(self, *, core, machine):
        """Per-core CLEAR controller, or None outside the clear family."""
        if not self.clear:
            return None
        config = self.config
        return ClearController(
            core,
            dir_set_of=machine.memsys.directory.set_of,
            can_coreside=machine.memsys.l1[core].can_coreside,
            ert_entries=config.ert_entries,
            crt_entries=config.crt_entries,
            crt_assoc=config.crt_assoc,
            alt_entries=config.alt_entries,
            sq_capacity=config.sq_entries,
            lq_capacity=config.lq_entries,
            scl_lock_policy=config.scl_lock_policy,
            crt_enabled=config.crt_enabled,
        )

    # -- attempt construction ------------------------------------------------

    def build_rwsets(self, *, executor):
        """Speculative access tracking for one conflict-detecting attempt.

        The default models TSX-like tracking in the private caches: the
        write set against L1 geometry, the union against L2, with every
        tracked line registered in the machine-global sharer index (and
        in the online monitor's first-read epoch summary when armed).
        """
        config = executor.config
        monitor = executor.monitor
        return ReadWriteSets(
            l1_sets=config.l1_size // (64 * config.l1_assoc),
            l1_assoc=config.l1_assoc,
            l2_sets=config.l2_size // (64 * config.l2_assoc),
            l2_assoc=config.l2_assoc,
            index=executor.machine.sharer_index,
            core=executor.core,
            monitor_epochs=monitor.line_epochs if monitor is not None else None,
        )

    # -- policy hooks --------------------------------------------------------

    def wants_power_token(self, *, counting_retries):
        """Whether a speculative attempt should request the power token."""
        return False

    def select_retry_mode(self, *, executor, reason, proposed):
        """The next attempt's mode after an abort.

        ``proposed`` is what the per-mode decision logic (CLEAR's
        decision tree, or plain speculative retry) suggested; the design
        gets the final word. The default applies the paper's counting-
        retry budget: the fallback path once ``retry_threshold`` aborts
        counted.
        """
        if executor.counting_retries >= executor.config.retry_threshold:
            return ExecMode.FALLBACK
        return proposed

    def classify_capacity_abort(self, *, executor, exc):
        """Abort reason for a read/write-set overflow (``exc``)."""
        return AbortReason.CAPACITY

    def conflict_nacker(self, *, power_core, requester_unstoppable):
        """Which conflicting peer NACKs the requester, or None.

        Called only when the power-token holder is among the conflicting
        peers. The default is PowerTM's rule: the power transaction
        never loses, except to an NS-CL lock acquisition (whose
        completion guarantee makes it unstoppable, §5.2).
        """
        if requester_unstoppable:
            return None
        return power_core

    def commit_cycles(self, *, executor):
        """Cycle cost of committing the attempt ``executor`` is ending."""
        return executor.config.tx_commit_cycles

    # -- reporting -----------------------------------------------------------

    def stat_annotations(self, *, machine):
        """Design-specific counters to attach to the run's MachineStats.

        Returned mappings land in ``stats.design_annotations`` (and the
        serialized result) only when non-empty, so designs without
        annotations keep legacy results byte-identical.
        """
        return {}


@register_design
class BaselineDesign(HtmDesign):
    """B: TSX-like requester-wins HTM with the retry/fallback budget."""

    name = "baseline"
    letter = "B"


@register_design
class PowerTmDesign(HtmDesign):
    """P: PowerTM — the first retry acquires the single power token."""

    name = "powertm"
    letter = "P"
    powertm = True

    def wants_power_token(self, *, counting_retries):
        return counting_retries > 0


@register_design
class ClearDesign(HtmDesign):
    """C: CLEAR over requester-wins (discovery, NS-CL/S-CL retries)."""

    name = "clear"
    letter = "C"
    clear = True


@register_design
class ClearPowerTmDesign(ClearDesign):
    """W: CLEAR layered over PowerTM."""

    name = "clear+powertm"
    letter = "W"
    powertm = True

    def wants_power_token(self, *, counting_retries):
        return counting_retries > 0


@register_design
class LrwDesign(HtmDesign):
    """Limited Read/Write-set HTM (arXiv 2510.15888).

    Speculative tracking is bounded by small flat budgets
    (``lrw_read_lines``/``lrw_write_lines``) on top of the cache
    geometry — modelling dedicated bounded tracking structures instead
    of whole private caches. A region that overflows its budget can
    never succeed speculatively, so a capacity abort skips the
    remaining retry budget and serializes under the fallback lock at
    once (graceful overflow-to-fallback).
    """

    name = "lrw"
    early_fallback_reasons = frozenset({AbortReason.CAPACITY})

    def build_rwsets(self, *, executor):
        config = executor.config
        monitor = executor.monitor
        return LimitedReadWriteSets(
            max_read_lines=config.lrw_read_lines,
            max_write_lines=config.lrw_write_lines,
            l1_sets=config.l1_size // (64 * config.l1_assoc),
            l1_assoc=config.l1_assoc,
            l2_sets=config.l2_size // (64 * config.l2_assoc),
            l2_assoc=config.l2_assoc,
            index=executor.machine.sharer_index,
            core=executor.core,
            monitor_epochs=monitor.line_epochs if monitor is not None else None,
        )

    def select_retry_mode(self, *, executor, reason, proposed):
        if reason is AbortReason.CAPACITY:
            return ExecMode.FALLBACK
        if executor.counting_retries >= executor.config.retry_threshold:
            return ExecMode.FALLBACK
        return proposed


@register_design
class BigAtomicsDesign(ClearDesign):
    """Big-Atomics-style constant-time multiword commit (arXiv 2501.07503).

    Small-footprint atomic regions — at most ``bigatomics_lines``
    distinct lines — commit with a short fixed latency
    (``bigatomics_commit_cycles``), modelling a multiword-atomic commit
    that publishes the whole write set in constant time. Regions above
    the budget behave exactly like the ``clear`` design: failed-mode
    discovery, NS-CL/S-CL retries, fallback. Multiword commits are
    counted per run and discounted by the energy model.
    """

    name = "bigatomics"
    letter = None  # post-paper design; ClearDesign's "C" must not leak

    def __init__(self, config):
        super().__init__(config)
        self.multiword_commits = 0

    def commit_cycles(self, *, executor):
        rwsets = executor.rwsets
        if (
            executor.mode is ExecMode.SPECULATIVE
            and rwsets is not None
            and len(rwsets.touched_lines()) <= executor.config.bigatomics_lines
        ):
            self.multiword_commits += 1
            return executor.config.bigatomics_commit_cycles
        return executor.config.tx_commit_cycles

    def stat_annotations(self, *, machine):
        if not self.multiword_commits:
            return {}
        return {"multiword_commits": self.multiword_commits}


def design_name(spec):
    """Canonical design name for a name or legacy letter (no warning).

    The silent translation helper for internal call sites; user-facing
    surfaces (``SimConfig.for_letter``, ``repro.api``) wrap it with a
    :class:`DeprecationWarning` for the letter spelling.
    """
    return LEGACY_LETTER_DESIGNS.get(spec, spec)


__all__ = [
    "HtmDesign",
    "DESIGN_REGISTRY",
    "LEGACY_LETTER_DESIGNS",
    "register_design",
    "design_name",
    "BaselineDesign",
    "PowerTmDesign",
    "ClearDesign",
    "ClearPowerTmDesign",
    "LrwDesign",
    "BigAtomicsDesign",
]
