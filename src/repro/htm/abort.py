"""Abort reasons and the Fig. 11 reporting categories.

The paper groups aborts into four categories, cheapest to costliest:
Memory Conflict, Explicit Fallback (found the fallback lock taken when
starting), Other Fallback (another thread took the fallback lock while
this AR ran speculatively), and Others (capacity, explicit xabort,
exceptions/interrupts, ...).
"""

import enum


class AbortReason(enum.Enum):
    """Precise cause of a transaction abort."""

    MEMORY_CONFLICT = "memory_conflict"
    NACKED = "nacked"  # request hit a locked cacheline (CL/power nack)
    EXPLICIT_FALLBACK = "explicit_fallback"  # fallback lock taken at begin
    OTHER_FALLBACK = "other_fallback"  # fallback lock taken mid-flight
    CAPACITY = "capacity"  # read/write set exceeded private cache
    SQ_OVERFLOW = "sq_overflow"  # store queue exhausted (discovery limit)
    ROB_OVERFLOW = "rob_overflow"  # speculative window exhausted
    EXPLICIT = "explicit"  # workload-issued xabort
    LOCK_SET_FAILURE = "lock_set_failure"  # CL mode could not pin its set
    FOOTPRINT_DEVIATION = "footprint_deviation"  # NS-CL learned-set miss
    OTHER = "other"  # exceptions, interrupts, ...
    # Chaos-layer injections (repro.sim.faults). Real TSX-class HTM
    # suffers spurious aborts (interrupts, microarchitectural events)
    # and unpredictable capacity aborts; the fault injector emulates
    # them under distinct reasons so chaos runs stay analyzable.
    INJECTED_SPURIOUS = "injected_spurious"
    INJECTED_CAPACITY = "injected_capacity"


class AbortCategory(enum.Enum):
    """Fig. 11 reporting buckets, plus the chaos-run injection bucket."""

    MEMORY_CONFLICT = "Memory Conflict"
    EXPLICIT_FALLBACK = "Explicit Fallback"
    OTHER_FALLBACK = "Other Fallback"
    OTHERS = "Others"
    INJECTED = "Injected"  # chaos-layer faults; empty without --chaos


_CATEGORY_OF = {
    AbortReason.MEMORY_CONFLICT: AbortCategory.MEMORY_CONFLICT,
    AbortReason.NACKED: AbortCategory.MEMORY_CONFLICT,
    AbortReason.EXPLICIT_FALLBACK: AbortCategory.EXPLICIT_FALLBACK,
    AbortReason.OTHER_FALLBACK: AbortCategory.OTHER_FALLBACK,
    AbortReason.CAPACITY: AbortCategory.OTHERS,
    AbortReason.SQ_OVERFLOW: AbortCategory.OTHERS,
    AbortReason.ROB_OVERFLOW: AbortCategory.OTHERS,
    AbortReason.EXPLICIT: AbortCategory.OTHERS,
    AbortReason.LOCK_SET_FAILURE: AbortCategory.OTHERS,
    AbortReason.FOOTPRINT_DEVIATION: AbortCategory.OTHERS,
    AbortReason.OTHER: AbortCategory.OTHERS,
    AbortReason.INJECTED_SPURIOUS: AbortCategory.INJECTED,
    AbortReason.INJECTED_CAPACITY: AbortCategory.INJECTED,
}

# Injected faults behave like their real counterparts everywhere else:
# they count toward the retry limit (a spurious abort on real hardware
# is indistinguishable from any other abort to the retry counter) and,
# like every non-memory-conflict cause, mark an S-CL region
# non-discoverable (paper §4.4.2).
INJECTED_REASONS = frozenset(
    {AbortReason.INJECTED_SPURIOUS, AbortReason.INJECTED_CAPACITY}
)

# Aborts that do not advance the retry counter toward the fallback
# threshold (paper §7, "certain types of aborts do not increase the
# counter to take the fallback path", which is also why observed retry
# counts can exceed the nominal maximum). Fallback-lock aborts resolve
# when the fallback holder finishes; NACKs resolve when the power-mode
# or cacheline-locked holder — both guaranteed/likely to commit —
# finishes. Neither indicates that this AR needs serialization.
NON_COUNTING_REASONS = frozenset(
    {AbortReason.EXPLICIT_FALLBACK, AbortReason.OTHER_FALLBACK,
     AbortReason.NACKED}
)

# Abort causes that mark the region non-discoverable when they hit an
# S-CL execution (paper §4.4.2: "If an abort is triggered by any other
# reason than memory conflicts, the section is marked as
# non-discoverable").
NON_MEMORY_REASONS = frozenset(
    {
        AbortReason.CAPACITY,
        AbortReason.SQ_OVERFLOW,
        AbortReason.ROB_OVERFLOW,
        AbortReason.EXPLICIT,
        AbortReason.LOCK_SET_FAILURE,
        AbortReason.OTHER,
        AbortReason.INJECTED_SPURIOUS,
        AbortReason.INJECTED_CAPACITY,
    }
)


def categorize_abort(reason):
    """Map a precise abort reason to its Fig. 11 category."""
    return _CATEGORY_OF[reason]


def counts_toward_retry_limit(reason):
    """Whether this abort advances the counter toward fallback."""
    return reason not in NON_COUNTING_REASONS
