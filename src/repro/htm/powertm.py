"""PowerTM's single power-mode token.

PowerTM (Dice, Herlihy, Kogan; TACO 2018) raises the priority of a
transaction that has already aborted once: a *power* transaction wins
every conflict instead of the requester. Only one transaction may hold
power mode at a time; the token is released at commit (or when the
holder leaves transactional execution, e.g. by going to fallback).
"""


class PowerToken:
    """Machine-wide power-mode arbitration."""

    def __init__(self):
        self._holder = None
        self.grants = 0
        # Optional trace hook: observer(event, core) with event
        # "acquire" (fresh grants only, not idempotent re-grants) or
        # "release". Wired by the machine only when tracing.
        self.observer = None

    @property
    def holder(self):
        """Core currently running in power mode, or None."""
        return self._holder

    def try_acquire(self, core):
        """Grant power mode if the token is free (idempotent for holder)."""
        if self._holder is None:
            self._holder = core
            self.grants += 1
            if self.observer is not None:
                self.observer("acquire", core)
            return True
        return self._holder == core

    def release(self, core):
        """Give the token back; True if this core actually held it."""
        if self._holder == core:
            self._holder = None
            if self.observer is not None:
                self.observer("release", core)
            return True
        return False

    def is_power(self, core):
        """True if ``core`` currently runs in power mode."""
        return self._holder == core
