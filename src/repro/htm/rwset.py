"""Transactional read/write sets and the speculative store buffer.

TSX-like HTMs track speculative accesses in the private caches: the
write set must fit in L1 (a written line may not be evicted without an
abort) and the read set in the larger private L2. We model both limits
by a per-set associativity check, which is how capacity aborts actually
arise in set-associative hardware (a hot set overflows long before the
total capacity does).

The associativity check is O(1) per access: per-cache-set occupancy
counters are bumped as lines are tracked, alongside a count of sets
currently over their associativity. The semantics match a full re-walk
of the sets exactly, including the asymmetry that a union overflow
*created* by a write (which only checks the write set against L1)
surfaces as a "read" capacity abort on the next newly-read line.

Speculative stores are buffered word-granular in the transaction; they
become architecturally visible only at commit. Loads snoop the buffer
first (store-to-load forwarding within the AR).

When constructed with ``index``/``core``, every newly tracked line is
also registered in the machine-global :class:`~repro.htm.sharer_index.
SharerIndex`, and ``detach_index`` (called on abort/commit/zombie)
withdraws all of them; see that module for the visibility invariant.
"""

from repro.memory.address import line_of_word


class CapacityExceeded(Exception):
    """The read or write set no longer fits the tracking structure."""

    def __init__(self, which, line):
        super().__init__("{} set overflow on line {}".format(which, line))
        self.which = which
        self.line = line


class ReadWriteSets:
    """Per-transaction speculative access tracking.

    Parameters mirror the private caches used for tracking: the write
    set is checked against the L1 geometry and the read set against the
    L2 geometry. ``None`` disables a check (used by unit tests).
    """

    __slots__ = (
        "_l1_sets", "_l1_assoc", "_l2_sets", "_l2_assoc",
        "read_set", "write_set", "_write_buffer",
        "_index", "_core", "_monitor_epochs", "monitor_reads",
        "_union_counts", "_union_over", "_write_counts", "_write_over",
    )

    def __init__(self, l1_sets=64, l1_assoc=12, l2_sets=1024, l2_assoc=8,
                 index=None, core=None, monitor_epochs=None):
        self._l1_sets = l1_sets
        self._l1_assoc = l1_assoc
        self._l2_sets = l2_sets
        self._l2_assoc = l2_assoc
        self.read_set = set()
        self.write_set = set()
        self._write_buffer = {}
        self._index = index
        self._core = core
        # Online-monitor hook (repro.sim.monitor): when armed, the
        # first read of each line snapshots the line's current commit
        # epoch into monitor_reads for the commit-time staleness check.
        # One dict store on the first-access miss path; None otherwise.
        self._monitor_epochs = monitor_epochs
        self.monitor_reads = {} if monitor_epochs is not None else None
        # Occupancy per cache set: union (read|write) against L2
        # geometry, write set against L1 geometry, plus how many sets
        # currently exceed their associativity.
        self._union_counts = {}
        self._union_over = 0
        self._write_counts = {}
        self._write_over = 0

    def record_read(self, line):
        """Track a speculatively read line; raises on overflow."""
        if line in self.read_set:
            return
        self.read_set.add(line)
        index = self._index
        if index is not None:
            index.add_reader(self._core, line)
        epochs = self._monitor_epochs
        if epochs is not None:
            self.monitor_reads[line] = epochs.get(line, 0)
        if self._l2_sets is not None:
            if line not in self.write_set:
                counts = self._union_counts
                idx = line % self._l2_sets
                count = counts.get(idx, 0) + 1
                counts[idx] = count
                if count == self._l2_assoc + 1:
                    self._union_over += 1
            if self._union_over:
                raise CapacityExceeded("read", line)

    def record_write(self, line):
        """Track a speculatively written line; raises on overflow."""
        if line in self.write_set:
            return
        self.write_set.add(line)
        index = self._index
        if index is not None:
            index.add_writer(self._core, line)
        if self._l2_sets is not None and line not in self.read_set:
            counts = self._union_counts
            idx = line % self._l2_sets
            count = counts.get(idx, 0) + 1
            counts[idx] = count
            if count == self._l2_assoc + 1:
                self._union_over += 1
        if self._l1_sets is not None:
            counts = self._write_counts
            idx = line % self._l1_sets
            count = counts.get(idx, 0) + 1
            counts[idx] = count
            if count == self._l1_assoc + 1:
                self._write_over += 1
            if self._write_over:
                raise CapacityExceeded("write", line)

    @staticmethod
    def _fits(lines, num_sets, assoc):
        # Reference implementation of the capacity rule; the hot path
        # uses the incremental counters, and tests cross-check the two.
        per_set = {}
        for line in lines:
            idx = line % num_sets
            per_set[idx] = per_set.get(idx, 0) + 1
            if per_set[idx] > assoc:
                return False
        return True

    def counters_consistent(self):
        """True iff the incremental counters match a fresh re-walk."""
        union_ok = write_ok = True
        if self._l2_sets is not None:
            expected = {}
            for line in self.read_set | self.write_set:
                idx = line % self._l2_sets
                expected[idx] = expected.get(idx, 0) + 1
            over = sum(1 for c in expected.values() if c > self._l2_assoc)
            union_ok = (expected == self._union_counts
                        and over == self._union_over)
        if self._l1_sets is not None:
            expected = {}
            for line in self.write_set:
                idx = line % self._l1_sets
                expected[idx] = expected.get(idx, 0) + 1
            over = sum(1 for c in expected.values() if c > self._l1_assoc)
            write_ok = (expected == self._write_counts
                        and over == self._write_over)
        return union_ok and write_ok

    # -- sharer index ------------------------------------------------------

    def detach_index(self):
        """Withdraw this attempt's lines from the machine sharer index.

        Idempotent; called when the core leaves conflict detection
        (abort, commit, or zombie via ``pending_abort``).
        """
        index = self._index
        if index is not None:
            index.drop_core(self._core, self.read_set, self.write_set)
            self._index = None

    # -- speculative store buffer ------------------------------------------

    def buffer_store(self, word_addr, value):
        """Hold a speculative store until commit."""
        self._write_buffer[word_addr] = value

    def forwarded_load(self, word_addr):
        """Value forwarded from the store buffer, or None if absent."""
        return self._write_buffer.get(word_addr)

    def drain_to(self, memory):
        """Commit: apply buffered stores to architectural memory in order."""
        for word_addr, value in self._write_buffer.items():
            memory.store(word_addr, value)
        self._write_buffer.clear()

    def discard(self):
        """Abort: throw away all speculative state."""
        self.detach_index()
        self.read_set.clear()
        self.write_set.clear()
        self._write_buffer.clear()
        if self.monitor_reads is not None:
            self.monitor_reads.clear()
        self._union_counts.clear()
        self._union_over = 0
        self._write_counts.clear()
        self._write_over = 0

    def conflicts_with_write(self, line):
        """Would a remote write to ``line`` conflict with this tx?"""
        return line in self.read_set or line in self.write_set

    def conflicts_with_read(self, line):
        """Would a remote read of ``line`` conflict with this tx?"""
        return line in self.write_set

    @property
    def store_buffer_entries(self):
        """Number of buffered speculative stores."""
        return len(self._write_buffer)

    def touched_lines(self):
        """All lines in either set."""
        return self.read_set | self.write_set

    def written_words(self):
        """Buffered (word, value) pairs, for commit-order tests."""
        return list(self._write_buffer.items())

    def written_lines_of_buffer(self):
        """Distinct lines with buffered stores."""
        return {line_of_word(addr) for addr in self._write_buffer}


class LimitedReadWriteSets(ReadWriteSets):
    """Bounded speculative tracking for the ``lrw`` design.

    On top of the cache-geometry checks, flat per-attempt budgets cap
    how many distinct lines the read and write sets may track —
    modelling small dedicated tracking structures (arXiv 2510.15888)
    instead of whole private caches. The budget is checked *before* a
    line is admitted, so a rejected line never registers in the sharer
    index and the overflow abort needs no index cleanup for it.
    """

    __slots__ = ("_max_read_lines", "_max_write_lines")

    def __init__(self, max_read_lines, max_write_lines, **kwargs):
        super().__init__(**kwargs)
        if max_read_lines < 1 or max_write_lines < 1:
            raise ValueError("LRW line budgets must be >= 1")
        self._max_read_lines = max_read_lines
        self._max_write_lines = max_write_lines

    def record_read(self, line):
        if line not in self.read_set and len(self.read_set) >= self._max_read_lines:
            raise CapacityExceeded("read", line)
        super().record_read(line)

    def record_write(self, line):
        if line not in self.write_set and len(self.write_set) >= self._max_write_lines:
            raise CapacityExceeded("write", line)
        super().record_write(line)
