"""Transactional read/write sets and the speculative store buffer.

TSX-like HTMs track speculative accesses in the private caches: the
write set must fit in L1 (a written line may not be evicted without an
abort) and the read set in the larger private L2. We model both limits
by a per-set associativity check, which is how capacity aborts actually
arise in set-associative hardware (a hot set overflows long before the
total capacity does).

Speculative stores are buffered word-granular in the transaction; they
become architecturally visible only at commit. Loads snoop the buffer
first (store-to-load forwarding within the AR).
"""

from repro.memory.address import line_of_word


class CapacityExceeded(Exception):
    """The read or write set no longer fits the tracking structure."""

    def __init__(self, which, line):
        super().__init__("{} set overflow on line {}".format(which, line))
        self.which = which
        self.line = line


class ReadWriteSets:
    """Per-transaction speculative access tracking.

    Parameters mirror the private caches used for tracking: the write
    set is checked against the L1 geometry and the read set against the
    L2 geometry. ``None`` disables a check (used by unit tests).
    """

    def __init__(self, l1_sets=64, l1_assoc=12, l2_sets=1024, l2_assoc=8):
        self._l1_sets = l1_sets
        self._l1_assoc = l1_assoc
        self._l2_sets = l2_sets
        self._l2_assoc = l2_assoc
        self.read_set = set()
        self.write_set = set()
        self._write_buffer = {}

    def record_read(self, line):
        """Track a speculatively read line; raises on overflow."""
        if line in self.read_set:
            return
        self.read_set.add(line)
        if self._l2_sets is not None and not self._fits(
            self.read_set | self.write_set, self._l2_sets, self._l2_assoc
        ):
            raise CapacityExceeded("read", line)

    def record_write(self, line):
        """Track a speculatively written line; raises on overflow."""
        if line in self.write_set:
            return
        self.write_set.add(line)
        if self._l1_sets is not None and not self._fits(
            self.write_set, self._l1_sets, self._l1_assoc
        ):
            raise CapacityExceeded("write", line)

    @staticmethod
    def _fits(lines, num_sets, assoc):
        per_set = {}
        for line in lines:
            idx = line % num_sets
            per_set[idx] = per_set.get(idx, 0) + 1
            if per_set[idx] > assoc:
                return False
        return True

    # -- speculative store buffer ------------------------------------------

    def buffer_store(self, word_addr, value):
        """Hold a speculative store until commit."""
        self._write_buffer[word_addr] = value

    def forwarded_load(self, word_addr):
        """Value forwarded from the store buffer, or None if absent."""
        return self._write_buffer.get(word_addr)

    def drain_to(self, memory):
        """Commit: apply buffered stores to architectural memory in order."""
        for word_addr, value in self._write_buffer.items():
            memory.store(word_addr, value)
        self._write_buffer.clear()

    def discard(self):
        """Abort: throw away all speculative state."""
        self.read_set.clear()
        self.write_set.clear()
        self._write_buffer.clear()

    def conflicts_with_write(self, line):
        """Would a remote write to ``line`` conflict with this tx?"""
        return line in self.read_set or line in self.write_set

    def conflicts_with_read(self, line):
        """Would a remote read of ``line`` conflict with this tx?"""
        return line in self.write_set

    @property
    def store_buffer_entries(self):
        """Number of buffered speculative stores."""
        return len(self._write_buffer)

    def touched_lines(self):
        """All lines in either set."""
        return self.read_set | self.write_set

    def written_words(self):
        """Buffered (word, value) pairs, for commit-order tests."""
        return list(self._write_buffer.items())

    def written_lines_of_buffer(self):
        """Distinct lines with buffered stores."""
        return {line_of_word(addr) for addr in self._write_buffer}
