"""Machine-global reverse sharer index for O(sharers) conflict probes.

Hardware HTMs do not interrogate every core on a conflict check: the
directory already knows, per line, which caches hold it, and only those
sharers see the coherence request. This module is the software analogue
— a map ``line -> (reader core-set, writer core-set)`` maintained
incrementally at the exact points transactional membership changes:

- ``ReadWriteSets.record_read``/``record_write`` add the owning core to
  the line's reader/writer set (the rwsets hold an index reference for
  the duration of the attempt);
- abort, commit, and the zombie transition (``pending_abort`` set by a
  remote conflict or a fallback sweep) drop every line the core
  touched, via ``ReadWriteSets.detach_index``;
- cores that are invisible to conflict detection never register at all:
  NS-CL attempts (lock-protected, not speculative in the arbiter's
  sense) get unindexed rwsets, and a failed-discovery transition always
  passes through the zombie path first, so a doomed or failed core has
  no residue here.

The invariant, checked by ``validate_machine``: the index equals the
union of read/write sets over exactly those cores the legacy
``Machine.peer_views`` scan would expose with ``is_failed=False`` —
i.e. phase BODY, speculative mode other than failed discovery, live
rwsets, no pending abort. ``ConflictArbiter.resolve_line`` over this
index is then equivalent to ``ConflictArbiter.resolve`` over full peer
views, by construction.
"""


class LineSharers:
    """Sharer vector for one cacheline: which cores track it, and how."""

    __slots__ = ("readers", "writers")

    def __init__(self):
        self.readers = set()
        self.writers = set()

    def __repr__(self):
        return "LineSharers(readers={}, writers={})".format(
            sorted(self.readers), sorted(self.writers)
        )


class SharerIndex:
    """line -> :class:`LineSharers` over all conflict-visible attempts."""

    __slots__ = ("_lines",)

    def __init__(self):
        self._lines = {}

    def get(self, line):
        """The sharer vector for ``line``, or None if untracked."""
        return self._lines.get(line)

    def add_reader(self, core, line):
        entry = self._lines.get(line)
        if entry is None:
            entry = LineSharers()
            self._lines[line] = entry
        entry.readers.add(core)

    def add_writer(self, core, line):
        entry = self._lines.get(line)
        if entry is None:
            entry = LineSharers()
            self._lines[line] = entry
        entry.writers.add(core)

    def drop_core(self, core, read_lines, write_lines):
        """Remove every registration ``core`` made for the given lines.

        Called with the attempt's read/write sets when the core leaves
        conflict detection (abort, commit, zombie). Entries left with no
        sharers are deleted so the index never outgrows the union of
        live footprints.
        """
        lines = self._lines
        for line in read_lines:
            entry = lines.get(line)
            if entry is not None:
                entry.readers.discard(core)
                if not entry.readers and not entry.writers:
                    del lines[line]
        for line in write_lines:
            entry = lines.get(line)
            if entry is not None:
                entry.writers.discard(core)
                if not entry.readers and not entry.writers:
                    del lines[line]

    def snapshot(self):
        """``{line: (frozen readers, frozen writers)}`` for validation."""
        return {
            line: (frozenset(entry.readers), frozenset(entry.writers))
            for line, entry in self._lines.items()
        }

    def __len__(self):
        return len(self._lines)

    def __repr__(self):
        return "SharerIndex({} lines)".format(len(self._lines))
