"""The global fallback lock.

SLE/HTM fallback serializes conflicting ARs behind one lock. Speculative
ARs read the lock's cacheline at begin: if a writer holds it they must
wait (Explicit Fallback abort), and they keep the line in their read set
so a later writer aborts them (Other Fallback abort).

CLEAR's NS-CL and S-CL modes take the lock *as readers* (paper §4.3:
"Both NS-CL and S-CL, before proceeding to lock cachelines, ensure that
no other AR is in fallback mode by acquiring a read lock on the AR's
mutex lock"). Readers exclude the writer but not each other, so multiple
CL-mode ARs run concurrently while fallback is held off — which also
reproduces the labyrinth serialization effect the paper reports.
"""

from repro.common.errors import ProtocolError


class FallbackLock:
    """A reader/writer lock occupying one cacheline.

    ``line`` is the cacheline id the lock variable lives in, so that
    speculative transactions can track it in their read sets.
    """

    def __init__(self, line):
        self.line = line
        self._writer = None
        self._readers = set()
        self.writer_acquisitions = 0
        # Optional trace hook: called as observer(event, core, shared)
        # with event "acquire"/"release" and shared True for the CL read
        # guard. Wired by the machine only when a trace sink is
        # attached; None costs one skipped check per transition.
        self.observer = None

    @property
    def writer(self):
        """Core holding the lock in fallback (write) mode, or None."""
        return self._writer

    @property
    def readers(self):
        """Cores holding the lock in CL-guard (read) mode."""
        return frozenset(self._readers)

    def is_write_held(self):
        """True while a core runs the fallback path."""
        return self._writer is not None

    def try_acquire_write(self, core):
        """Fallback execution: exclusive acquire. True on success."""
        if self._writer is not None or self._readers:
            return False
        self._writer = core
        self.writer_acquisitions += 1
        if self.observer is not None:
            self.observer("acquire", core, False)
        return True

    def release_write(self, core):
        """Fallback execution finished."""
        if self._writer != core:
            raise ProtocolError(
                "core {} releasing fallback lock held by {}".format(core, self._writer)
            )
        self._writer = None
        if self.observer is not None:
            self.observer("release", core, False)

    def try_acquire_read(self, core):
        """CL-mode guard: shared acquire. True on success."""
        if self._writer is not None:
            return False
        self._readers.add(core)
        if self.observer is not None:
            self.observer("acquire", core, True)
        return True

    def release_read(self, core):
        """A CL-mode AR finished (or aborted)."""
        if core not in self._readers:
            raise ProtocolError(
                "core {} releasing read lock it does not hold".format(core)
            )
        self._readers.discard(core)
        if self.observer is not None:
            self.observer("release", core, True)

    def force_release_any(self, core):
        """Drop whatever hold ``core`` has (abort cleanup)."""
        if self._writer == core:
            self._writer = None
            if self.observer is not None:
                self.observer("release", core, False)
        if core in self._readers:
            self._readers.discard(core)
            if self.observer is not None:
                self.observer("release", core, True)
