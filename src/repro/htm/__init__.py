"""HTM substrate: TSX-like best-effort transactions and PowerTM.

Provides the building blocks the execution engine composes into the
four evaluated configurations:

- :mod:`repro.htm.abort` — abort reason taxonomy (Fig. 11 categories).
- :mod:`repro.htm.rwset` — read/write set tracking with private-cache
  capacity limits and a speculative store buffer.
- :mod:`repro.htm.fallback` — the global fallback lock with writer
  (mutual exclusion) and reader (CL-mode guard) semantics.
- :mod:`repro.htm.powertm` — the single power-mode token of PowerTM.
- :mod:`repro.htm.arbiter` — requester-wins conflict arbitration with
  the PowerTM and CLEAR/S-CL NACK refinements.
- :mod:`repro.htm.design` — the pluggable :class:`HtmDesign` backend
  protocol and :data:`DESIGN_REGISTRY` of named designs.
"""

from repro.htm.abort import AbortReason, AbortCategory, categorize_abort
from repro.htm.design import (
    DESIGN_REGISTRY,
    LEGACY_LETTER_DESIGNS,
    HtmDesign,
    design_name,
    register_design,
)
from repro.htm.rwset import LimitedReadWriteSets, ReadWriteSets, CapacityExceeded
from repro.htm.fallback import FallbackLock
from repro.htm.powertm import PowerToken
from repro.htm.arbiter import ConflictArbiter, Resolution

__all__ = [
    "AbortReason",
    "AbortCategory",
    "categorize_abort",
    "HtmDesign",
    "DESIGN_REGISTRY",
    "LEGACY_LETTER_DESIGNS",
    "register_design",
    "design_name",
    "ReadWriteSets",
    "LimitedReadWriteSets",
    "CapacityExceeded",
    "FallbackLock",
    "PowerToken",
    "ConflictArbiter",
    "Resolution",
]
