"""Requester-wins conflict arbitration with PowerTM/CLEAR refinements.

Baseline rule (Intel TSX-like "requester wins"): the core issuing the
coherence request proceeds; any transaction whose read/write set the
request conflicts with is the *victim* and aborts.

Refinements modeled from the paper:

- **PowerTM**: a power-mode transaction never loses — a request that
  conflicts with it is NACKed and the *requester* aborts instead.
- **CLEAR failed-mode discovery**: requests issued by a failed-mode AR
  are flagged non-aborting; they never victimize peers (paper §4.1).
- **S-CL**: conflicts with an S-CL transaction's *locked* lines never
  reach the arbiter (the lock table NACKs them first); conflicts with
  its non-locked speculative accesses abort the S-CL victim, which the
  executor records in the CRT for the next attempt.
"""

from repro.htm.abort import AbortReason


class TxPeerView:
    """What the arbiter needs to know about an in-flight transaction."""

    __slots__ = ("core", "rwsets", "is_power", "conflict_detection_active", "is_failed")

    def __init__(self, core, rwsets, is_power=False,
                 conflict_detection_active=True, is_failed=False):
        self.core = core
        self.rwsets = rwsets
        self.is_power = is_power
        self.conflict_detection_active = conflict_detection_active
        self.is_failed = is_failed


class Resolution:
    """Outcome of arbitrating one memory request."""

    __slots__ = ("victims", "requester_abort_reason", "nacking_core")

    def __init__(self, victims=(), requester_abort_reason=None, nacking_core=None):
        self.victims = list(victims)
        self.requester_abort_reason = requester_abort_reason
        self.nacking_core = nacking_core

    @property
    def requester_proceeds(self):
        """True when the request performs (no nack)."""
        return self.requester_abort_reason is None

    def __repr__(self):
        return "Resolution(victims={}, requester_abort_reason={})".format(
            self.victims, self.requester_abort_reason
        )


#: Shared "no conflict" outcome for the hot path: resolving against a
#: line nobody tracks must not allocate. Victims is rebound to an empty
#: tuple so accidental mutation of the shared instance fails loudly.
NO_CONFLICT = Resolution()
NO_CONFLICT.victims = ()


class ConflictArbiter:
    """Pure conflict-resolution policy (no machine state).

    ``design`` is the machine's :class:`~repro.htm.design.HtmDesign`
    instance; when present, its ``conflict_nacker`` hook decides whether
    the power-token holder NACKs the requester. Without a design (unit
    tests, the legacy oracle path) the built-in PowerTM rule applies —
    which is exactly what every registered design currently implements,
    keeping the ``resolve``/``resolve_line`` cross-check valid.

    Resolutions produced here are what the online serializability
    monitor (:mod:`repro.sim.monitor`) audits downstream: a resolution
    this arbiter wrongly drops lets two overlapping ARs commit, which
    the monitor flags as a stale read at the second commit.
    """

    def __init__(self, design=None):
        self._design = design

    def resolve_line(self, requester_core, line, is_write, requester_failed,
                     sharers, power_core=None, requester_unstoppable=False):
        """Arbitrate a request against a line's sharer vector.

        O(sharers) drop-in for :meth:`resolve`: ``sharers`` is the
        :class:`~repro.htm.sharer_index.LineSharers` entry for ``line``
        (or None when nobody tracks it), and ``power_core`` the single
        power-token holder (or None). Equivalence with the full peer
        scan rests on the index invariant — it contains exactly the
        lines of conflict-visible attempts (doomed/failed/NS-CL cores
        are never registered), and at most one core holds the power
        token, so "first conflicting power peer in core order" and
        "power holder among the conflicting set" pick the same core.
        """
        if requester_failed or sharers is None:
            # Non-aborting request, or a line outside every live
            # footprint (the overwhelmingly common case).
            return NO_CONFLICT

        writers = sharers.writers
        if is_write:
            readers = sharers.readers
            if readers:
                conflicting = readers | writers if writers else set(readers)
            else:
                conflicting = set(writers)
        else:
            if not writers:
                return NO_CONFLICT
            conflicting = set(writers)
        conflicting.discard(requester_core)
        if not conflicting:
            return NO_CONFLICT

        if power_core is not None and power_core in conflicting:
            if self._design is not None:
                nacker = self._design.conflict_nacker(
                    power_core=power_core,
                    requester_unstoppable=requester_unstoppable,
                )
            else:
                nacker = None if requester_unstoppable else power_core
            if nacker is not None:
                return Resolution(
                    requester_abort_reason=AbortReason.NACKED,
                    nacking_core=nacker,
                )
        return Resolution(victims=sorted(conflicting))

    def resolve(self, requester_core, line, is_write, requester_failed, peers,
                requester_unstoppable=False):
        """Arbitrate a request against all in-flight peer transactions.

        Parameters
        ----------
        requester_core:
            Id of the requesting core.
        line:
            Cacheline the request targets.
        is_write:
            Whether the request needs exclusive permission.
        requester_failed:
            True when the requester runs failed-mode discovery; such
            requests are non-aborting and never victimize peers.
        peers:
            Iterable of :class:`TxPeerView` for every other in-flight
            transaction.
        requester_unstoppable:
            True for NS-CL lock acquisition: its completion guarantee
            means even power-mode peers lose (only S-CL and power nack
            each other per §5.2).
        """
        if requester_failed:
            # Non-aborting request: reads may still source data; stores
            # never leave the SQ so they issue no request at all.
            return NO_CONFLICT

        conflicting = []
        for peer in peers:
            if peer.core == requester_core:
                continue
            if not peer.conflict_detection_active:
                continue
            if peer.is_failed:
                # Already doomed; its speculative state will be thrown
                # away, so there is nothing to protect.
                continue
            if is_write:
                hit = peer.rwsets.conflicts_with_write(line)
            else:
                hit = peer.rwsets.conflicts_with_read(line)
            if hit:
                conflicting.append(peer)

        if not conflicting:
            return NO_CONFLICT

        for peer in conflicting:
            if peer.is_power and not requester_unstoppable:
                # Power transaction nacks; the requester aborts and no
                # victim is harmed (the request never performed).
                return Resolution(
                    requester_abort_reason=AbortReason.NACKED,
                    nacking_core=peer.core,
                )

        return Resolution(victims=[peer.core for peer in conflicting])
