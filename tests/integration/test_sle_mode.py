"""Tests for the in-core speculation (SLE) substrate (§4.1/§4.3)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Invoke, Load, Store
from repro.workloads import make_workload
from tests.integration.test_machine_basic import ScriptedWorkload, counter_invoke


def run_scripted(scripts, cores=2, shared_lines=80, **overrides):
    config = SimConfig.for_design("clear", num_cores=cores, speculation="sle",
                                  **overrides)
    workload = ScriptedWorkload(scripts, shared_lines=shared_lines)
    machine = Machine(config, workload, seed=1)
    stats = machine.run()
    return machine, workload, stats


def wide_region_invoke(stores, region="wide"):
    """A region whose store count can exceed the SQ."""

    def build(workload):
        addrs = [workload.addr(index % workload.shared_lines) for index in range(stores)]

        def body():
            for addr in addrs:
                value = yield Load(addr)
                yield Store(addr, value + 1)

        return Invoke(("scripted", region), body)

    return build


class TestConfig:
    def test_unknown_substrate_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(speculation="oracle")

    def test_default_is_htm(self):
        assert SimConfig().speculation == "htm"

    def test_replaced_preserves(self):
        assert SimConfig(speculation="sle").replaced(num_cores=2).speculation == "sle"


class TestWindowLimits:
    def test_small_regions_unaffected(self):
        script = [counter_invoke() for _ in range(6)]
        machine, workload, stats = run_scripted({0: list(script), 1: list(script)})
        assert stats.total_commits == 12
        assert machine.memory.peek(workload.addr(0)) == 12

    def test_sq_overflow_forces_fallback(self):
        # 80 stores > 72 SQ entries: the speculative attempt cannot fit
        # the in-core window; completion must come from the fallback.
        script = [wide_region_invoke(80)]
        _, _, stats = run_scripted({0: script}, retry_threshold=2,
                                   backoff_base=0)
        assert stats.total_commits == 1
        assert stats.aborts_by_reason.get(AbortReason.SQ_OVERFLOW, 0) > 0
        assert stats.commits_by_mode.get(ExecMode.FALLBACK, 0) == 1

    def test_rob_overflow_detected(self):
        # 400 ops > 352 ROB entries, with few distinct stores.
        def long_region(workload):
            addr = workload.addr(0)

            def body():
                value = yield Load(addr)
                for _ in range(360):
                    from repro.sim.program import Compute

                    yield Compute(1)
                yield Store(addr, value + 1)

            return Invoke(("scripted", "long"), body)

        _, _, stats = run_scripted({0: [long_region]}, retry_threshold=2,
                                   backoff_base=0)
        assert stats.aborts_by_reason.get(AbortReason.ROB_OVERFLOW, 0) > 0
        assert stats.commits_by_mode.get(ExecMode.FALLBACK, 0) == 1

    def test_window_overflow_marks_region_non_convertible(self):
        script = [wide_region_invoke(80)]
        machine, _, _ = run_scripted({0: script}, retry_threshold=2,
                                     backoff_base=0)
        entry = machine.executors[0].controller.ert.lookup(("scripted", "wide"))
        assert entry is not None
        assert not entry.is_convertible

    def test_htm_mode_commits_same_region_speculatively(self):
        # The same 80-store region fits out-of-core speculation (the
        # rwset capacity is the private cache, far bigger than the SQ).
        config = SimConfig.for_design("clear", num_cores=1, speculation="htm")
        workload = ScriptedWorkload({0: [wide_region_invoke(80)]},
                                    shared_lines=80)
        machine = Machine(config, workload, seed=1)
        stats = machine.run()
        assert stats.commits_by_mode.get(ExecMode.SPECULATIVE, 0) == 1


class TestSleWholeWorkloads:
    @pytest.mark.parametrize("name", ("mwobject", "bitcoin", "bst"))
    def test_workloads_complete_under_sle(self, name):
        config = SimConfig.for_design("clear+powertm", num_cores=4, speculation="sle")
        workload = make_workload(name, ops_per_thread=8)
        machine = Machine(config, workload, seed=2)
        stats = machine.run()
        assert not stats.truncated
        assert stats.total_commits == 4 * 8
