"""Smoke tests: every shipped example must run and conclude sensibly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "CLEAR is" in out
        assert "NS-CL" in out

    def test_compare_configs_custom_benchmarks(self):
        out = run_example("compare_configs.py", "mwobject", "bitcoin")
        assert "geomean" in out
        assert "CLEAR improves the geomean" in out

    def test_compare_configs_rejects_unknown(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "compare_configs.py"), "nope"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0

    def test_inspect_discovery(self):
        out = run_example("inspect_discovery.py")
        assert "Explored Region Table" in out
        assert "mwobject" in out and "labyrinth" in out

    def test_custom_workload_conserves(self):
        out = run_example("custom_workload.py")
        assert "conserved" in out
        assert "LOST MONEY" not in out

    def test_characterize_regions(self):
        out = run_example("characterize_regions.py", "bitcoin")
        assert "likely_immutable" in out
