"""Tests for the ablation knobs (S-CL policy, failed mode, CRT)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.controller import ClearController
from repro.core.modes import ExecMode
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload
from tests.integration.test_machine_basic import ScriptedWorkload, counter_invoke


def make_controller(**kwargs):
    return ClearController(
        core=0,
        dir_set_of=lambda line: line % 4,
        can_coreside=lambda lines: True,
        **kwargs
    )


class TestConfigValidation:
    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(scl_lock_policy="everything")

    def test_defaults_match_paper(self):
        config = SimConfig()
        assert config.scl_lock_policy == "writes"
        assert config.failed_mode_discovery
        assert config.crt_enabled

    def test_replaced_carries_flags(self):
        config = SimConfig(scl_lock_policy="all", crt_enabled=False,
                           failed_mode_discovery=False)
        clone = config.replaced(num_cores=2)
        assert clone.scl_lock_policy == "all"
        assert not clone.crt_enabled
        assert not clone.failed_mode_discovery


class TestControllerPolicies:
    def _discovery_with_read_and_write(self, controller):
        discovery = controller.begin_invocation("r")
        discovery.on_load(1, False)
        discovery.on_store(2, False)
        return discovery

    def test_all_policy_locks_reads_in_scl(self):
        controller = make_controller(scl_lock_policy="all")
        discovery = self._discovery_with_read_and_write(controller)
        plan = controller.prepare_lock_plan(discovery, ExecMode.S_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {1, 2}

    def test_writes_policy_skips_reads(self):
        controller = make_controller(scl_lock_policy="writes")
        discovery = self._discovery_with_read_and_write(controller)
        plan = controller.prepare_lock_plan(discovery, ExecMode.S_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {2}

    def test_disabled_crt_records_nothing(self):
        controller = make_controller(crt_enabled=False)
        controller.note_scl_conflicting_read(1)
        assert 1 not in controller.crt

    def test_disabled_crt_skips_promotion(self):
        controller = make_controller(crt_enabled=False)
        controller.crt.insert(1)  # even if something got in somehow
        discovery = self._discovery_with_read_and_write(controller)
        plan = controller.prepare_lock_plan(discovery, ExecMode.S_CL)
        planned = {entry.line for group in plan for entry in group}
        assert planned == {2}


class TestFailedModeAblation:
    def run_contended(self, failed_mode):
        script = [counter_invoke() for _ in range(12)]
        config = SimConfig.for_design("clear", num_cores=2, failed_mode_discovery=failed_mode
        )
        workload = ScriptedWorkload({0: list(script), 1: list(script)})
        machine = Machine(config, workload, seed=1)
        stats = machine.run()
        return machine, workload, stats

    def test_without_failed_mode_still_correct(self):
        machine, workload, stats = self.run_contended(failed_mode=False)
        assert machine.memory.peek(workload.addr(0)) == 24
        assert stats.total_commits == 24

    def test_without_failed_mode_no_discovery_cycles(self):
        _, _, stats = self.run_contended(failed_mode=False)
        assert stats.discovery_time_fraction() == 0.0

    def test_with_failed_mode_spends_discovery_cycles(self):
        _, _, stats = self.run_contended(failed_mode=True)
        assert stats.discovery_time_fraction() > 0.0

    def test_immediate_decision_still_converts(self):
        # Even with partial information the contended counter region is
        # convertible (the conflicting line was already discovered).
        _, _, stats = self.run_contended(failed_mode=False)
        cl_commits = stats.commits_by_mode.get(ExecMode.NS_CL, 0) + \
            stats.commits_by_mode.get(ExecMode.S_CL, 0)
        assert cl_commits > 0


class TestWholeWorkloadWithAblations:
    @pytest.mark.parametrize("overrides", [
        dict(scl_lock_policy="all"),
        dict(crt_enabled=False),
        dict(failed_mode_discovery=False),
        dict(scl_lock_policy="all", crt_enabled=False,
             failed_mode_discovery=False),
    ])
    def test_bitcoin_conserves_under_every_ablation(self, micro_machine,
                                                    overrides):
        machine = micro_machine("bitcoin", "W", cores=4, seed=3,
                                ops_per_thread=10, **overrides)
        stats = machine.run()
        workload = machine.workload
        assert not stats.truncated
        assert workload.total_balance(machine.memory) == workload.num_wallets * 10_000
