"""Integration tests: CLEAR's execution modes end-to-end.

Each scenario drives the decision tree down a specific branch and
checks the machine both picks the expected mode and stays correct.
"""

from repro.core.modes import ExecMode
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Branch, Invoke, Load, Store
from tests.integration.test_machine_basic import ScriptedWorkload, counter_invoke


def run_scripted(scripts, letter="C", cores=2, shared_lines=8, **overrides):
    config = SimConfig.for_design(design_name(letter), num_cores=cores, **overrides)
    workload = ScriptedWorkload(scripts, shared_lines=shared_lines)
    machine = Machine(config, workload, seed=1)
    stats = machine.run()
    return machine, workload, stats


def pointer_chase_invoke(region="chase"):
    """A mutable-footprint AR: chases a pointer stored in line 1."""

    def build(workload):
        ptr_slot = workload.addr(1)

        def body():
            target = yield Load(ptr_slot)
            yield Branch(target)
            if target != 0:
                value = yield Load(target)
                yield Store(target, value + 1)
            # Move the pointer so retries see a different footprint.
            yield Store(ptr_slot, workload.addr(2 + (int(target) % 3)))

        return Invoke(("scripted", region), body)

    return build


def big_footprint_invoke(lines, region="big"):
    def build(workload):
        addrs = [workload.addr(line) for line in range(2, 2 + lines)]

        def body():
            for addr in addrs:
                value = yield Load(addr)
                yield Store(addr, value + 1)

        return Invoke(("scripted", region), body)

    return build


class TestNsClMode:
    def test_immutable_contended_region_converts(self):
        script = [counter_invoke() for _ in range(15)]
        _, _, stats = run_scripted({0: list(script), 1: list(script)})
        assert stats.commits_by_mode.get(ExecMode.NS_CL, 0) > 0
        assert stats.commits_by_mode.get(ExecMode.S_CL, 0) == 0

    def test_nscl_commits_with_zero_or_few_fallbacks(self):
        script = [counter_invoke() for _ in range(15)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)}, retry_threshold=3
        )
        fallback = stats.commits_by_mode.get(ExecMode.FALLBACK, 0)
        assert fallback <= stats.total_commits * 0.2


class TestSClMode:
    def test_tainted_contended_region_uses_scl(self):
        # Both threads hammer the pointer slot: the region is convertible
        # (small footprint) but tainted (indirection) -> S-CL retries.
        setup = [counter_invoke("warm")]  # touch memory so lines exist
        script = [pointer_chase_invoke() for _ in range(20)]
        _, _, stats = run_scripted(
            {0: setup + list(script), 1: list(script)}
        )
        assert stats.commits_by_mode.get(ExecMode.S_CL, 0) > 0
        assert stats.commits_by_mode.get(ExecMode.NS_CL, 0) == 0


class TestSpeculativeRetryPath:
    def test_oversized_region_never_converts(self):
        # Footprint of 40 lines > 32-entry ALT: CLEAR must leave the
        # region on the plain speculative/fallback path.
        script = [big_footprint_invoke(40) for _ in range(6)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)}, shared_lines=64
        )
        assert stats.commits_by_mode.get(ExecMode.NS_CL, 0) == 0
        assert stats.commits_by_mode.get(ExecMode.S_CL, 0) == 0
        assert stats.total_commits == 12


class TestDiscoveryBookkeeping:
    def test_ert_disables_discovery_for_oversized_region(self):
        script = [big_footprint_invoke(40) for _ in range(6)]
        machine, _, _ = run_scripted(
            {0: list(script), 1: list(script)}, shared_lines=64
        )
        entry = machine.executors[0].controller.ert.lookup(("scripted", "big"))
        assert entry is not None
        assert not entry.is_convertible

    def test_contended_immutable_region_stays_convertible(self):
        script = [counter_invoke() for _ in range(15)]
        machine, _, _ = run_scripted({0: list(script), 1: list(script)})
        entry = machine.executors[0].controller.ert.lookup(("scripted", "r"))
        assert entry is not None
        assert entry.is_convertible
        assert entry.is_immutable

    def test_discovery_time_tracked_under_contention(self):
        script = [counter_invoke() for _ in range(15)]
        _, _, stats = run_scripted({0: list(script), 1: list(script)})
        assert stats.discovery_time_fraction() >= 0.0


class TestLockRelease:
    def test_no_locks_leak_after_run(self):
        script = [counter_invoke() for _ in range(10)]
        machine, _, _ = run_scripted({0: list(script), 1: list(script)})
        assert machine.memsys.locks.locked_line_count() == 0

    def test_fallback_lock_released(self):
        script = [counter_invoke() for _ in range(10)]
        machine, _, _ = run_scripted(
            {0: list(script), 1: list(script)}, retry_threshold=1
        )
        assert not machine.fallback.is_write_held()
        assert machine.fallback.readers == frozenset()

    def test_power_token_released(self):
        script = [counter_invoke() for _ in range(10)]
        machine, _, _ = run_scripted(
            {0: list(script), 1: list(script)}, letter="W"
        )
        assert machine.power.holder is None
