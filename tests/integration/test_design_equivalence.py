"""Legacy spellings must be byte-identical to design names (satellite).

Each of the paper's four configurations can be spelled three ways: the
deprecated boolean flags, the deprecated B/P/C/W letter, and the
canonical design name. All three must produce the same normalized
config and — run for run — byte-identical result JSON through the new
design dispatch. (The full micro-matrix figure goldens are pinned by
``test_conflict_equivalence``; this file proves the *spellings* agree.)
"""

import json
import warnings

import pytest

from repro import api
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

LEGACY_COMBOS = [
    ("B", dict(powertm=False, clear=False), "baseline"),
    ("P", dict(powertm=True, clear=False), "powertm"),
    ("C", dict(powertm=False, clear=True), "clear"),
    ("W", dict(powertm=True, clear=True), "clear+powertm"),
]


def run_json(config, workload="mwobject", seed=1):
    machine = Machine(
        config, make_workload(workload, ops_per_thread=4), seed=seed
    )
    stats = machine.run()
    return json.dumps(stats.to_dict(), sort_keys=True)


class TestSpellingEquivalence:
    @pytest.mark.parametrize("letter, flags, design", LEGACY_COMBOS)
    def test_configs_normalize_identically(self, letter, flags, design):
        canonical = SimConfig.for_design(design, num_cores=4)
        with pytest.deprecated_call():
            from_flags = SimConfig(num_cores=4, **flags)
        with pytest.deprecated_call():
            from_letter = SimConfig.for_letter(letter, num_cores=4)
        assert from_flags == canonical
        assert from_letter == canonical
        assert from_flags.fingerprint() == canonical.fingerprint()
        assert from_letter.fingerprint() == canonical.fingerprint()

    @pytest.mark.parametrize("letter, flags, design", LEGACY_COMBOS)
    def test_runs_byte_identical(self, letter, flags, design):
        canonical = run_json(SimConfig.for_design(design, num_cores=4))
        with pytest.deprecated_call():
            config = SimConfig(num_cores=4, **flags)
        assert run_json(config) == canonical

    @pytest.mark.parametrize("letter, flags, design", LEGACY_COMBOS)
    def test_api_letter_warns_and_matches_design_name(self, letter, flags,
                                                      design):
        named = api.simulate("mwobject", design, seeds=1, ops_per_thread=2)
        with pytest.deprecated_call():
            lettered = api.simulate("mwobject", letter, seeds=1,
                                    ops_per_thread=2)
        assert lettered.run.config == named.run.config
        assert json.dumps(lettered.stats.to_dict(), sort_keys=True) \
            == json.dumps(named.stats.to_dict(), sort_keys=True)

    def test_design_name_accepted_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = api.simulate("mwobject", "clear", seeds=1,
                                  ops_per_thread=3)
        assert report.run.config.design == "clear"
