"""Integration tests: the machine event loop on small scenarios.

Uses a purpose-built micro-workload so each test controls exactly which
atomic regions run where.
"""

from repro.common.constants import WORDS_PER_LINE
from repro.core.modes import ExecMode
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Compute, Invoke, Load, Store, Think
from repro.workloads.base import Mutability, RegionSpec, Workload


class ScriptedWorkload(Workload):
    """Runs a fixed per-thread list of invocations."""

    name = "scripted"

    def __init__(self, scripts, shared_lines=8):
        super().__init__(ops_per_thread=0, think_cycles=(1, 1))
        self.scripts = scripts
        self.shared_lines = shared_lines
        self.base = None
        self._cursor = None

    def region_specs(self):
        return [RegionSpec("r", Mutability.IMMUTABLE)]

    def setup(self, memory, allocator, num_threads, rng):
        self.base_setup(num_threads)
        self.base = allocator.alloc_lines(self.shared_lines)
        self._cursor = [0] * num_threads

    def addr(self, line, offset=0):
        return self.base + line * WORDS_PER_LINE + offset

    def next_action(self, thread_id, rng):
        script = self.scripts.get(thread_id, [])
        if self._cursor[thread_id] >= len(script):
            return None
        action = script[self._cursor[thread_id]]
        self._cursor[thread_id] += 1
        if callable(action):
            return action(self)
        return action

    def make_invocation(self, thread_id, rng):
        raise AssertionError("scripted workload builds its own actions")


def counter_invoke(region="r"):
    def build(workload):
        addr = workload.addr(0)

        def body():
            value = yield Load(addr)
            yield Compute(2)
            yield Store(addr, value + 1)

        return Invoke(("scripted", region), body)

    return build


def run_scripted(scripts, letter="B", cores=2, **overrides):
    config = SimConfig.for_design(design_name(letter), num_cores=cores, **overrides)
    workload = ScriptedWorkload(scripts)
    machine = Machine(config, workload, seed=1)
    stats = machine.run()
    return machine, workload, stats


class TestSingleCore:
    def test_one_region_commits(self):
        machine, workload, stats = run_scripted({0: [counter_invoke()]})
        assert stats.total_commits == 1
        assert stats.total_aborts == 0
        assert machine.memory.peek(workload.addr(0)) == 1
        assert stats.commits_by_mode[ExecMode.SPECULATIVE] == 1

    def test_think_only_thread_finishes(self):
        machine, _, stats = run_scripted({0: [Think(10)], 1: []})
        assert stats.total_commits == 0
        assert stats.makespan_cycles >= 10

    def test_sequential_regions_accumulate(self):
        machine, workload, stats = run_scripted(
            {0: [counter_invoke(), counter_invoke(), counter_invoke()]}
        )
        assert machine.memory.peek(workload.addr(0)) == 3
        assert stats.total_commits == 3

    def test_makespan_positive(self):
        _, _, stats = run_scripted({0: [counter_invoke()]})
        assert stats.makespan_cycles > 0


class TestTwoCoreConflicts:
    def test_contended_counter_is_atomic(self):
        script = [counter_invoke() for _ in range(10)]
        machine, workload, stats = run_scripted({0: list(script), 1: list(script)})
        # Every one of the 20 increments must be applied exactly once.
        assert machine.memory.peek(workload.addr(0)) == 20
        assert stats.total_commits == 20

    def test_disjoint_regions_never_abort(self):
        def invoke_on(line):
            def build(workload):
                addr = workload.addr(line)

                def body():
                    value = yield Load(addr)
                    yield Store(addr, value + 1)

                return Invoke(("scripted", "r"), body)

            return build

        _, _, stats = run_scripted(
            {0: [invoke_on(0)] * 5, 1: [invoke_on(1)] * 5}
        )
        assert stats.total_aborts == 0

    def test_contended_counter_atomic_under_all_configs(self):
        for letter in "BPCW":
            script = [counter_invoke() for _ in range(8)]
            machine, workload, stats = run_scripted(
                {0: list(script), 1: list(script)}, letter=letter
            )
            assert machine.memory.peek(workload.addr(0)) == 16, letter


class TestFallbackPath:
    def test_low_retry_threshold_forces_fallback(self):
        script = [counter_invoke() for _ in range(10)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)},
            retry_threshold=1,
            backoff_base=0,
        )
        assert stats.commits_by_mode.get(ExecMode.FALLBACK, 0) > 0

    def test_fallback_commits_still_atomic(self):
        script = [counter_invoke() for _ in range(10)]
        machine, workload, stats = run_scripted(
            {0: list(script), 1: list(script)},
            retry_threshold=1,
            backoff_base=0,
        )
        assert machine.memory.peek(workload.addr(0)) == 20


class TestClearPath:
    def test_clear_converts_contended_counter_to_nscl(self):
        script = [counter_invoke() for _ in range(12)]
        machine, workload, stats = run_scripted(
            {0: list(script), 1: list(script)}, letter="C"
        )
        assert machine.memory.peek(workload.addr(0)) == 24
        assert stats.commits_by_mode.get(ExecMode.NS_CL, 0) > 0

    def test_clear_reduces_fallback(self):
        script = [counter_invoke() for _ in range(12)]
        _, _, baseline = run_scripted(
            {0: list(script), 1: list(script)}, letter="B", retry_threshold=2
        )
        script = [counter_invoke() for _ in range(12)]
        _, _, clear = run_scripted(
            {0: list(script), 1: list(script)}, letter="C", retry_threshold=2
        )
        assert clear.commits_by_mode.get(ExecMode.FALLBACK, 0) <= baseline.commits_by_mode.get(
            ExecMode.FALLBACK, 0
        )
