"""Integration tests for the runtime oracle layer.

The oracle must stay silent on correct executions (it replays the
committed schedule and finds the identical final state) and must catch
planted violations: out-of-band memory tampering, leaked cacheline
locks, and leaked fallback/power holdings.
"""

import pytest

from repro.common.errors import OracleViolation
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload


def oracle_config(letter="C", **overrides):
    return SimConfig.for_design(design_name(letter), num_cores=4, oracle="shadow", **overrides)


class TestOraclePasses:
    @pytest.mark.parametrize("workload", ["hashmap", "bst", "labyrinth", "mwobject"])
    @pytest.mark.parametrize("letter", ["B", "C"])
    def test_silent_on_correct_runs(self, workload, letter):
        machine = Machine(
            oracle_config(letter),
            make_workload(workload, ops_per_thread=6),
            seed=2,
        )
        stats = machine.run()  # finalize() runs inside; no raise = pass
        assert stats.total_commits > 0
        assert len(machine.oracle.commits) == stats.total_commits

    def test_commit_records_are_serializable(self):
        machine = Machine(
            oracle_config(), make_workload("hashmap", ops_per_thread=5), seed=4
        )
        machine.run()
        for record in machine.oracle.commits:
            dumped = record.to_dict()
            assert dumped["order"] == record.order
            assert dumped["mode"] in {
                "speculative", "failed_discovery", "ns_cl", "s_cl", "fallback",
            }

    def test_periodic_sampling_happens(self):
        machine = Machine(
            oracle_config(oracle_validate_interval=64),
            make_workload("hashmap", ops_per_thread=8),
            seed=1,
        )
        machine.run()
        assert machine.oracle.samples_taken > 0

    def test_oracle_run_matches_plain_run(self):
        plain = Machine(
            SimConfig.for_design("clear", num_cores=4),
            make_workload("hashmap", ops_per_thread=6), seed=5,
        ).run()
        watched = Machine(
            oracle_config(), make_workload("hashmap", ops_per_thread=6), seed=5
        ).run()
        assert plain.to_dict() == watched.to_dict()


class TestOracleCatches:
    def test_out_of_band_tampering_breaks_serializability(self):
        machine = Machine(
            oracle_config(), make_workload("hashmap", ops_per_thread=5), seed=3
        )
        # An architectural store no AR issued: the replayed schedule can
        # never reproduce it, so the final-state diff must flag it.
        machine.memory.store(10_000_000, 42)
        with pytest.raises(OracleViolation) as excinfo:
            machine.run()
        details = excinfo.value.details
        assert any(diff["addr"] == 10_000_000 for diff in details["diffs"])

    def test_leaked_cacheline_lock_detected(self):
        machine = Machine(
            oracle_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        # Planted on a core id no executor owns, so no commit path ever
        # bulk-releases it: it must survive to the end-of-run leak check.
        machine.memsys.locks.try_lock(99, 123_456)
        with pytest.raises(OracleViolation, match="lock-table leak") as excinfo:
            machine.run()
        assert excinfo.value.details["held"] == {99: [123_456]}

    def test_leaked_power_token_detected(self):
        machine = Machine(
            oracle_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        machine.power.try_acquire(99)
        with pytest.raises(OracleViolation, match="power-token leak"):
            machine.run()

    def test_leaked_fallback_reader_detected(self):
        machine = Machine(
            oracle_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        machine.fallback.try_acquire_read(99)
        with pytest.raises(OracleViolation, match="fallback-lock leak"):
            machine.run()
