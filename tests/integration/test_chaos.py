"""Chaos runs: every workload completes and verifies under injected faults.

The acceptance bar from the robustness design: a seeded chaos run
(spurious aborts at >= 5%) must complete all 19 workloads under the
CLEAR configuration with the serializability/leak oracles passing, and
the injected fault sequence must be bit-reproducible from the seed.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.htm.abort import AbortCategory
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import ALL_NAMES, make_workload

CHAOS = dict(
    fault_spurious_rate=0.05,
    fault_capacity_rate=0.02,
    fault_jitter_cycles=4,
    fault_wakeup_delay_cycles=6,
    oracle="shadow",
)


def chaos_machine(workload_name, letter="C", seed=7, **overrides):
    fields = dict(CHAOS)
    fields.update(overrides)
    config = SimConfig.for_design(design_name(letter), num_cores=4, **fields)
    return Machine(
        config, make_workload(workload_name, ops_per_thread=4), seed=seed
    )


class TestAllWorkloadsSurviveChaos:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_completes_with_oracle_passing(self, name):
        machine = chaos_machine(name)
        stats = machine.run()  # oracle finalize inside; no raise = verified
        assert stats.total_commits > 0
        assert not stats.truncated


class TestChaosDeterminism:
    def test_same_seed_reproduces_fault_sequence_and_stats(self):
        first = chaos_machine("hashmap")
        first_stats = first.run()
        second = chaos_machine("hashmap")
        second_stats = second.run()
        assert first.faults.log == second.faults.log
        assert first.faults.summary() == second.faults.summary()
        assert first_stats.to_dict() == second_stats.to_dict()

    def test_different_seed_changes_fault_sequence(self):
        runs = {}
        for seed in (7, 8):
            machine = chaos_machine("hashmap", seed=seed)
            machine.run()
            runs[seed] = (machine.faults.log, machine.faults.summary())
        assert runs[7] != runs[8]

    def test_injected_aborts_surface_in_stats(self):
        machine = chaos_machine("hashmap", fault_spurious_rate=0.3)
        stats = machine.run()
        assert stats.injected_abort_count() > 0
        assert stats.injected_abort_count() == machine.faults.injected_abort_count()
        assert (
            stats.aborts_by_category[AbortCategory.INJECTED]
            == stats.injected_abort_count()
        )

    def test_stats_roundtrip_preserves_injected_category(self):
        from repro.sim.stats import MachineStats

        machine = chaos_machine("hashmap", fault_spurious_rate=0.3)
        stats = machine.run()
        rebuilt = MachineStats.from_dict(stats.to_dict())
        assert rebuilt.injected_abort_count() == stats.injected_abort_count()


class TestChaosIsZeroCostWhenOff:
    def test_disabled_chaos_is_bit_identical_to_baseline(self):
        # The hooks must consume no RNG draws and no cycles when off:
        # a config with every knob at zero produces the same run as one
        # predating the chaos layer entirely.
        baseline = Machine(
            SimConfig.for_design("clear+powertm", num_cores=4),
            make_workload("hashmap", ops_per_thread=6), seed=9,
        )
        assert baseline.faults is None
        stats = baseline.run().to_dict()
        again = Machine(
            SimConfig.for_design("clear+powertm", num_cores=4),
            make_workload("hashmap", ops_per_thread=6), seed=9,
        ).run().to_dict()
        assert stats == again

    def test_nscl_and_fallback_are_never_injected(self):
        # Injection only strikes speculative state; the completion
        # guarantees of NS-CL and fallback survive any fault rate.
        machine = chaos_machine(
            "mwobject", fault_spurious_rate=0.9, fault_capacity_rate=0.1
        )
        stats = machine.run()
        assert stats.total_commits > 0  # still finishes at 100% injection
