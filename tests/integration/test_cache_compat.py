"""Cache compatibility across the v1 -> v2 result-schema bump.

SCHEMA_VERSION participates in both the cache key and the stored
payload, so entries written by an older build must silently miss (never
deserialize into the new shape), while same-version entries round-trip
exactly — traces included — and legacy v1 result dicts (no ``trace``
slot, no ``metrics`` section) still deserialize for consumers holding
old JSON files.
"""

import json

import pytest

from repro.sim import engine as engine_mod
from repro.sim.config import SimConfig
from repro.sim.engine import SCHEMA_VERSION, ExperimentEngine, RunSpec
from repro.sim.runner import RunResult


def make_spec(trace=False):
    return RunSpec(
        workload="arrayswap",
        config=SimConfig.for_letter("B", num_cores=4),
        seed=1, ops_per_thread=4, trace=trace,
    )


class TestCacheRoundTrip:
    def test_same_version_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        first = engine.run_specs_report([make_spec()])
        assert first.cache_hits == 0
        second = engine.run_specs_report([make_spec()])
        assert second.cache_hits == 1
        assert second.results[0].to_dict() == first.results[0].to_dict()

    def test_trace_survives_the_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        first = engine.run_specs([make_spec(trace=True)])[0]
        second_report = engine.run_specs_report([make_spec(trace=True)])
        second = second_report.results[0]
        assert second_report.cache_hits == 1
        assert second.trace is not None
        assert second.trace.to_dicts() == first.trace.to_dicts()

    def test_traced_and_untraced_key_separately(self, tmp_path):
        assert make_spec(trace=False).cache_key() \
            != make_spec(trace=True).cache_key()
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_specs([make_spec(trace=False)])
        report = engine.run_specs_report([make_spec(trace=True)])
        assert report.cache_hits == 0  # the untraced entry must not serve
        assert report.results[0].trace is not None


class TestSchemaBump:
    def test_key_depends_on_schema_version(self, monkeypatch):
        key_now = make_spec().cache_key()
        monkeypatch.setattr(engine_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        assert make_spec().cache_key() != key_now

    def test_old_schema_entries_miss(self, tmp_path, monkeypatch):
        # Populate the cache as the previous schema version would have.
        monkeypatch.setattr(engine_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        old_engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        old_engine.run_specs([make_spec()])
        monkeypatch.undo()
        # A current-version engine must recompute, not deserialize v1.
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        report = engine.run_specs_report([make_spec()])
        assert report.cache_hits == 0
        assert report.results[0] is not None

    def test_stored_payload_stamped_with_version(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_specs([make_spec()])
        entries = list(tmp_path.rglob("*.json"))
        assert entries
        payload = json.loads(entries[0].read_text())
        assert payload["schema_version"] == SCHEMA_VERSION


class TestLegacyResultDicts:
    """v1 JSON (pre-trace, pre-metrics) must still deserialize."""

    def test_run_result_without_trace_slot(self):
        data = make_run_result_dict()
        data.pop("trace", None)
        result = RunResult.from_dict(data)
        assert result.trace is None
        assert result.workload_name == "arrayswap"

    def test_stats_without_metrics_section(self):
        data = make_run_result_dict()
        assert "metrics" in data["stats"]
        data["stats"].pop("metrics")
        result = RunResult.from_dict(data)
        assert result.stats.total_commits > 0

    def test_current_dicts_carry_both_new_sections(self):
        data = make_run_result_dict(trace=True)
        assert data["trace"] is not None
        assert "metrics" in data["stats"]


def make_run_result_dict(trace=False):
    from repro.sim.runner import _simulate_one
    from repro.obs.trace import EventTrace
    from repro.workloads import make_workload

    result = _simulate_one(
        lambda: make_workload("arrayswap", ops_per_thread=4),
        SimConfig.for_letter("B", num_cores=4), seed=1,
        trace=EventTrace() if trace else None,
    )
    return result.to_dict()
