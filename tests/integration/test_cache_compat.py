"""Cache compatibility across the v1 -> v2 result-schema bump.

SCHEMA_VERSION participates in both the cache key and the stored
payload, so entries written by an older build must silently miss (never
deserialize into the new shape), while same-version entries round-trip
exactly — traces included — and legacy v1 result dicts (no ``trace``
slot, no ``metrics`` section) still deserialize for consumers holding
old JSON files.
"""

import json

import pytest

from repro.sim import engine as engine_mod
from repro.sim.config import SimConfig
from repro.sim.engine import SCHEMA_VERSION, ExperimentEngine, RunSpec
from repro.sim.runner import RunResult


def make_spec(trace=False):
    return RunSpec(
        workload="arrayswap",
        config=SimConfig.for_design("baseline", num_cores=4),
        seed=1, ops_per_thread=4, trace=trace,
    )


class TestCacheRoundTrip:
    def test_same_version_hits(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        first = engine.run_specs_report([make_spec()])
        assert first.cache_hits == 0
        second = engine.run_specs_report([make_spec()])
        assert second.cache_hits == 1
        assert second.results[0].to_dict() == first.results[0].to_dict()

    def test_trace_survives_the_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        first = engine.run_specs([make_spec(trace=True)])[0]
        second_report = engine.run_specs_report([make_spec(trace=True)])
        second = second_report.results[0]
        assert second_report.cache_hits == 1
        assert second.trace is not None
        assert second.trace.to_dicts() == first.trace.to_dicts()

    def test_traced_and_untraced_key_separately(self, tmp_path):
        assert make_spec(trace=False).cache_key() \
            != make_spec(trace=True).cache_key()
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_specs([make_spec(trace=False)])
        report = engine.run_specs_report([make_spec(trace=True)])
        assert report.cache_hits == 0  # the untraced entry must not serve
        assert report.results[0].trace is not None


class TestSchemaBump:
    def test_key_depends_on_schema_version(self, monkeypatch):
        key_now = make_spec().cache_key()
        monkeypatch.setattr(engine_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        assert make_spec().cache_key() != key_now

    def test_old_schema_entries_miss(self, tmp_path, monkeypatch):
        # Populate the cache as the previous schema version would have.
        monkeypatch.setattr(engine_mod, "SCHEMA_VERSION", SCHEMA_VERSION - 1)
        old_engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        old_engine.run_specs([make_spec()])
        monkeypatch.undo()
        # A current-version engine must recompute, not deserialize v1.
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        report = engine.run_specs_report([make_spec()])
        assert report.cache_hits == 0
        assert report.results[0] is not None

    def test_stored_payload_stamped_with_version(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_specs([make_spec()])
        entries = list(tmp_path.rglob("*.json"))
        assert entries
        payload = json.loads(entries[0].read_text())
        assert payload["schema_version"] == SCHEMA_VERSION


class TestLegacyResultDicts:
    """v1 JSON (pre-trace, pre-metrics) must still deserialize."""

    def test_run_result_without_trace_slot(self):
        data = make_run_result_dict()
        data.pop("trace", None)
        result = RunResult.from_dict(data)
        assert result.trace is None
        assert result.workload_name == "arrayswap"

    def test_stats_without_metrics_section(self):
        data = make_run_result_dict()
        assert "metrics" in data["stats"]
        data["stats"].pop("metrics")
        result = RunResult.from_dict(data)
        assert result.stats.total_commits > 0

    def test_current_dicts_carry_both_new_sections(self):
        data = make_run_result_dict(trace=True)
        assert data["trace"] is not None
        assert "metrics" in data["stats"]


class TestDesignFingerprintMigration:
    """v2 configs spelled powertm/clear booleans; v3 spells ``design``.

    A cached payload written with the boolean flags must deserialize to
    the same normalized fingerprint as its modern spelling, so RunSpec
    cache keys stay stable for the four legacy modes (no spurious
    cold-cache re-runs beyond the deliberate schema bump).
    """

    LEGACY = [
        (False, False, "baseline"),
        (True, False, "powertm"),
        (False, True, "clear"),
        (True, True, "clear+powertm"),
    ]

    def v2_config_dict(self, powertm, clear, design):
        """A config dict as a v2 build would have written it."""
        data = SimConfig.for_design(design, num_cores=4).to_dict()
        del data["design"]
        # v2 had no per-design knobs either; their defaults must not
        # perturb the fingerprint of a migrated payload.
        for knob in ("lrw_read_lines", "lrw_write_lines",
                     "bigatomics_lines", "bigatomics_commit_cycles"):
            del data[knob]
        data["powertm"] = powertm
        data["clear"] = clear
        return data

    @pytest.mark.parametrize("powertm, clear, design", LEGACY)
    def test_boolean_payload_fingerprint_matches(self, powertm, clear, design):
        migrated = SimConfig.from_dict(self.v2_config_dict(
            powertm, clear, design
        ))
        modern = SimConfig.for_design(design, num_cores=4)
        assert migrated == modern
        assert migrated.fingerprint() == modern.fingerprint()

    @pytest.mark.parametrize("powertm, clear, design", LEGACY)
    def test_cache_key_stable_across_spellings(self, powertm, clear, design):
        migrated_spec = RunSpec(
            workload="arrayswap",
            config=SimConfig.from_dict(self.v2_config_dict(
                powertm, clear, design
            )),
            seed=1, ops_per_thread=4,
        )
        modern_spec = RunSpec(
            workload="arrayswap",
            config=SimConfig.for_design(design, num_cores=4),
            seed=1, ops_per_thread=4,
        )
        assert migrated_spec.cache_key() == modern_spec.cache_key()

    def test_migrated_payload_hits_modern_cache(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
        engine.run_specs([make_spec()])
        migrated = RunSpec(
            workload="arrayswap",
            config=SimConfig.from_dict(self.v2_config_dict(
                False, False, "baseline"
            )),
            seed=1, ops_per_thread=4,
        )
        report = engine.run_specs_report([migrated])
        assert report.cache_hits == 1


def make_run_result_dict(trace=False):
    from repro.sim.runner import _simulate_one
    from repro.obs.trace import EventTrace
    from repro.workloads import make_workload

    result = _simulate_one(
        lambda: make_workload("arrayswap", ops_per_thread=4),
        SimConfig.for_design("baseline", num_cores=4), seed=1,
        trace=EventTrace() if trace else None,
    )
    return result.to_dict()
