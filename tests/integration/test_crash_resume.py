"""Crash/resume integration: journaled sweeps survive SIGKILL.

The durability proof the journal exists for, at three scopes:

- in-process: a resumed engine replays every journaled cell without
  re-execution (a bomb executor catches any cheating), remembers
  quarantines, and recovers a torn journal tail;
- subprocess (slow): a real ``run_experiments.py`` sweep is SIGKILL'd
  mid-flight and resumed with ``--resume`` — the figure JSON must be
  byte-identical to an uninterrupted run's, with exactly-once cell
  execution;
- chaos (slow): seeded worker kills and IO faults from
  :mod:`repro.sim.enginefaults` — two runs under the same plan
  converge to identical reports.
"""

import functools
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.common.retry import RetryPolicy
from repro.sim.config import SimConfig
from repro.sim.engine import (
    DiskCache,
    ExperimentEngine,
    RunSpec,
    execute_spec,
)
from repro.sim.enginefaults import EngineFaultPlan, FaultyIO, kill_once_execute
from repro.sim.journal import SweepJournal

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SCRIPTS = REPO_ROOT / "scripts"


def tiny_specs(n=3):
    return [
        RunSpec(
            workload="mwobject",
            config=SimConfig.for_design("baseline", num_cores=2),
            seed=seed,
            ops_per_thread=3,
        )
        for seed in range(1, n + 1)
    ]


def engine(**overrides):
    fields = dict(jobs=1, cache_dir=None)
    fields.update(overrides)
    return ExperimentEngine(**fields)


def _bomb_execute(spec):
    raise AssertionError(
        "cell {} seed={} executed during a replay-only resume".format(
            spec.workload, spec.seed
        )
    )


def _flaky_execute(spec):
    if spec.seed == 2:
        raise ValueError("injected deterministic failure")
    return execute_spec(spec)


def results_json(report):
    return json.dumps(
        [r.to_dict() if r is not None else None for r in report.results],
        sort_keys=True,
    )


class TestInProcessResume:
    def test_resume_replays_without_reexecution(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine().run_specs_report(specs, journal=job)
        assert first.ok and first.journal["executed"] == 3

        resumed = engine(execute=_bomb_execute).run_specs_report(
            specs, journal=job
        )
        assert resumed.ok
        assert resumed.journal["replayed"] == 3
        assert resumed.journal["executed"] == 0
        assert results_json(resumed) == results_json(first)

    def test_strict_run_specs_accepts_journal(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine().run_specs(specs, journal=job)
        again = engine(execute=_bomb_execute).run_specs(specs, journal=job)
        assert [r.to_dict() for r in again] == [r.to_dict() for r in first]

    def test_resume_with_reordered_subset(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine().run_specs_report(specs, journal=job)
        subset = [specs[2], specs[0]]
        resumed = engine(execute=_bomb_execute).run_specs_report(
            subset, journal=job
        )
        assert resumed.journal["replayed"] == 2
        assert [r.to_dict() for r in resumed.results] == [
            first.results[2].to_dict(), first.results[0].to_dict(),
        ]

    def test_resume_remembers_quarantine(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine(execute=_flaky_execute).run_specs_report(
            specs, journal=job
        )
        assert len(first.failures) == 1
        assert first.failures[0].spec.seed == 2

        # The resume must not retry the quarantined cell (the bomb would
        # fire) — deterministic failures are remembered, not re-run.
        resumed = engine(execute=_bomb_execute).run_specs_report(
            specs, journal=job
        )
        assert len(resumed.failures) == 1
        assert resumed.failures[0].spec.seed == 2
        assert resumed.journal["replayed"] == 2
        assert resumed.journal["replayed_failures"] == 1
        assert resumed.journal["executed"] == 0

    def test_resume_recovers_torn_tail(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine().run_specs_report(specs, journal=job)
        log = SweepJournal(job).log_path
        with open(log, "rb") as handle:
            intact = handle.read()
        boundary = intact.rindex(b"\n", 0, len(intact) - 1) + 1
        with open(log, "wb") as handle:
            handle.write(intact[: boundary + 10])  # torn final record

        resumed = engine().run_specs_report(specs, journal=job)
        assert resumed.ok
        assert resumed.journal["replayed"] == 2
        assert resumed.journal["executed"] == 1  # only the torn cell
        assert resumed.journal["dropped_tail"] == 1
        assert results_json(resumed) == results_json(first)

    def test_journal_composes_with_cache(self, tmp_path):
        job = str(tmp_path / "job")
        specs = tiny_specs()
        first = engine(cache_dir=str(tmp_path / "cache")).run_specs_report(
            specs, journal=job
        )
        assert first.journal["executed"] == 3
        # Resume with *no* cache: the journal alone carries the results.
        resumed = engine(execute=_bomb_execute).run_specs_report(
            specs, journal=job
        )
        assert resumed.journal["replayed"] == 3
        assert results_json(resumed) == results_json(first)


@pytest.mark.slow
class TestSigkillSubprocessResume:
    """Kill a real sweep subprocess mid-flight; resume must be exact."""

    BENCHMARKS = "mwobject,stack,queue"
    CELLS = 3 * 4 * 2  # benchmarks x configs (B/P/C/W) x micro seeds

    def run_script(self, argv, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, str(SCRIPTS / "run_experiments.py")] + argv,
            capture_output=True, text=True, env=env, cwd=str(cwd),
        )

    def figure_payload(self, path):
        payload = json.loads(pathlib.Path(path).read_text())
        payload.pop("elapsed_seconds")
        return payload

    def test_sigkill_mid_sweep_then_resume_byte_identical(self, tmp_path):
        job = tmp_path / "job"
        killed_out = tmp_path / "killed.json"
        reference_out = tmp_path / "reference.json"

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        victim = subprocess.Popen(
            [sys.executable, str(SCRIPTS / "run_experiments.py"),
             "micro", str(killed_out), "--benchmarks", self.BENCHMARKS,
             "--jobs", "1", "--no-cache", "--journal", str(job)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=env, cwd=str(tmp_path),
        )
        # SIGKILL once a few cells are durably journaled but (with high
        # probability) well before all of them are.
        log = job / "journal.jsonl"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and victim.poll() is None:
            if log.exists() and log.read_bytes().count(b"\n") >= 3:
                break
            time.sleep(0.05)
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        recorded = log.read_bytes().count(b"\n")
        assert recorded >= 1, "sweep died before journaling anything"

        resume = self.run_script(
            ["micro", str(killed_out), "--benchmarks", self.BENCHMARKS,
             "--jobs", "1", "--no-cache", "--resume", str(job)],
            cwd=tmp_path,
        )
        assert resume.returncode == 0, resume.stderr

        # Exactly-once: the resume replayed what the victim finished and
        # executed only the rest.
        counters = {}
        for line in resume.stdout.splitlines():
            if line.startswith("journal "):
                for token in line.split():
                    if "=" in token:
                        name, _, value = token.partition("=")
                        counters[name] = int(value)
        assert counters, resume.stdout
        assert counters["replayed"] >= 1
        assert counters["replayed"] + counters["executed"] == self.CELLS

        reference = self.run_script(
            ["micro", str(reference_out), "--benchmarks", self.BENCHMARKS,
             "--jobs", "1", "--no-cache"],
            cwd=tmp_path,
        )
        assert reference.returncode == 0, reference.stderr
        assert (self.figure_payload(killed_out)
                == self.figure_payload(reference_out))


@pytest.mark.slow
class TestEngineChaos:
    def test_worker_kills_recover_exactly_once(self, tmp_path):
        specs = tiny_specs()
        execute = functools.partial(
            kill_once_execute, rate=1.0, seed=7,
            marker_dir=str(tmp_path / "kills"),
        )
        chaotic = engine(
            jobs=2, execute=execute,
            retry_policy=RetryPolicy(base_seconds=0.01, max_seconds=0.05),
        )
        report = chaotic.run_specs_report(specs, journal=str(tmp_path / "job"))
        assert report.ok, report.failure_report()
        # Every cell took exactly one kill, then recovered.
        assert len(os.listdir(str(tmp_path / "kills"))) == len(specs)

        clean = engine().run_specs_report(specs)
        assert results_json(report) == results_json(clean)

    def test_seeded_io_chaos_runs_converge(self, tmp_path):
        """Two runs under one fault plan end in identical reports.

        The crash model: journal appends tear (what a power loss does),
        cache entries corrupt (what bad disks do). The manifest is
        written atomically, so corrupting it would model unrecoverable
        disk corruption — which the journal refuses by design — not a
        crash; hence separate fault plans per substrate.
        """
        specs = tiny_specs()
        log_plan = EngineFaultPlan(seed=5, torn_write_rate=0.4)
        cache_plan = EngineFaultPlan(seed=5, corrupt_rate=0.4)
        clean = engine().run_specs_report(specs)

        outcomes = []
        for run in ("a", "b"):
            root = tmp_path / run
            cache_io = FaultyIO(cache_plan)
            log_io = FaultyIO(log_plan)
            cache = DiskCache(str(root / "cache"), io=cache_io)
            job = SweepJournal(root / "job", io=log_io)
            first = engine(cache_dir=cache).run_specs_report(
                specs, journal=job
            )
            assert first.ok
            # Resume through a *clean* journal handle: torn records cost
            # re-execution, corrupt cache entries are quarantined — the
            # sweep still converges to the uninterrupted results.
            resumed = engine(cache_dir=DiskCache(str(root / "cache")))
            resumed_report = resumed.run_specs_report(
                specs, journal=SweepJournal(root / "job")
            )
            assert resumed_report.ok
            assert results_json(resumed_report) == results_json(clean)
            outcomes.append((
                dict(cache_io.injected),
                dict(log_io.injected),
                resumed_report.journal["replayed"],
                resumed_report.journal["executed"],
                resumed_report.journal["dropped_tail"],
            ))
        # Same plan, same seeds: the chaos itself is reproducible —
        # and it actually fired (a quiet plan would prove nothing).
        assert outcomes[0] == outcomes[1]
        assert (outcomes[0][0]["corrupt"] + outcomes[0][1]["torn"]) > 0
