"""Golden-pinned trace suite: determinism, schema, and forensics.

Pins the exact event stream of one micro cell (genome/W/4c, the config
that exercises speculative, CL-locked, and fallback paths) against a
committed golden, proves the stream is byte-stable across repeated runs
and across engine job counts, validates the Chrome exporter against the
``trace_event`` format, and checks the forensic report names a
conflicting line and enemy core for every memory-conflict abort.
"""

import json
import os

import pytest

from repro import api
from repro.obs.chrome import chrome_trace
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.engine import ExperimentEngine

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "goldens", "trace_micro.json"
)


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def simulate_golden_cell(**kwargs):
    golden = load_golden()
    return api.simulate(
        golden["workload"],
        SimConfig.for_design(design_name(golden["config"]),
                             num_cores=golden["num_cores"]),
        seeds=golden["seed"], ops_per_thread=golden["ops_per_thread"],
        trace=True, **kwargs,
    )


class TestGoldenTrace:
    def test_matches_committed_golden(self):
        report = simulate_golden_cell()
        assert report.trace.to_dicts() == load_golden()["events"]

    def test_byte_stable_across_runs(self):
        first = simulate_golden_cell()
        second = simulate_golden_cell()
        dumps = [
            json.dumps(report.trace.to_dicts(), sort_keys=True)
            for report in (first, second)
        ]
        assert dumps[0] == dumps[1]

    def test_byte_stable_across_job_counts(self, tmp_path):
        golden = load_golden()
        reports = []
        for jobs in (1, 2):
            engine = ExperimentEngine(
                jobs=jobs, cache_dir=str(tmp_path / "cache{}".format(jobs))
            )
            reports.append(simulate_golden_cell(engine=engine))
        assert reports[0].trace.to_dicts() == reports[1].trace.to_dicts()
        assert reports[0].trace.to_dicts() == golden["events"]

    def test_stats_identical_with_tracing_off(self):
        golden = load_golden()
        traced = simulate_golden_cell()
        plain = api.simulate(
            golden["workload"],
            SimConfig.for_design(design_name(golden["config"]),
                                 num_cores=golden["num_cores"]),
            seeds=golden["seed"], ops_per_thread=golden["ops_per_thread"],
        )
        assert plain.run.stats.to_dict() == traced.run.stats.to_dict()
        assert plain.run.cycles == traced.run.cycles


class TestChromeExporterSchema:
    """Structural validation against the Chrome trace_event format."""

    @pytest.fixture(scope="class")
    def payload(self):
        report = simulate_golden_cell()
        return chrome_trace(report.trace,
                            num_cores=load_golden()["num_cores"])

    def test_top_level_shape(self, payload):
        assert isinstance(payload["traceEvents"], list)
        assert payload["traceEvents"]
        json.dumps(payload)  # strictly JSON-serializable

    def test_every_event_well_formed(self, payload):
        for event in payload["traceEvents"]:
            assert isinstance(event["name"], str)
            assert event["ph"] in ("X", "i", "s", "f", "M")
            assert event["pid"] == 0
            if event["ph"] != "M":
                assert isinstance(event["ts"], int)
                assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 1
                assert event["args"]["outcome"] in ("commit", "abort")
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_one_lane_per_core(self, payload):
        names = {
            event["tid"]: event["args"]["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        num_cores = load_golden()["num_cores"]
        assert set(names) == set(range(num_cores))
        assert names[0] == "core 0"

    def test_flow_arrows_paired(self, payload):
        starts = [e for e in payload["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in payload["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes)
        assert sorted(e["id"] for e in starts) \
            == sorted(e["id"] for e in finishes)
        for start, finish in zip(
            sorted(starts, key=lambda e: e["id"]),
            sorted(finishes, key=lambda e: e["id"]),
        ):
            # The arrow runs from the enemy's lane to the victim's.
            assert start["ts"] == finish["ts"]
            assert start["tid"] != finish["tid"]

    def test_span_count_matches_closed_attempts(self, payload):
        golden_events = load_golden()["events"]
        begins = sum(1 for e in golden_events if e["kind"] == "ar_begin")
        spans = sum(1 for e in payload["traceEvents"] if e["ph"] == "X")
        # Explicit-fallback aborts never opened a span; everything else
        # that began must have closed into exactly one span.
        unopened = sum(
            1 for e in golden_events
            if e["kind"] == "ar_abort" and e["reason"] == "explicit_fallback"
        )
        assert spans == begins - unopened


class TestForensicReport:
    def test_memory_conflicts_name_line_and_enemy(self):
        report = simulate_golden_cell()
        conflicts = [
            event for event in report.trace
            if event.kind == "ar_abort"
            and event.reason.value in ("memory_conflict", "nacked")
        ]
        assert conflicts, "golden cell should see at least one conflict"
        for event in conflicts:
            assert event.line is not None
            assert event.enemy is not None
        text = report.forensic_report()
        for event in conflicts:
            assert "0x{:x}".format(event.line) in text
            assert "core {}".format(event.enemy) in text

    def test_report_covers_every_region(self):
        report = simulate_golden_cell()
        text = report.forensic_report()
        commits = sum(
            1 for event in report.trace if event.kind == "ar_commit"
        )
        assert text.count("AR ") >= commits

    def test_write_forensic_report(self, tmp_path):
        report = simulate_golden_cell()
        path = tmp_path / "forensics.txt"
        report.write_forensic_report(path)
        assert path.read_text() == report.forensic_report() + "\n" \
            or path.read_text() == report.forensic_report()
