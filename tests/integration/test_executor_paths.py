"""Focused tests for executor corner paths.

Each test drives a scripted scenario down one specific edge of the
state machine: fallback-lock abort types, NACKs on locked lines,
explicit aborts, CRT population, and zombie-transaction arbitration.
"""

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import AbortOp, Compute, Invoke, Load, Store
from tests.integration.test_machine_basic import ScriptedWorkload, counter_invoke


def run_scripted(scripts, letter="B", cores=2, shared_lines=8, seed=1, **overrides):
    config = SimConfig.for_design(design_name(letter), num_cores=cores, **overrides)
    workload = ScriptedWorkload(scripts, shared_lines=shared_lines)
    machine = Machine(config, workload, seed=seed)
    stats = machine.run()
    return machine, workload, stats


def slow_counter_invoke(compute=200):
    """A long AR so peers overlap with it reliably."""

    def build(workload):
        addr = workload.addr(0)

        def body():
            value = yield Load(addr)
            yield Compute(compute)
            yield Store(addr, value + 1)

        return Invoke(("scripted", "slow"), body)

    return build


def abort_op_invoke():
    def build(workload):
        addr = workload.addr(0)

        def body():
            yield Load(addr)
            yield AbortOp()
            yield Store(addr, 12345)  # must never execute

        return Invoke(("scripted", "aborter"), body)

    return build


class TestFallbackAbortTypes:
    def test_fallback_pressure_produces_fallback_abort_types(self):
        script = [slow_counter_invoke() for _ in range(12)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)},
            retry_threshold=1,
            backoff_base=0,
        )
        fallback_aborts = (
            stats.aborts_by_reason.get(AbortReason.EXPLICIT_FALLBACK, 0)
            + stats.aborts_by_reason.get(AbortReason.OTHER_FALLBACK, 0)
        )
        assert fallback_aborts > 0

    def test_fallback_aborts_do_not_count_toward_threshold(self):
        # With threshold 1 every counting abort goes straight to
        # fallback; the run must still complete every region.
        script = [slow_counter_invoke() for _ in range(12)]
        machine, workload, stats = run_scripted(
            {0: list(script), 1: list(script)},
            retry_threshold=1,
            backoff_base=0,
        )
        assert stats.total_commits == 24
        assert machine.memory.peek(workload.addr(0)) == 24


class TestExplicitAbort:
    def test_explicit_abort_reaches_fallback_and_completes(self):
        script = [abort_op_invoke()]
        machine, workload, stats = run_scripted(
            {0: script}, retry_threshold=2, backoff_base=0
        )
        assert stats.aborts_by_reason.get(AbortReason.EXPLICIT, 0) >= 2
        # The region ends via fallback (where XAbort just ends it).
        assert stats.commits_by_mode.get(ExecMode.FALLBACK, 0) == 1
        # The post-abort store never executed.
        assert machine.memory.peek(workload.addr(0)) == 0

    def test_explicit_abort_marks_region_non_discoverable_under_clear(self):
        script = [abort_op_invoke()]
        machine, _, _ = run_scripted(
            {0: script}, letter="C", retry_threshold=3, backoff_base=0
        )
        entry = machine.executors[0].controller.ert.lookup(("scripted", "aborter"))
        assert entry is not None


class TestNackOnLockedLines:
    def test_speculative_access_to_locked_line_nacks(self):
        # Core 0 converts a hot counter to NS-CL (CLEAR); core 1 keeps
        # accessing it speculatively and must take NACK aborts when the
        # line is held locked.
        script = [slow_counter_invoke() for _ in range(20)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)}, letter="C",
        )
        assert stats.commits_by_mode.get(ExecMode.NS_CL, 0) > 0
        assert stats.aborts_by_reason.get(AbortReason.NACKED, 0) > 0

    def test_nack_categorized_as_memory_conflict(self):
        from repro.htm.abort import AbortCategory, categorize_abort

        assert categorize_abort(AbortReason.NACKED) is AbortCategory.MEMORY_CONFLICT


class TestCrtPopulation:
    def test_conflicting_reads_recorded(self):
        # Readers of line 0 conflict with writers of line 0: the line is
        # read-only for the reader region, so the reader's CRT learns it.
        def reader(workload):
            addr = workload.addr(0)
            sink = workload.addr(1)

            def body():
                value = yield Load(addr)
                yield Compute(150)
                accum = yield Load(sink)
                yield Store(sink, accum + value)

            return Invoke(("scripted", "reader"), body)

        def writer(workload):
            addr = workload.addr(0)

            def body():
                value = yield Load(addr)
                yield Compute(150)
                yield Store(addr, value + 1)

            return Invoke(("scripted", "writer"), body)

        machine, _, _ = run_scripted(
            {0: [reader] * 15, 1: [writer] * 15}, letter="C", cores=2,
        )
        reader_crt = machine.executors[0].controller.crt
        assert len(reader_crt) > 0


class TestZombieArbitration:
    def test_peer_view_hides_doomed_transactions(self):
        script = [slow_counter_invoke() for _ in range(6)]
        machine, _, _ = run_scripted({0: list(script), 1: list(script)})
        executor = machine.executors[0]
        # Simulate a doomed in-flight transaction.
        executor.phase = "body"
        executor.mode = ExecMode.SPECULATIVE
        from repro.htm.rwset import ReadWriteSets

        executor.rwsets = ReadWriteSets(l1_sets=None, l2_sets=None)
        assert executor.peer_view() is not None
        executor.pending_abort = AbortReason.OTHER_FALLBACK
        assert executor.peer_view() is None


class TestRetryModeTransitions:
    def test_scl_abort_falls_back_to_speculative_retry(self):
        # Pointer-chased, contended region: S-CL attempts will sometimes
        # abort; the next attempt must be a plain speculative retry, and
        # everything still completes.
        from tests.integration.test_modes import pointer_chase_invoke

        script = [pointer_chase_invoke() for _ in range(15)]
        _, _, stats = run_scripted(
            {0: list(script), 1: list(script)}, letter="C",
        )
        assert stats.total_commits == 30
