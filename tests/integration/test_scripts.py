"""Smoke tests for the reproduction scripts (run + render pipeline)."""

import json
import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"


class TestExperimentPipeline:
    def test_run_then_render(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        md_path = tmp_path / "EXPERIMENTS.md"
        cache_dir = tmp_path / "cache"
        # A micro scale is not exposed via argv, so monkeypatch through
        # the module API instead of the CLI for the run step.
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(json_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        data = json.loads(json_path.read_text())
        assert "headline" in data and "fig8_times" in data
        # The run populated the content-addressed cache.
        assert list(cache_dir.rglob("*.json"))

        result = subprocess.run(
            [sys.executable, str(SCRIPTS / "render_experiments.py"),
             str(json_path), str(md_path)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        text = md_path.read_text()
        assert "# EXPERIMENTS" in text
        assert "Fig. 8" in text
        assert "mwobject" in text

    def test_rerun_from_cache_is_identical(self, tmp_path, monkeypatch):
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1, 2),
                ),
            )
            for out in (cold_path, warm_path):
                run_experiments.main(
                    ["micro", str(out), "--jobs", "1",
                     "--cache-dir", str(cache_dir)]
                )
        finally:
            sys.path.remove(str(SCRIPTS))
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        cold.pop("elapsed_seconds")
        warm.pop("elapsed_seconds")
        assert cold == warm

    def test_trace_flags_export_without_touching_figures(
        self, tmp_path, monkeypatch
    ):
        plain_path = tmp_path / "plain.json"
        traced_path = tmp_path / "traced.json"
        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "trace.txt"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(plain_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir)]
            )
            run_experiments.main(
                ["micro", str(traced_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir),
                 "--trace", str(trace_out),
                 "--trace-report", str(report_out)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        plain = json.loads(plain_path.read_text())
        traced = json.loads(traced_path.read_text())
        plain.pop("elapsed_seconds")
        traced.pop("elapsed_seconds")
        assert plain == traced  # figure JSON identical with tracing on
        chrome = json.loads(trace_out.read_text())
        assert chrome["traceEvents"]
        assert "AR " in report_out.read_text()

    def test_no_cache_flag_skips_cache_dir(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(json_path), "--jobs", "1", "--no-cache",
                 "--cache-dir", str(cache_dir)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        assert json_path.exists()
        assert not cache_dir.exists()


class TestJournalFlags:
    """The crash-safe sweep knobs and the partial-matrix exit status."""

    def micro_settings(self, run_experiments):
        return lambda scale: run_experiments.ExperimentSettings(
            benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
            seeds=(1,),
        )

    def test_journaled_run_exits_zero_and_resumes(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        resumed_path = tmp_path / "resumed.json"
        job = tmp_path / "job"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(run_experiments, "settings_for",
                                self.micro_settings(run_experiments))
            status = run_experiments.main(
                ["micro", str(json_path), "--jobs", "1", "--no-cache",
                 "--journal", str(job)]
            )
            assert status == 0
            assert (job / "manifest.json").exists()
            assert (job / "journal.jsonl").exists()
            status = run_experiments.main(
                ["micro", str(resumed_path), "--jobs", "1", "--no-cache",
                 "--resume", str(job)]
            )
            assert status == 0
        finally:
            sys.path.remove(str(SCRIPTS))
        first = json.loads(json_path.read_text())
        resumed = json.loads(resumed_path.read_text())
        first.pop("elapsed_seconds")
        resumed.pop("elapsed_seconds")
        assert first == resumed

    def test_resume_of_missing_job_folder_errors(self, tmp_path, monkeypatch):
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(run_experiments, "settings_for",
                                self.micro_settings(run_experiments))
            import pytest

            with pytest.raises(SystemExit) as excinfo:
                run_experiments.main(
                    ["micro", str(tmp_path / "out.json"),
                     "--resume", str(tmp_path / "nonexistent")]
                )
            assert excinfo.value.code == 2
        finally:
            sys.path.remove(str(SCRIPTS))

    def test_quarantined_cells_exit_nonzero(self, tmp_path, monkeypatch):
        """Satellite S2: a partial matrix must be machine-detectable."""
        json_path = tmp_path / "results.json"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments
            from repro.sim.engine import CellFailure

            monkeypatch.setattr(run_experiments, "settings_for",
                                self.micro_settings(run_experiments))
            real = run_experiments.run_config_matrix

            def lossy_matrix(settings, **kwargs):
                matrix, report = real(settings, **kwargs)
                report.failures.append(CellFailure(
                    spec=report_spec(settings), kind="timeout", attempts=3,
                    message="injected quarantine",
                ))
                return matrix, report

            def report_spec(settings):
                from repro.sim.engine import RunSpec

                return RunSpec(
                    workload=settings.benchmarks[0],
                    config=settings.config_for("B"),
                    seed=settings.seeds[0],
                    ops_per_thread=settings.ops_per_thread,
                )

            monkeypatch.setattr(run_experiments, "run_config_matrix",
                                lossy_matrix)
            status = run_experiments.main(
                ["micro", str(json_path), "--jobs", "1", "--no-cache",
                 "--journal", str(tmp_path / "job")]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        assert status == 2
        payload = json.loads(json_path.read_text())
        assert payload["failures"]["failed"] == 1


class TestGenCorpus:
    def test_generate_record_check_pipeline(self, tmp_path, capsys):
        """gen_corpus.py: sweep axes to folders, record, and check."""
        sys.path.insert(0, str(SCRIPTS))
        try:
            import gen_corpus

            status = gen_corpus.main([
                str(tmp_path / "corpus"),
                "--footprints", "2", "--mutability", "immutable,mutable",
                "--contention", "0.5", "--record", "--check",
                "--cores", "2", "--ops", "3",
            ])
        finally:
            sys.path.remove(str(SCRIPTS))
        assert status == 0
        out = capsys.readouterr().out
        assert out.count("ok   ") == 4  # 2 kernels x (gen + trace twin)
        index = json.loads((tmp_path / "corpus" / "corpus.json").read_text())
        assert len(index) == 2
        for entry in index.values():
            assert (tmp_path / "corpus" / entry["folder"].split("/")[-1]
                    / "genspec.json").exists()
            assert entry["trace_digest"]

    def test_bad_axis_exits_two(self, tmp_path, capsys):
        sys.path.insert(0, str(SCRIPTS))
        try:
            import gen_corpus

            status = gen_corpus.main([
                str(tmp_path / "corpus"), "--mutability", "sometimes",
            ])
        finally:
            sys.path.remove(str(SCRIPTS))
        assert status == 2
        assert "bad spec axis" in capsys.readouterr().err

    def test_unknown_workload_exits_cleanly(self, tmp_path):
        """Caller-facing scripts turn UnknownWorkloadError into a
        one-line parser error, not a traceback."""
        result = subprocess.run(
            [sys.executable, str(SCRIPTS / "bench_designs.py"),
             "--scale", "micro", "--workloads", "nope", "--no-write"],
            capture_output=True, text=True,
        )
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert "gen:" in result.stderr and "trace:" in result.stderr


class TestBenchDesignsJournal:
    def test_matrix_journal_resumes_identical(self, tmp_path):
        """One job folder journals the whole cross-design matrix."""
        sys.path.insert(0, str(SCRIPTS))
        try:
            import bench_designs

            job = tmp_path / "job"
            outputs = {}
            for label, journal_flag in (
                ("first", ["--journal", str(job)]),
                ("resumed", ["--resume", str(job)]),
            ):
                json_path = tmp_path / (label + ".json")
                md_path = tmp_path / (label + ".md")
                bench_designs.main(
                    ["--scale", "micro", "--workloads", "mwobject",
                     "--designs", "baseline", "powertm",
                     "--jobs", "1", "--no-cache",
                     "--json", str(json_path), "--markdown", str(md_path)]
                    + journal_flag
                )
                outputs[label] = json.loads(json_path.read_text())
        finally:
            sys.path.remove(str(SCRIPTS))
        assert outputs["first"] == outputs["resumed"]
        # Both engine calls merged their cells into one manifest.
        manifest = json.loads((job / "manifest.json").read_text())
        assert len(manifest["cells"]) == 4  # 1 workload x 2 designs x 2 seeds
