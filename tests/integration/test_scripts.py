"""Smoke tests for the reproduction scripts (run + render pipeline)."""

import json
import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"


class TestExperimentPipeline:
    def test_run_then_render(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        md_path = tmp_path / "EXPERIMENTS.md"
        # A micro scale is not exposed via argv, so monkeypatch through
        # the module API instead of the CLI for the run step.
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            monkeypatch.setattr(sys, "argv",
                                ["run_experiments.py", "micro", str(json_path)])
            run_experiments.main()
        finally:
            sys.path.remove(str(SCRIPTS))
        data = json.loads(json_path.read_text())
        assert "headline" in data and "fig8_times" in data

        result = subprocess.run(
            [sys.executable, str(SCRIPTS / "render_experiments.py"),
             str(json_path), str(md_path)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        text = md_path.read_text()
        assert "# EXPERIMENTS" in text
        assert "Fig. 8" in text
        assert "mwobject" in text
