"""Smoke tests for the reproduction scripts (run + render pipeline)."""

import json
import pathlib
import subprocess
import sys

SCRIPTS = pathlib.Path(__file__).resolve().parents[2] / "scripts"


class TestExperimentPipeline:
    def test_run_then_render(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        md_path = tmp_path / "EXPERIMENTS.md"
        cache_dir = tmp_path / "cache"
        # A micro scale is not exposed via argv, so monkeypatch through
        # the module API instead of the CLI for the run step.
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(json_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        data = json.loads(json_path.read_text())
        assert "headline" in data and "fig8_times" in data
        # The run populated the content-addressed cache.
        assert list(cache_dir.rglob("*.json"))

        result = subprocess.run(
            [sys.executable, str(SCRIPTS / "render_experiments.py"),
             str(json_path), str(md_path)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        text = md_path.read_text()
        assert "# EXPERIMENTS" in text
        assert "Fig. 8" in text
        assert "mwobject" in text

    def test_rerun_from_cache_is_identical(self, tmp_path, monkeypatch):
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1, 2),
                ),
            )
            for out in (cold_path, warm_path):
                run_experiments.main(
                    ["micro", str(out), "--jobs", "1",
                     "--cache-dir", str(cache_dir)]
                )
        finally:
            sys.path.remove(str(SCRIPTS))
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        cold.pop("elapsed_seconds")
        warm.pop("elapsed_seconds")
        assert cold == warm

    def test_trace_flags_export_without_touching_figures(
        self, tmp_path, monkeypatch
    ):
        plain_path = tmp_path / "plain.json"
        traced_path = tmp_path / "traced.json"
        trace_out = tmp_path / "trace.json"
        report_out = tmp_path / "trace.txt"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(plain_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir)]
            )
            run_experiments.main(
                ["micro", str(traced_path), "--jobs", "1",
                 "--cache-dir", str(cache_dir),
                 "--trace", str(trace_out),
                 "--trace-report", str(report_out)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        plain = json.loads(plain_path.read_text())
        traced = json.loads(traced_path.read_text())
        plain.pop("elapsed_seconds")
        traced.pop("elapsed_seconds")
        assert plain == traced  # figure JSON identical with tracing on
        chrome = json.loads(trace_out.read_text())
        assert chrome["traceEvents"]
        assert "AR " in report_out.read_text()

    def test_no_cache_flag_skips_cache_dir(self, tmp_path, monkeypatch):
        json_path = tmp_path / "results.json"
        cache_dir = tmp_path / "cache"
        sys.path.insert(0, str(SCRIPTS))
        try:
            import run_experiments

            monkeypatch.setattr(
                run_experiments, "settings_for",
                lambda scale: run_experiments.ExperimentSettings(
                    benchmarks=("mwobject",), num_cores=2, ops_per_thread=3,
                    seeds=(1,),
                ),
            )
            run_experiments.main(
                ["micro", str(json_path), "--jobs", "1", "--no-cache",
                 "--cache-dir", str(cache_dir)]
            )
        finally:
            sys.path.remove(str(SCRIPTS))
        assert json_path.exists()
        assert not cache_dir.exists()
