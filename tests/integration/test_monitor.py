"""Integration tests for the online serializability monitor.

The monitor (``oracle="online"``) must stay silent on correct
executions, change no simulated results, keep the batch backend on its
fused fast path (no reference-loop degradation), and catch the same
planted violations the shadow oracle catches — plus commit-time stale
reads from a broken arbiter, which it flags *at the violating commit*
rather than at end of run. ``oracle="cross-check"`` runs both checkers
and must agree with itself on every run.
"""

import pytest

from repro.common.errors import OracleDivergence, OracleViolation
from repro.htm.arbiter import NO_CONFLICT
from repro.htm.design import DESIGN_REGISTRY
from repro.sim.batch import BatchMachine
from repro.sim.config import SimConfig
from repro.sim.machine import Machine, build_machine
from repro.workloads import ALL_NAMES, make_workload


def monitor_config(design="clear", **overrides):
    overrides.setdefault("oracle", "online")
    overrides.setdefault("num_cores", 4)
    return SimConfig.for_design(design, **overrides)


def drop_all_conflicts(machine):
    """Planted arbiter bug: every conflict resolution is silently lost.

    Overlapping ARs stop aborting each other, so stale reads commit;
    the monitor must flag the first such commit.
    """
    machine.resolve_conflict = lambda *args, **kwargs: NO_CONFLICT


class TestMonitorPasses:
    @pytest.mark.parametrize("workload", ["hashmap", "bst", "labyrinth", "mwobject"])
    @pytest.mark.parametrize("design", ["baseline", "clear"])
    def test_silent_on_correct_runs(self, workload, design):
        machine = Machine(
            monitor_config(design),
            make_workload(workload, ops_per_thread=6),
            seed=2,
        )
        stats = machine.run()  # finalize() runs inside; no raise = pass
        assert stats.total_commits > 0
        assert len(machine.monitor.commits) == stats.total_commits

    def test_monitor_actually_checks_reads(self):
        machine = Machine(
            monitor_config(), make_workload("hashmap", ops_per_thread=6), seed=2
        )
        machine.run()
        assert machine.monitor.reads_checked > 0

    @pytest.mark.parametrize("design", sorted(DESIGN_REGISTRY))
    def test_silent_across_designs(self, design):
        machine = Machine(
            monitor_config(design),
            make_workload("mwobject", ops_per_thread=6),
            seed=1,
        )
        assert machine.run().total_commits > 0

    def test_monitored_run_matches_plain_run(self):
        plain = Machine(
            SimConfig.for_design("clear", num_cores=4),
            make_workload("hashmap", ops_per_thread=6), seed=5,
        ).run()
        watched = Machine(
            monitor_config(), make_workload("hashmap", ops_per_thread=6), seed=5
        ).run()
        assert plain.to_dict() == watched.to_dict()

    def test_fallback_heavy_run_checked(self):
        # retry_threshold=1 routes contended regions to the serial
        # fallback constantly, exercising the eager fallback hooks.
        machine = Machine(
            monitor_config(retry_threshold=1),
            make_workload("mwobject", ops_per_thread=8),
            seed=1,
        )
        stats = machine.run()
        assert stats.total_commits > 0


class TestBatchBackendComposition:
    """``backend="batch"`` + online monitoring stays on the fused path."""

    def batch_config(self, **overrides):
        return monitor_config(backend="batch", num_cores=8, **overrides)

    def test_online_monitor_does_not_degrade_batch(self):
        machine = build_machine(
            self.batch_config(), make_workload("genome", ops_per_thread=8),
            seed=1,
        )
        assert isinstance(machine, BatchMachine)
        assert not machine._needs_reference_loop()

    def test_shadow_oracle_still_degrades_batch(self):
        # Pins the PR 8 hook-degradation rule: the shadow oracle's
        # per-pop sampling forces the reference loop; the monitor
        # (commit hooks only) must not.
        machine = build_machine(
            self.batch_config(oracle="shadow"),
            make_workload("genome", ops_per_thread=8), seed=1,
        )
        assert machine._needs_reference_loop()

    @pytest.mark.parametrize("workload", ["hashmap", "genome", "mwobject"])
    def test_batch_monitored_stats_bit_identical(self, workload):
        batch = build_machine(
            self.batch_config(), make_workload(workload, ops_per_thread=8),
            seed=1,
        )
        batch_stats = batch.run()
        reference = Machine(
            monitor_config(num_cores=8),
            make_workload(workload, ops_per_thread=8), seed=1,
        )
        assert batch_stats.to_dict() == reference.run().to_dict()
        assert batch.monitor.reads_checked == reference.monitor.reads_checked

    def test_batch_monitor_catches_tampering(self):
        machine = build_machine(
            self.batch_config(), make_workload("hashmap", ops_per_thread=6),
            seed=3,
        )
        machine.memory.store(10_000_000, 42)
        with pytest.raises(OracleViolation):
            machine.run()

    def test_batch_fallback_heavy_run_checked(self):
        # Fused fallback execution is disabled while the monitor is
        # armed (the hooks live on the reference op path); results must
        # still match the reference loop exactly.
        batch = build_machine(
            self.batch_config(retry_threshold=1),
            make_workload("mwobject", ops_per_thread=8), seed=1,
        )
        batch_stats = batch.run()
        reference = Machine(
            monitor_config(num_cores=8, retry_threshold=1),
            make_workload("mwobject", ops_per_thread=8), seed=1,
        )
        assert batch_stats.to_dict() == reference.run().to_dict()


class TestMonitorCatches:
    def test_out_of_band_tampering(self):
        machine = Machine(
            monitor_config(), make_workload("hashmap", ops_per_thread=5), seed=3
        )
        machine.memory.store(10_000_000, 42)
        with pytest.raises(OracleViolation) as excinfo:
            machine.run()
        details = excinfo.value.details
        assert any(diff["addr"] == 10_000_000 for diff in details["diffs"])

    def test_leaked_cacheline_lock(self):
        machine = Machine(
            monitor_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        machine.memsys.locks.try_lock(99, 123_456)
        with pytest.raises(OracleViolation, match="lock-table leak"):
            machine.run()

    def test_leaked_power_token(self):
        machine = Machine(
            monitor_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        machine.power.try_acquire(99)
        with pytest.raises(OracleViolation, match="power-token leak"):
            machine.run()

    def test_leaked_fallback_reader(self):
        machine = Machine(
            monitor_config(), make_workload("mwobject", ops_per_thread=3), seed=1
        )
        machine.fallback.try_acquire_read(99)
        with pytest.raises(OracleViolation, match="fallback-lock leak"):
            machine.run()

    @pytest.mark.parametrize("workload,seed", [
        ("mwobject", 1), ("mwobject", 2), ("hashmap", 1),
    ])
    def test_stale_read_caught_at_commit(self, workload, seed):
        machine = Machine(
            monitor_config("baseline", num_cores=8),
            make_workload(workload, ops_per_thread=8), seed,
        )
        drop_all_conflicts(machine)
        with pytest.raises(OracleViolation, match="stale read") as excinfo:
            machine.run()
        stale = excinfo.value.details["stale_reads"]
        assert stale and all(
            entry["current_epoch"] != entry["read_epoch"] for entry in stale
        )


class TestCrossCheck:
    def test_silent_on_correct_runs(self):
        machine = Machine(
            monitor_config(oracle="cross-check"),
            make_workload("genome", ops_per_thread=6), seed=1,
        )
        assert machine.run().total_commits > 0

    def test_both_checkers_flag_planted_bug(self):
        machine = Machine(
            monitor_config("baseline", oracle="cross-check", num_cores=8),
            make_workload("mwobject", ops_per_thread=8), seed=1,
        )
        drop_all_conflicts(machine)
        # Both flag -> the shadow verdict propagates with the online
        # verdict attached; a divergence here would be a checker bug.
        with pytest.raises(OracleViolation) as excinfo:
            machine.run()
        assert not isinstance(excinfo.value, OracleDivergence)
        assert "online_verdict" in excinfo.value.details

    def test_divergence_raised_when_one_checker_goes_blind(self):
        machine = Machine(
            monitor_config("baseline", oracle="cross-check", num_cores=8),
            make_workload("mwobject", ops_per_thread=8), seed=1,
        )
        drop_all_conflicts(machine)
        # Planted checker bug: the monitor swallows its verdicts, the
        # shadow oracle still flags the run -> OracleDivergence.
        machine.monitor.deferred = machine.monitor.deferred  # keep attr
        machine.monitor._violation = lambda *args, **kwargs: None
        with pytest.raises(OracleDivergence) as excinfo:
            machine.run()
        assert excinfo.value.details["flagging_checker"] == "shadow"


@pytest.mark.slow
class TestCrossCheckGrid:
    """Differential suite: zero divergences over the full matrix."""

    @pytest.mark.parametrize("workload", sorted(ALL_NAMES))
    @pytest.mark.parametrize("design", sorted(DESIGN_REGISTRY))
    def test_checkers_agree(self, workload, design):
        machine = Machine(
            SimConfig.for_design(design, num_cores=4, oracle="cross-check"),
            make_workload(workload, ops_per_thread=6), seed=2,
        )
        try:
            stats = machine.run()
        except OracleDivergence as exc:  # pragma: no cover - real bug
            pytest.fail("checker divergence on {}/{}: {}".format(
                workload, design, exc
            ))
        assert stats.total_commits > 0
