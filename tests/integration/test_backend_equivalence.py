"""Batch backend equivalence: the calendar-queue loop is bit-identical.

``backend="batch"`` (:class:`repro.sim.batch.BatchMachine`) must be an
observationally invisible substitute for the reference heap loop —
identical stats, event counts, and final architectural memory, run for
run, on every registered design. Evidence layers:

1. pairwise differentials: every registered design (the paper's four
   plus ``lrw``/``bigatomics``) runs representative workloads on both
   backends; stats JSON, ``event_count``, and ``memory.snapshot()``
   must match exactly — and, in the slow profile, the full 19-workload
   x all-designs grid does the same;
2. the full micro experiment matrix run with ``backend="batch"``
   produces figure JSON equal to the committed reference golden
   (``tests/goldens/figures_micro.json``) — the same file the reference
   backend is pinned against in ``test_conflict_equivalence``;
3. hook degradation: with a per-event hook armed (trace, scheduler,
   oracle, faults, watchdog, conflict cross-check) the batch machine
   must *not* enter the fused loop — it runs the reference loop and
   still matches the reference machine byte for byte;
4. selection plumbing: ``build_machine`` picks the class from
   ``config.backend``, invalid backends are rejected at config
   construction, and the backend is part of the cache fingerprint so
   the two loops can never share cache entries (they only ever disagree
   if one of them is buggy — but then the cache must not mask it).
"""

import json
import os

import pytest

from repro.common.errors import ConfigurationError
from repro.htm.design import DESIGN_REGISTRY
from repro.obs.trace import EventTrace
from repro.sim.batch import BatchMachine
from repro.sim.config import BACKENDS, SimConfig
from repro.sim.machine import Machine, build_machine
from repro.workloads import ALL_NAMES, make_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "goldens", "figures_micro.json"
)

ALL_DESIGNS = sorted(DESIGN_REGISTRY)

#: Fast-profile differential workloads: one data structure, one STAMP
#: application, one high-contention pattern.
SMOKE_WORKLOADS = ("hashmap", "genome", "mwobject")


def run_digest(machine):
    """Everything observable about one finished run, comparably encoded."""
    stats = machine.run()
    return {
        "stats": json.dumps(stats.to_dict(), sort_keys=True),
        "events": machine.event_count,
        "memory": sorted(machine.memory.snapshot().items()),
    }


def both_backends(design, workload, seed=1, ops_per_thread=6, num_cores=4,
                  **overrides):
    """(reference digest, batch digest) for one cell."""
    digests = []
    for backend in ("reference", "batch"):
        config = SimConfig.for_design(
            design, num_cores=num_cores, backend=backend, **overrides
        )
        machine = build_machine(
            config, make_workload(workload, ops_per_thread=ops_per_thread),
            seed=seed,
        )
        digests.append(run_digest(machine))
    return digests


class TestBackendSelection:
    def test_build_machine_picks_batch(self):
        config = SimConfig(num_cores=2, backend="batch")
        machine = build_machine(config, make_workload("mwobject", ops_per_thread=2))
        assert type(machine) is BatchMachine

    def test_build_machine_default_is_reference(self):
        config = SimConfig(num_cores=2)
        machine = build_machine(config, make_workload("mwobject", ops_per_thread=2))
        assert type(machine) is Machine

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(num_cores=2, backend="bogus")

    def test_backend_registry_names(self):
        assert BACKENDS == ("reference", "batch")

    def test_backend_keys_the_cache_fingerprint(self):
        # Same simulation inputs, different event loop: the two must
        # never share cache entries, or a divergence bug in one loop
        # could be served from the other's cached result.
        reference = SimConfig(num_cores=4)
        batch = SimConfig(num_cores=4, backend="batch")
        assert reference.fingerprint() != batch.fingerprint()

    def test_backend_round_trips_through_dict(self):
        config = SimConfig(num_cores=4, backend="batch")
        assert SimConfig.from_dict(config.to_dict()) == config


class TestPairwiseDifferential:
    @pytest.mark.parametrize("design", ALL_DESIGNS)
    @pytest.mark.parametrize("workload", SMOKE_WORKLOADS)
    def test_designs_match_on_smoke_workloads(self, design, workload):
        reference, batch = both_backends(design, workload)
        assert batch == reference

    def test_single_retry_threshold_matches(self):
        # The paper's bounded-retry point (threshold 1) stresses the
        # abort/fallback machinery the fused loop must delegate for.
        reference, batch = both_backends(
            "baseline", "mwobject", retry_threshold=1
        )
        assert batch == reference

    def test_sle_speculation_matches(self):
        reference, batch = both_backends(
            "clear", "genome", speculation="sle"
        )
        assert batch == reference

    def test_truncation_matches(self):
        # Cycle-limit truncation must fire at the same event on both
        # loops (the lone-runner fast path checks max_cycles before
        # counting each event, exactly like the reference loop), with
        # the same exception message and the same truncated stats.
        from repro.common.errors import CycleLimitExceeded

        digests = []
        for backend in ("reference", "batch"):
            config = SimConfig.for_design(
                "baseline", num_cores=4, backend=backend, max_cycles=500
            )
            machine = build_machine(
                config, make_workload("genome", ops_per_thread=40), seed=1
            )
            with pytest.raises(CycleLimitExceeded) as excinfo:
                machine.run()
            assert machine.stats.truncated
            digests.append({
                "message": str(excinfo.value),
                "stats": json.dumps(machine.stats.to_dict(), sort_keys=True),
                "events": machine.event_count,
                "memory": sorted(machine.memory.snapshot().items()),
            })
        assert digests[1] == digests[0]


class TestHookDegradation:
    """Armed per-event hooks must force the reference loop, unchanged."""

    def pure_config(self, **overrides):
        return SimConfig(num_cores=4, backend="batch", **overrides)

    def test_pure_config_enters_fused_loop(self, monkeypatch):
        sentinel = RuntimeError("fused loop entered")

        def explode(self):
            raise sentinel

        monkeypatch.setattr(BatchMachine, "_run_batched", explode)
        machine = build_machine(
            self.pure_config(), make_workload("mwobject", ops_per_thread=2)
        )
        assert not machine._needs_reference_loop()
        with pytest.raises(RuntimeError, match="fused loop entered"):
            machine.run()

    def assert_degrades(self, batch_machine, reference_machine, monkeypatch):
        def explode(self):
            raise AssertionError("batched loop ran despite an armed hook")

        monkeypatch.setattr(BatchMachine, "_run_batched", explode)
        assert batch_machine._needs_reference_loop()
        assert run_digest(batch_machine) == run_digest(reference_machine)

    def test_trace_degrades(self, monkeypatch):
        workload = lambda: make_workload("mwobject", ops_per_thread=3)
        batch = build_machine(self.pure_config(), workload(), trace=EventTrace())
        reference = Machine(
            SimConfig(num_cores=4), workload(), trace=EventTrace()
        )
        self.assert_degrades(batch, reference, monkeypatch)

    def test_oracle_degrades(self, monkeypatch):
        workload = lambda: make_workload("mwobject", ops_per_thread=3)
        batch = build_machine(self.pure_config(oracle="shadow"), workload())
        reference = Machine(SimConfig(num_cores=4, oracle="shadow"), workload())
        self.assert_degrades(batch, reference, monkeypatch)

    def test_watchdog_degrades(self, monkeypatch):
        workload = lambda: make_workload("mwobject", ops_per_thread=3)
        batch = build_machine(
            self.pure_config(watchdog_cycles=100_000), workload()
        )
        reference = Machine(
            SimConfig(num_cores=4, watchdog_cycles=100_000), workload()
        )
        self.assert_degrades(batch, reference, monkeypatch)

    def test_faults_degrade(self, monkeypatch):
        workload = lambda: make_workload("mwobject", ops_per_thread=3)
        batch = build_machine(
            self.pure_config(fault_spurious_rate=0.1), workload()
        )
        reference = Machine(
            SimConfig(num_cores=4, fault_spurious_rate=0.1), workload()
        )
        self.assert_degrades(batch, reference, monkeypatch)

    def test_conflict_cross_check_degrades(self, monkeypatch):
        workload = lambda: make_workload("mwobject", ops_per_thread=3)
        batch = build_machine(
            self.pure_config(debug_conflict_check=True), workload()
        )
        reference = Machine(
            SimConfig(num_cores=4, debug_conflict_check=True), workload()
        )
        self.assert_degrades(batch, reference, monkeypatch)


@pytest.mark.slow
class TestFullMatrixEquivalence:
    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN_PATH) as handle:
            return json.load(handle)

    def test_micro_matrix_batch_matches_reference_golden(self, golden):
        # The committed golden was produced (and is continuously pinned,
        # see test_conflict_equivalence) by the reference backend; the
        # batch backend reproducing it byte for byte proves figure-JSON
        # equivalence across the full micro matrix.
        from repro.analysis.experiments import (
            ExperimentSettings,
            figure_payload,
            run_config_matrix,
        )

        settings = ExperimentSettings.micro()
        settings.config_overrides["backend"] = "batch"
        matrix = run_config_matrix(settings)
        payload = json.loads(json.dumps(figure_payload(matrix)))
        assert payload == golden

    @pytest.mark.parametrize("design", ALL_DESIGNS)
    def test_every_workload_matches(self, design):
        for workload in ALL_NAMES:
            reference, batch = both_backends(design, workload)
            assert batch == reference, (
                "backend divergence on {}/{}".format(workload, design)
            )
