"""Determinism and seed-sensitivity of whole runs."""

import pytest


@pytest.fixture
def run(micro_machine):
    def go(name, letter, seed, ops=6):
        machine = micro_machine(name, letter, cores=4, seed=seed,
                                ops_per_thread=ops)
        stats = machine.run()
        return machine, stats

    return go


def fingerprint(machine, stats):
    return (
        stats.makespan_cycles,
        stats.total_commits,
        stats.total_aborts,
        tuple(sorted((m.value, c) for m, c in stats.commits_by_mode.items())),
        tuple(sorted((r.value, c) for r, c in stats.aborts_by_reason.items())),
        tuple(sorted(machine.memory.snapshot().items())),
    )


@pytest.mark.parametrize("letter", ("B", "W"))
@pytest.mark.parametrize("name", ("mwobject", "bst", "intruder"))
class TestDeterminism:
    def test_same_seed_identical_run(self, run, letter, name):
        first = fingerprint(*run(name, letter, seed=11))
        second = fingerprint(*run(name, letter, seed=11))
        assert first == second

    def test_different_seed_different_run(self, run, letter, name):
        first = fingerprint(*run(name, letter, seed=11))
        second = fingerprint(*run(name, letter, seed=12))
        assert first != second
