"""Determinism and seed-sensitivity of whole runs."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload


def run(name, letter, seed, ops=6):
    workload = make_workload(name, ops_per_thread=ops)
    machine = Machine(SimConfig.for_letter(letter, num_cores=4), workload, seed)
    stats = machine.run()
    return machine, stats


def fingerprint(machine, stats):
    return (
        stats.makespan_cycles,
        stats.total_commits,
        stats.total_aborts,
        tuple(sorted((m.value, c) for m, c in stats.commits_by_mode.items())),
        tuple(sorted((r.value, c) for r, c in stats.aborts_by_reason.items())),
        tuple(sorted(machine.memory.snapshot().items())),
    )


@pytest.mark.parametrize("letter", ("B", "W"))
@pytest.mark.parametrize("name", ("mwobject", "bst", "intruder"))
class TestDeterminism:
    def test_same_seed_identical_run(self, letter, name):
        first = fingerprint(*run(name, letter, seed=11))
        second = fingerprint(*run(name, letter, seed=11))
        assert first == second

    def test_different_seed_different_run(self, letter, name):
        first = fingerprint(*run(name, letter, seed=11))
        second = fingerprint(*run(name, letter, seed=12))
        assert first != second
