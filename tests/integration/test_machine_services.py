"""Tests for Machine's executor-facing services."""

import pytest

from repro.common.errors import SimulationError
from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.htm.rwset import ReadWriteSets
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload


def fresh_machine(letter="B", cores=3):
    workload = make_workload("mwobject", ops_per_thread=2)
    return Machine(SimConfig.for_design(design_name(letter), num_cores=cores), workload, seed=1)


def arm_speculative(executor, mode=ExecMode.SPECULATIVE, lines=(5,)):
    executor.phase = "body"
    executor.mode = mode
    executor.rwsets = ReadWriteSets(l1_sets=None, l2_sets=None)
    for line in lines:
        executor.rwsets.record_read(line)


class TestPeerViews:
    def test_no_transactions_no_views(self):
        machine = fresh_machine()
        assert machine.peer_views(exclude=0) == []

    def test_excludes_requester(self):
        machine = fresh_machine()
        arm_speculative(machine.executors[0])
        assert machine.peer_views(exclude=0) == []
        views = machine.peer_views(exclude=1)
        assert [view.core for view in views] == [0]

    def test_view_carries_power_flag(self):
        machine = fresh_machine("P")
        arm_speculative(machine.executors[0])
        machine.power.try_acquire(0)
        view = machine.peer_views(exclude=2)[0]
        assert view.is_power

    def test_failed_mode_flagged(self):
        machine = fresh_machine()
        arm_speculative(machine.executors[1], mode=ExecMode.FAILED_DISCOVERY)
        view = machine.peer_views(exclude=0)[0]
        assert view.is_failed


class TestAbortAllSpeculative:
    def test_dooms_speculative_peers(self):
        machine = fresh_machine()
        arm_speculative(machine.executors[0])
        arm_speculative(machine.executors[1], mode=ExecMode.FAILED_DISCOVERY)
        machine.abort_all_speculative(AbortReason.OTHER_FALLBACK, exclude=2)
        assert machine.executors[0].pending_abort is AbortReason.OTHER_FALLBACK
        assert machine.executors[1].pending_abort is AbortReason.OTHER_FALLBACK

    def test_excluded_core_untouched(self):
        machine = fresh_machine()
        arm_speculative(machine.executors[0])
        machine.abort_all_speculative(AbortReason.OTHER_FALLBACK, exclude=0)
        assert machine.executors[0].pending_abort is None

    def test_running_scl_is_a_protocol_violation(self):
        # The fallback writer can only acquire once all CL readers left;
        # finding a live S-CL here means the guard was bypassed.
        machine = fresh_machine("C")
        arm_speculative(machine.executors[0], mode=ExecMode.S_CL)
        with pytest.raises(SimulationError):
            machine.abort_all_speculative(AbortReason.OTHER_FALLBACK, exclude=1)


class TestFallbackLinePlacement:
    def test_fallback_lock_line_disjoint_from_workload_data(self):
        machine = fresh_machine()
        # The lock line was allocated before workload setup; workload
        # structures must start at or after the next line.
        assert machine.fallback.line >= 1
        workload = machine.workload
        assert workload.object_base // 8 != machine.fallback.line
