"""Integration tests for the Table 1 / Fig. 1 characterizer."""

import pytest

from repro.analysis.characterize import (
    characterization_table,
    characterize_workload,
)
from repro.workloads import make_workload
from repro.workloads.base import Mutability


def factory(name):
    return lambda: make_workload(name, ops_per_thread=10)


class TestImmutableDetection:
    def test_arrayswap_fully_immutable(self):
        results = characterize_workload(factory("arrayswap"), samples_per_region=6,
                                        perturbations=4)
        assert all(
            r.measured is Mutability.IMMUTABLE for r in results.values()
        )

    def test_mwobject_immutable(self):
        results = characterize_workload(factory("mwobject"), samples_per_region=6,
                                        perturbations=4)
        assert results["mw_update"].measured is Mutability.IMMUTABLE


class TestLikelyImmutableDetection:
    def test_bitcoin_likely_immutable(self):
        results = characterize_workload(factory("bitcoin"), samples_per_region=6,
                                        perturbations=4)
        assert results["transfer"].measured is Mutability.LIKELY_IMMUTABLE


class TestMutableDetection:
    def test_bst_regions_not_immutable(self):
        results = characterize_workload(factory("bst"), samples_per_region=8,
                                        perturbations=8)
        for characterization in results.values():
            assert characterization.measured is not Mutability.IMMUTABLE

    def test_hashmap_mostly_mutable(self):
        results = characterize_workload(factory("hashmap"), samples_per_region=8,
                                        perturbations=8)
        mutable = sum(
            1 for r in results.values() if r.measured is Mutability.MUTABLE
        )
        assert mutable >= 2

    def test_sorted_list_split(self):
        results = characterize_workload(factory("sorted-list"), samples_per_region=8,
                                        perturbations=8)
        assert results["bump_stats"].measured is Mutability.IMMUTABLE
        assert results["count_matches"].measured is Mutability.MUTABLE


class TestTableGeneration:
    def test_rows_cover_all_regions(self):
        rows = characterization_table(
            [factory("arrayswap"), factory("bitcoin")],
            samples_per_region=4, perturbations=3,
        )
        assert [row["benchmark"] for row in rows] == ["arrayswap", "bitcoin"]
        first = rows[0]
        assert first["num_ars"] == 2
        assert (
            first["immutable"] + first["likely_immutable"] + first["mutable"]
            == first["num_ars"]
        )

    def test_immutable_column_matches_declared_for_datastructures(self):
        # The taint-based immutable column is deterministic and must
        # match Table 1 exactly for these benchmarks.
        names = ("arrayswap", "bitcoin", "mwobject", "bst", "hashmap")
        expected_immutable = {"arrayswap": 2, "bitcoin": 0, "mwobject": 1,
                              "bst": 0, "hashmap": 0}
        rows = characterization_table(
            [factory(name) for name in names],
            samples_per_region=5, perturbations=4,
        )
        for row in rows:
            assert row["immutable"] == expected_immutable[row["benchmark"]]
