"""Behavioral tests for the post-paper designs (``lrw``, ``bigatomics``).

The paper's four configurations are pinned byte-for-byte by the golden
micro matrix; the two new designs have no goldens to lean on, so these
tests pin their *semantics* instead:

- ``lrw`` bounds speculative R/W tracking. Overflow raises CAPACITY and
  routes the invocation straight to the fallback lock, which the retry
  oracle must accept as a legitimate budget undershoot.
- ``bigatomics`` commits small-footprint regions as a constant-time
  multiword operation, surfaces the count through
  ``stats.design_annotations``, and earns an energy discount.

A seeded schedule-exploration smoke per design plus a slow 19-workload
oracle matrix round out the acceptance gate.
"""

import pytest

from repro import api
from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.stats import MachineStats
from repro.verify import verify
from repro.verify.oracles import RetryLedger, check_retry_bound
from repro.workloads import ALL_NAMES, make_workload

NEW_DESIGNS = ("lrw", "bigatomics")


def run_machine(config, workload="hashmap", seed=1, ops_per_thread=6,
                ledger=None):
    machine = Machine(
        config, make_workload(workload, ops_per_thread=ops_per_thread),
        seed=seed, retry_ledger=ledger,
    )
    return machine.run()


class TestLrwBehavior:
    def tiny_config(self, **overrides):
        overrides.setdefault("lrw_read_lines", 2)
        overrides.setdefault("lrw_write_lines", 1)
        return SimConfig.for_design("lrw", num_cores=4, oracle="shadow",
                                    **overrides)

    def test_tiny_budgets_overflow_to_fallback(self):
        stats = run_machine(self.tiny_config())
        assert stats.aborts_by_reason[AbortReason.CAPACITY] > 0
        assert stats.commits_by_mode[ExecMode.FALLBACK] > 0
        assert stats.total_commits > 0

    def test_overflow_satisfies_retry_oracle(self):
        """CAPACITY fallbacks undershoot the budget — by design, the
        oracle's early_fallback_reasons exemption must absorb that."""
        config = self.tiny_config()
        ledger = RetryLedger()
        stats = run_machine(config, ledger=ledger)
        assert stats.aborts_by_reason[AbortReason.CAPACITY] > 0
        assert check_retry_bound(ledger, config) == []

    def test_default_budgets_rarely_overflow(self):
        """At the default 64r/16w budget a micro run fits entirely."""
        config = SimConfig.for_design("lrw", num_cores=4, oracle="shadow")
        ledger = RetryLedger()
        stats = run_machine(config, ledger=ledger)
        assert stats.aborts_by_reason[AbortReason.CAPACITY] == 0
        assert check_retry_bound(ledger, config) == []

    def test_oracle_still_rejects_plain_undershoot(self):
        """The exemption is scoped to CAPACITY: an undershooting
        fallback commit with no capacity abort must still trip."""
        config = self.tiny_config(retry_threshold=4)
        ledger = RetryLedger()
        ledger.note_invoke(0, "r")
        ledger.note_begin(0, ExecMode.SPECULATIVE)
        ledger.note_abort(0, ExecMode.SPECULATIVE,
                          AbortReason.MEMORY_CONFLICT)
        ledger.note_begin(0, ExecMode.FALLBACK)
        ledger.note_commit(0, ExecMode.FALLBACK, counting_retries=1)
        violations = check_retry_bound(ledger, config)
        assert any(v["kind"] == "fallback-threshold" for v in violations)


class TestBigAtomicsBehavior:
    def test_multiword_commits_annotated(self):
        config = SimConfig.for_design("bigatomics", num_cores=4, oracle="shadow")
        stats = run_machine(config, workload="mwobject")
        assert stats.design_annotations.get("multiword_commits", 0) > 0
        assert stats.design_annotations["multiword_commits"] \
            <= stats.total_commits

    def test_annotations_survive_serialization(self):
        config = SimConfig.for_design("bigatomics", num_cores=4)
        stats = run_machine(config, workload="mwobject")
        data = stats.to_dict()
        assert data["design_annotations"] == stats.design_annotations
        rebuilt = MachineStats.from_dict(data)
        assert rebuilt.design_annotations == stats.design_annotations
        assert rebuilt.to_dict() == data

    def test_legacy_designs_emit_no_annotations(self):
        config = SimConfig.for_design("clear", num_cores=4)
        stats = run_machine(config, workload="mwobject")
        assert stats.design_annotations == {}
        assert "design_annotations" not in stats.to_dict()

    def test_multiword_commits_earn_energy_discount(self):
        from repro.energy.model import EnergyModel

        config = SimConfig.for_design("bigatomics", num_cores=4)
        stats = run_machine(config, workload="mwobject")
        multiword = stats.design_annotations["multiword_commits"]
        assert multiword > 0
        model = EnergyModel()
        discounted = model.evaluate(stats)
        stats.design_annotations = {}
        full = model.evaluate(stats)
        saving = (model.tx_commit - model.multiword_commit) * multiword
        assert full.dynamic - discounted.dynamic == pytest.approx(saving)
        assert full.static == discounted.static

    def test_big_footprints_fall_back_to_full_commit(self):
        config = SimConfig.for_design("bigatomics", num_cores=4,
                                      bigatomics_lines=1)
        stats = run_machine(config, workload="hashmap")
        assert stats.design_annotations.get("multiword_commits", 0) == 0
        assert stats.total_commits > 0

    def test_retry_bound_holds(self):
        config = SimConfig.for_design("bigatomics", num_cores=4, oracle="shadow")
        ledger = RetryLedger()
        run_machine(config, workload="hashmap", ledger=ledger)
        assert check_retry_bound(ledger, config) == []


class TestNewDesignVerifySmoke:
    """Seeded 4-core schedule-exploration fuzz per new design."""

    @pytest.mark.parametrize("design", NEW_DESIGNS)
    def test_fuzzing_passes_all_oracles(self, design):
        report = verify("mwobject", design, cores=4, ops_per_thread=4,
                        seed=1, explorer="random", schedules=8)
        assert report.ok, report.violations

    def test_lrw_overflow_schedules_stay_clean(self):
        config = SimConfig.for_design("lrw", num_cores=4, lrw_read_lines=2,
                                      lrw_write_lines=1, oracle="shadow")
        report = verify("hashmap", config, ops_per_thread=4, seed=1,
                        explorer="pct", schedules=8)
        assert report.ok, report.violations


class TestApiIntegration:
    @pytest.mark.parametrize("design", NEW_DESIGNS)
    def test_simulate_accepts_design_names(self, design):
        report = api.simulate("mwobject", design, seeds=1, ops_per_thread=4)
        assert report.config.design == design
        assert report.run.stats.total_commits > 0

    def test_report_roundtrip_keeps_annotations(self):
        report = api.simulate("mwobject", "bigatomics", seeds=1,
                              ops_per_thread=6)
        rebuilt = api.SimulationReport.from_dict(report.to_dict())
        assert rebuilt.run.stats.design_annotations \
            == report.run.stats.design_annotations
        assert rebuilt.to_dict() == report.to_dict()


@pytest.mark.slow
class TestFullOracleMatrix:
    """Both new designs pass the full oracle suite on all 19 workloads."""

    @pytest.mark.parametrize("design", NEW_DESIGNS)
    @pytest.mark.parametrize("workload", ALL_NAMES)
    def test_oracles_hold(self, workload, design):
        config = SimConfig.for_design(design, num_cores=4, oracle="shadow")
        ledger = RetryLedger()
        stats = run_machine(config, workload=workload, seed=1,
                            ops_per_thread=6, ledger=ledger)
        assert stats.total_commits > 0
        assert check_retry_bound(ledger, config) == []
