"""Tests for the CSV figure exporters."""

import csv

import pytest

from repro.analysis.experiments import ExperimentSettings, run_config_matrix
from repro.analysis.export import export_all


@pytest.fixture(scope="module")
def matrix():
    settings = ExperimentSettings(
        benchmarks=("mwobject", "bitcoin"), num_cores=2, ops_per_thread=4,
        seeds=(1,),
    )
    return run_config_matrix(settings)


def read_csv(path):
    with open(path) as handle:
        return list(csv.reader(handle))


class TestExportAll:
    def test_writes_all_figures(self, matrix, tmp_path):
        paths = export_all(matrix, str(tmp_path))
        assert set(paths) == {
            "fig01", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13"
        }
        for path in paths.values():
            rows = read_csv(path)
            assert len(rows) >= 2  # header + data

    def test_fig8_has_config_columns(self, matrix, tmp_path):
        paths = export_all(matrix, str(tmp_path))
        rows = read_csv(paths["fig08"])
        assert rows[0][:5] == ["benchmark", "B", "P", "C", "W"]
        benchmarks = {row[0] for row in rows[1:]}
        assert {"mwobject", "bitcoin", "geomean"} <= benchmarks
        # Baseline column normalizes to 1.0.
        for row in rows[1:]:
            assert float(row[1]) == 1.0

    def test_fig12_long_format_shares_valid(self, matrix, tmp_path):
        paths = export_all(matrix, str(tmp_path))
        rows = read_csv(paths["fig12"])
        assert rows[0] == ["benchmark", "config", "mode", "share"]
        for row in rows[1:]:
            assert 0.0 <= float(row[3]) <= 1.0

    def test_fig13_triples_sum_to_one_or_zero(self, matrix, tmp_path):
        paths = export_all(matrix, str(tmp_path))
        rows = read_csv(paths["fig13"])
        for row in rows[1:]:
            total = sum(float(cell) for cell in row[2:])
            if row[0] == "average":
                # The average mixes benchmarks that never retried
                # (all-zero triples) with ones that did.
                assert 0.0 <= total <= 1.0 + 1e-6
            else:
                assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0
