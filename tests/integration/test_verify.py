"""Integration tests for the schedule-exploration subsystem.

Four layers, in increasing ambition:

1. The scheduler seam is invisible — a machine with no scheduler and a
   machine with the DefaultScheduler attached are bit-identical.
2. Fuzzing (random / PCT) over micro workloads passes every oracle.
3. Exhaustive DPOR-lite exploration of a 2-core micro workload
   completes, and all three oracles hold on every explored schedule
   (the CI acceptance gate).
4. A planted arbiter bug — a burst of silently dropped conflict
   resolutions — survives the default schedule but is caught by
   exploration, ddmin-shrunk to a replayable artifact, and reproduced
   from that artifact alone.
"""

import pytest

from repro import api
from repro.htm.arbiter import NO_CONFLICT
from repro.verify import (
    DefaultScheduler,
    ScheduleArtifact,
    replay_artifact,
    verify,
)
from repro.workloads import make_workload

MICRO = dict(cores=2, ops_per_thread=4)


def snapshot_of(machine):
    return sorted(machine.memory.snapshot().items())


class TestSchedulerSeamIdentity:
    """Attaching the default scheduler must change nothing at all."""

    @pytest.mark.parametrize("name", ("mwobject", "hashmap", "queue"))
    def test_default_scheduler_is_bit_identical(self, micro_machine, name):
        plain = micro_machine(name, "B", cores=4, seed=2)
        plain_stats = plain.run()
        scheduled = micro_machine(
            name, "B", cores=4, seed=2, scheduler=DefaultScheduler()
        )
        scheduled_stats = scheduled.run()
        assert scheduled_stats.to_dict() == plain_stats.to_dict()
        assert snapshot_of(scheduled) == snapshot_of(plain)

    def test_seam_sees_real_choice_points(self, micro_machine):
        from repro.verify import RecordingScheduler

        recording = RecordingScheduler(DefaultScheduler())
        machine = micro_machine("mwobject", "B", cores=4, seed=1,
                                scheduler=recording)
        machine.run()
        assert recording.decisions, "4-core run produced no tie-breaks"
        assert all(choice == 0 for choice in recording.decisions)
        assert all(arity >= 2 for arity in recording.arities)


class TestFuzzingExploration:
    @pytest.mark.parametrize("explorer", ("random", "pct"))
    def test_micro_fuzzing_passes_all_oracles(self, explorer):
        report = verify("mwobject", "baseline", seed=1, explorer=explorer,
                        schedules=10, **MICRO)
        assert report.ok, report.violations
        assert report.schedules_explored == 11  # default baseline + 10
        assert report.state_checked  # mwobject commutes
        assert report.distinct_states == 1

    def test_structural_workload_skips_state_equality(self):
        report = verify("queue", "baseline", seed=1, explorer="random",
                        schedules=8, **MICRO)
        assert report.ok, report.violations
        assert not report.state_checked

    def test_factory_workloads_explore_inline(self):
        factory = lambda: make_workload("mwobject", ops_per_thread=3)  # noqa: E731
        report = verify(factory, "baseline", cores=2, schedules=5)
        assert report.ok, report.violations
        assert report.workload_name is None

    def test_engine_fan_out_matches_inline(self):
        from repro.sim.engine import ExperimentEngine

        inline = verify("mwobject", "baseline", seed=1, explorer="random",
                        schedules=12, **MICRO)
        engine = ExperimentEngine(jobs=2, cache_dir=None)
        fanned = verify("mwobject", "baseline", seed=1, explorer="random",
                        schedules=12, engine=engine, **MICRO)
        assert fanned.ok and inline.ok
        assert [o.decisions for o in fanned.outcomes] == \
            [o.decisions for o in inline.outcomes]
        assert [o.state_sha256 for o in fanned.outcomes] == \
            [o.state_sha256 for o in inline.outcomes]

    def test_api_facade_delegates(self):
        report = api.verify("mwobject", "baseline", schedules=3, **MICRO)
        assert report.ok


class TestExhaustiveExploration:
    """The CI acceptance gate: full micro schedule spaces, all oracles."""

    def test_mwobject_2core_tree_is_verified_exhaustively(self):
        report = verify("mwobject", "baseline", cores=2, ops_per_thread=6, seed=1,
                        explorer="exhaustive", max_schedules=500)
        assert report.complete, "schedule tree was truncated"
        assert report.ok, report.violations
        assert report.schedules_explored > 10
        assert report.distinct_schedules == report.schedules_explored
        assert report.state_checked
        assert report.distinct_states == 1

    def test_hashmap_2core_tree_is_verified_exhaustively(self):
        report = verify("hashmap", "baseline", cores=2, ops_per_thread=4, seed=1,
                        explorer="exhaustive", max_schedules=500)
        assert report.complete and report.ok
        assert report.schedules_explored > 10

    def test_truncation_is_reported(self):
        report = verify("mwobject", "baseline", cores=4, ops_per_thread=4, seed=1,
                        explorer="exhaustive", max_schedules=5)
        assert not report.complete
        assert report.schedules_explored == 5


def plant_arbiter_bug(machine):
    """Test-only arbiter bug: resolutions 16-21 are silently dropped.

    Models an arbiter queue overflow that loses a burst of conflict-
    resolution requests: every check in the burst reports NO_CONFLICT,
    so two overlapping atomic regions can both commit. Which accesses
    fall inside the burst depends on the interleaving — the default
    schedule happens to survive it, so only exploration can find it.
    """
    real = machine.resolve_conflict
    state = {"calls": 0}

    def buggy(core, line, is_write, requester_failed=False,
              requester_unstoppable=False):
        state["calls"] += 1
        if 16 <= state["calls"] < 22:
            return NO_CONFLICT
        return real(core, line, is_write, requester_failed,
                    requester_unstoppable)

    machine.resolve_conflict = buggy


class TestPlantedArbiterBug:
    PLANT_ARGS = dict(workload="mwobject", config="baseline", cores=2,
                      ops_per_thread=6, seed=1)

    def test_default_schedule_misses_the_bug(self):
        report = verify(explorer="exhaustive", max_schedules=1,
                        machine_hook=plant_arbiter_bug, shrink=False,
                        **self.PLANT_ARGS)
        assert report.outcomes[0].ok, (
            "the planted bug must survive the default schedule — "
            "otherwise exploration proves nothing"
        )

    @pytest.mark.parametrize("explorer,budget", [
        ("exhaustive", dict(max_schedules=300)),
        ("random", dict(schedules=40)),
        ("pct", dict(schedules=40)),
    ])
    def test_exploration_catches_and_shrinks_the_bug(self, tmp_path,
                                                     explorer, budget):
        report = verify(explorer=explorer, machine_hook=plant_arbiter_bug,
                        **self.PLANT_ARGS, **budget)
        assert not report.ok, "exploration failed to catch the planted bug"
        assert report.outcomes[0].ok  # baseline still clean
        kinds = {entry["kind"] for entry in report.violations}
        assert "serializability" in kinds

        assert report.artifacts, "no shrunk artifact produced"
        artifact = report.artifacts[0]
        assert len(artifact.decisions) <= 20
        assert any(entry["kind"] == "serializability"
                   for entry in artifact.violations)

        # The artifact alone reproduces the failure...
        path = str(tmp_path / "failing_schedule.json")
        artifact.save(path)
        reloaded = ScheduleArtifact.load(path)
        outcome = replay_artifact(reloaded, machine_hook=plant_arbiter_bug)
        assert any(entry["kind"] == "serializability"
                   for entry in outcome.violations)
        # ...and the same schedule is clean without the plant.
        assert replay_artifact(reloaded).ok

    def test_shrunk_artifact_is_minimal(self):
        report = verify(explorer="exhaustive", max_schedules=300,
                        machine_hook=plant_arbiter_bug, **self.PLANT_ARGS)
        artifact = report.artifacts[0]
        assert artifact.decisions, (
            "this plant needs a non-default schedule; an empty decision "
            "list means the bug became schedule-independent"
        )
        # 1-minimality: flipping any kept non-default decision back to
        # the default must lose the failure.
        for index, choice in enumerate(artifact.decisions):
            if choice == 0:
                continue
            weakened = list(artifact.decisions)
            weakened[index] = 0
            probe = ScheduleArtifact(
                artifact.workload, artifact.config, artifact.seed, weakened,
                ops_per_thread=artifact.ops_per_thread,
            )
            outcome = replay_artifact(probe, machine_hook=plant_arbiter_bug)
            assert not any(entry["kind"] == "serializability"
                           for entry in outcome.violations)
