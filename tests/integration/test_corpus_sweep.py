"""Seeded gen-workload sweep through the engine, journaled and resumed.

The corpus CI job's gate: a 12-cell matrix of generated kernels (2
specs x 2 designs x 3 seeds) fans out across worker processes with
sweep journaling on, then a resumed run must replay every completed
cell — exactly once, byte-identical — instead of re-executing. This
proves the ``gen:`` namespace survives the whole durability stack:
worker processes re-resolve canonical names from scratch, cache keys
carry the spec fingerprint token, and journal replay reconstructs the
same results.
"""

import json

import pytest

from repro.sim.config import SimConfig
from repro.sim.engine import ExperimentEngine, RunSpec
from repro.sim.journal import SweepJournal

SPECS = (
    "gen:footprint=2,mutability=immutable",
    "gen:regions=2,footprint=3,contention=0.75",
)
DESIGNS = ("baseline", "clear")
SEEDS = (1, 2, 3)


def build_cells():
    return [
        RunSpec(
            workload=name,
            config=SimConfig.for_design(design, num_cores=4),
            seed=seed,
            ops_per_thread=4,
        )
        for name in SPECS
        for design in DESIGNS
        for seed in SEEDS
    ]


def dump(report):
    return json.dumps(
        [result.to_dict() for result in report.results], sort_keys=True
    )


@pytest.mark.slow
def test_journaled_sweep_resumes_byte_identical(tmp_path):
    cells = build_cells()
    assert len(cells) == 12
    job_dir = str(tmp_path / "job")

    engine = ExperimentEngine(jobs=2, cache_dir=str(tmp_path / "cache"))
    first = engine.run_specs_report(cells, journal=SweepJournal(job_dir))
    assert first.ok, first.failure_report()
    assert first.journal["executed"] == 12

    resumed_engine = ExperimentEngine(
        jobs=2, cache_dir=str(tmp_path / "cache2")
    )
    resumed = resumed_engine.run_specs_report(cells, journal=job_dir)
    assert resumed.ok, resumed.failure_report()
    assert resumed.journal["replayed"] == 12
    assert resumed.journal["executed"] == 0
    assert dump(resumed) == dump(first)


@pytest.mark.slow
def test_fanout_agrees_with_serial(tmp_path):
    cells = build_cells()
    serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs_report(cells)
    fanned = ExperimentEngine(jobs=2, cache_dir=None).run_specs_report(cells)
    assert serial.ok and fanned.ok
    assert dump(fanned) == dump(serial)


def test_gen_cache_keys_carry_the_spec_token(tmp_path):
    spec_a, spec_b = (
        RunSpec(
            workload=name,
            config=SimConfig.for_design("baseline", num_cores=2),
            seed=1,
            ops_per_thread=2,
        )
        for name in SPECS
    )
    assert spec_a.cache_key() != spec_b.cache_key()
