"""Whole-system atomicity and liveness invariants.

Every workload must complete (no deadlock, no livelock) in every
configuration, with its data-structure invariants intact and all
machine-wide resources released.
"""

import pytest

from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import ALL_NAMES, make_workload

CONFIG_LETTERS = ("B", "P", "C", "W")


def run(name, letter, seed=3, cores=4, ops=6):
    workload = make_workload(name, ops_per_thread=ops)
    machine = Machine(SimConfig.for_design(design_name(letter), num_cores=cores), workload, seed)
    stats = machine.run()
    return machine, workload, stats


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("letter", CONFIG_LETTERS)
class TestAllWorkloadsAllConfigs:
    def test_completes_with_expected_commit_count(self, name, letter):
        machine, workload, stats = run(name, letter)
        assert not stats.truncated
        assert stats.total_commits == 4 * 6  # cores x ops

    def test_resources_released(self, name, letter):
        machine, _, _ = run(name, letter)
        assert machine.memsys.locks.locked_line_count() == 0
        assert not machine.fallback.is_write_held()
        assert machine.fallback.readers == frozenset()
        assert machine.power.holder is None


class TestDataStructureInvariants:
    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_bitcoin_conserves_balance(self, letter):
        machine, workload, _ = run("bitcoin", letter, ops=12)
        assert workload.total_balance(machine.memory) == workload.num_wallets * 10_000

    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_bst_property_holds(self, letter):
        machine, workload, _ = run("bst", letter, ops=12)
        workload.inorder_keys(machine.memory)

    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_sorted_list_stays_sorted(self, letter):
        machine, workload, _ = run("sorted-list", letter, ops=12)
        workload.values_in_order(machine.memory)

    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_hashmap_chains_consistent(self, letter):
        machine, workload, _ = run("hashmap", letter, ops=12)
        for bucket in range(workload.num_buckets):
            workload.chain_keys(machine.memory, bucket)

    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_ring_indices_never_cross(self, letter):
        for name in ("queue", "deque"):
            machine, workload, _ = run(name, letter, ops=12)
            assert workload.size(machine.memory) >= 0

    @pytest.mark.parametrize("letter", CONFIG_LETTERS)
    def test_mwobject_counts_match_commits(self, letter):
        machine, workload, stats = run("mwobject", letter, ops=12)
        fields = workload.field_values(machine.memory)
        # Every committed AR adds exactly 1 to each of the 4 fields.
        assert fields == [stats.total_commits] * 4
