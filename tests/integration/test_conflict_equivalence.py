"""Equivalence of sharer-index conflict detection with the legacy scan.

Three layers of evidence that the O(sharers) hot path computes exactly
what the O(num_cores) peer scan did:

1. the ``debug_conflict_check`` knob runs *both* paths on every single
   resolution and raises :class:`ConflictIndexMismatch` on any
   divergence — a full micro matrix (all 19 benchmarks x B/P/C/W)
   completing under it is millions of agreeing arbitrations;
2. the figure payload of that matrix equals the stored pre-refactor
   golden (``tests/goldens/figures_micro.json``), with and without the
   debug knob — the observable simulation is bit-for-bit unchanged;
3. a direct run asserts the knob actually exercises the cross-check
   (``conflict_cross_checks > 0``), so layer 1 cannot pass vacuously.
"""

import json
import os

import pytest

pytestmark = pytest.mark.slow

from repro.analysis.experiments import ExperimentSettings, figure_payload, run_config_matrix
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.workloads import make_workload

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "goldens", "figures_micro.json"
)


def micro_payload(debug_conflict_check):
    settings = ExperimentSettings.micro()
    if debug_conflict_check:
        settings.config_overrides["debug_conflict_check"] = True
    matrix = run_config_matrix(settings)
    # Round-trip through JSON so tuples/sets collapse exactly as they
    # do in the stored golden.
    return json.loads(json.dumps(figure_payload(matrix)))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


class TestConflictEquivalence:
    def test_debug_knob_exercises_cross_check(self):
        config = SimConfig(num_cores=4, debug_conflict_check=True)
        machine = Machine(config, make_workload("mwobject", ops_per_thread=8), seed=1)
        machine.run()
        assert machine.conflict_cross_checks > 0

    def test_debug_knob_off_by_default(self):
        config = SimConfig(num_cores=4)
        machine = Machine(config, make_workload("mwobject", ops_per_thread=8), seed=1)
        machine.run()
        assert machine.conflict_cross_checks == 0

    def test_micro_matrix_matches_golden(self, golden):
        assert micro_payload(debug_conflict_check=False) == golden

    def test_micro_matrix_under_cross_check_matches_golden(self, golden):
        # Completing at all proves zero index/scan divergences (any
        # mismatch raises); matching the golden proves the knob itself
        # perturbs nothing observable.
        assert micro_payload(debug_conflict_check=True) == golden
