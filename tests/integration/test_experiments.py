"""Integration tests for the experiment harness (tiny scale)."""

import pytest

from repro.analysis.experiments import (
    CONFIG_LETTERS,
    ExperimentSettings,
    fig1_retry_immutability,
    fig8_execution_time,
    fig9_aborts_per_commit,
    fig10_energy,
    fig11_abort_breakdown,
    fig12_commit_modes,
    fig13_retry_bound,
    headline_summary,
    run_config_matrix,
)
from repro.core.modes import ExecMode


@pytest.fixture(scope="module")
def tiny_matrix():
    settings = ExperimentSettings(
        benchmarks=("mwobject", "arrayswap", "bitcoin"),
        num_cores=4,
        ops_per_thread=8,
        seeds=(1, 2),
        trim=0,
    )
    return run_config_matrix(settings)


class TestMatrix:
    def test_covers_all_cells(self, tiny_matrix):
        assert set(tiny_matrix) == {"mwobject", "arrayswap", "bitcoin"}
        for per_config in tiny_matrix.values():
            assert set(per_config) == set(CONFIG_LETTERS)

    def test_progress_callback_called(self):
        calls = []
        settings = ExperimentSettings(
            benchmarks=("mwobject",), num_cores=2, ops_per_thread=4, seeds=(1,)
        )
        run_config_matrix(settings, progress=lambda *args: calls.append(args))
        assert len(calls) == 4


class TestFigureProjections:
    def test_fig8_normalizes_to_baseline(self, tiny_matrix):
        times, discovery = fig8_execution_time(tiny_matrix)
        for name in tiny_matrix:
            assert times[name]["B"] == 1.0
        assert "geomean" in times
        assert all(0 <= v <= 1 for v in discovery["mwobject"].values())

    def test_fig9_has_average(self, tiny_matrix):
        rows = fig9_aborts_per_commit(tiny_matrix)
        assert "average" in rows
        assert rows["average"]["B"] >= 0

    def test_fig10_normalized_energy(self, tiny_matrix):
        rows = fig10_energy(tiny_matrix)
        for name in tiny_matrix:
            assert rows[name]["B"] == 1.0

    def test_fig11_shares_bounded(self, tiny_matrix):
        rows = fig11_abort_breakdown(tiny_matrix)
        for per_config in rows.values():
            for shares in per_config.values():
                total = sum(shares.values())
                assert total == pytest.approx(1.0, abs=1e-6) or total == 0.0

    def test_fig12_modes_sum_to_one(self, tiny_matrix):
        rows = fig12_commit_modes(tiny_matrix)
        for per_config in rows.values():
            for shares in per_config.values():
                assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_fig12_clear_configs_use_cl_modes(self, tiny_matrix):
        rows = fig12_commit_modes(tiny_matrix)
        cl_share = sum(
            rows["mwobject"]["C"].get(mode, 0.0)
            for mode in (ExecMode.NS_CL, ExecMode.S_CL)
        )
        assert cl_share > 0.0
        baseline_cl = sum(
            rows["mwobject"]["B"].get(mode, 0.0)
            for mode in (ExecMode.NS_CL, ExecMode.S_CL)
        )
        assert baseline_cl == 0.0

    def test_fig13_shares_are_triples(self, tiny_matrix):
        rows = fig13_retry_bound(tiny_matrix)
        for per_config in rows.values():
            for triple in per_config.values():
                assert len(triple) == 3
                assert all(0 <= v <= 1 for v in triple)

    def test_fig1_ratios_bounded(self, tiny_matrix):
        ratios = fig1_retry_immutability(tiny_matrix)
        assert "average" in ratios
        assert all(0.0 <= v <= 1.0 for v in ratios.values())


class TestHeadline:
    def test_headline_keys_present(self, tiny_matrix):
        summary = headline_summary(tiny_matrix)
        for key in (
            "time_reduction_C_vs_B",
            "aborts_per_commit_B",
            "first_retry_share_C",
            "fallback_share_W",
        ):
            assert key in summary

    def test_clear_improves_contended_subset(self, tiny_matrix):
        summary = headline_summary(tiny_matrix)
        # On this contended subset CLEAR must win time and aborts.
        assert summary["time_reduction_C_vs_B"] > 0
        assert summary["aborts_per_commit_C"] < summary["aborts_per_commit_B"]
        assert summary["first_retry_share_C"] > summary["first_retry_share_B"]
        assert summary["fallback_share_C"] < summary["fallback_share_B"]


class TestSettings:
    def test_paper_settings_scale(self):
        settings = ExperimentSettings.paper()
        assert settings.num_cores == 32
        assert len(settings.seeds) == 10
        assert settings.trim == 3
        assert settings.retry_sweep

    def test_config_for_letter(self):
        settings = ExperimentSettings.quick()
        assert settings.config_for("W").clear
        assert settings.config_for("W").powertm
