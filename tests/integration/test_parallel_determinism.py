"""Parallel execution must be bit-for-bit identical to serial.

Every (workload, config, seed) cell is independently seeded, so the
``jobs=N`` pool and the ``jobs=1`` serial loop must produce exactly the
same results — the acceptance bar for trusting parallel sweeps.
"""

import json

import pytest

from repro.analysis.experiments import ExperimentSettings, run_config_matrix
from repro.htm.design import design_name
from repro.sim.config import SimConfig
from repro.sim.engine import ExperimentEngine, RunSpec


def spec_grid():
    """2 workloads x B/C x 2 seeds, small enough for CI."""
    return [
        RunSpec(
            workload=name,
            config=SimConfig.for_design(design_name(letter), num_cores=2),
            seed=seed,
            ops_per_thread=4,
        )
        for name in ("mwobject", "bst")
        for letter in ("B", "C")
        for seed in (1, 2)
    ]


class TestParallelEqualsSerial:
    def test_engine_results_identical(self):
        specs = spec_grid()
        serial = ExperimentEngine(jobs=1, cache_dir=None).run_specs(specs)
        parallel = ExperimentEngine(jobs=2, cache_dir=None).run_specs(specs)
        for serial_run, parallel_run in zip(serial, parallel):
            assert serial_run.to_dict() == parallel_run.to_dict()

    def test_matrix_projection_identical(self):
        settings = ExperimentSettings(
            benchmarks=("mwobject", "bst"), num_cores=2, ops_per_thread=4,
            seeds=(1, 2), trim=0,
        )
        serial = run_config_matrix(settings, jobs=1)
        parallel = run_config_matrix(settings, jobs=2)
        for name in serial:
            for letter in serial[name]:
                one = serial[name][letter]
                other = parallel[name][letter]
                assert json.dumps(one.to_dict(), sort_keys=True) == json.dumps(
                    other.to_dict(), sort_keys=True
                )
                assert one.cycles == other.cycles
                assert one.energy == other.energy

    def test_cached_rerun_identical_to_fresh(self, tmp_path):
        specs = spec_grid()
        fresh = ExperimentEngine(jobs=1, cache_dir=None).run_specs(specs)
        ExperimentEngine(jobs=2, cache_dir=str(tmp_path)).run_specs(specs)
        events = []
        cached = ExperimentEngine(jobs=2, cache_dir=str(tmp_path),
                                  progress=events.append).run_specs(specs)
        assert all(event.from_cache for event in events)
        for fresh_run, cached_run in zip(fresh, cached):
            assert fresh_run.to_dict() == cached_run.to_dict()
