"""Typed stall detection: deadlock vs livelock vs cycle-limit.

The machine must never die with a bare RuntimeError: every
can't-make-progress outcome raises a dedicated
:class:`SimulationStallError` subclass carrying a structured diagnostic
dump (per-core mode, held locks, table state, retry counters) and the
partial stats.
"""

import pytest

from repro.common.errors import (
    CycleLimitExceeded,
    DeadlockError,
    LivelockError,
    SimulationStallError,
)
from repro.sim import executor as executor_module
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Compute, Invoke
from repro.workloads import make_workload
from tests.integration.test_machine_basic import ScriptedWorkload


def spinning_invoke():
    """An AR that computes forever: attempts never reach XEnd."""

    def build(workload):
        def body():
            while True:
                yield Compute(1)

        return Invoke(("scripted", "spin"), body)

    return build


class TestLivelock:
    def test_never_committing_run_raises_livelock(self):
        workload = ScriptedWorkload({0: [spinning_invoke()]})
        config = SimConfig.for_design("baseline", num_cores=2, watchdog_cycles=5_000, max_cycles=10_000_000
        )
        machine = Machine(config, workload, seed=1)
        with pytest.raises(LivelockError) as excinfo:
            machine.run()
        err = excinfo.value
        assert isinstance(err, SimulationStallError)
        assert err.stats.total_commits == 0
        spinner = err.diagnostic["cores"][0]
        assert spinner["phase"] == "body"
        assert spinner["mode"] == "speculative"
        assert spinner["attempt_ops"] > 0

    def test_watchdog_disabled_by_default(self):
        # The same spinner without a watchdog runs into the cycle limit
        # instead: the two stall classes stay distinguishable.
        workload = ScriptedWorkload({0: [spinning_invoke()]})
        config = SimConfig.for_design("baseline", num_cores=2, max_cycles=20_000)
        machine = Machine(config, workload, seed=1)
        with pytest.raises(CycleLimitExceeded):
            machine.run()

    def test_watchdog_tolerates_committing_runs(self):
        config = SimConfig.for_design("clear", num_cores=4, watchdog_cycles=50_000)
        machine = Machine(
            config, make_workload("hashmap", ops_per_thread=8), seed=1
        )
        stats = machine.run()
        assert stats.total_commits > 0


class TestDeadlock:
    def test_all_parked_raises_deadlock_with_diagnostics(self, monkeypatch):
        # Force every step to park: the heap drains with cores waiting
        # on a release that can never come.
        monkeypatch.setattr(
            executor_module.CoreExecutor, "step",
            lambda self, now: (executor_module.STEP_BLOCK, "test"),
        )
        config = SimConfig.for_design("baseline", num_cores=3)
        machine = Machine(
            config, make_workload("mwobject", ops_per_thread=2), seed=1
        )
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        err = excinfo.value
        assert "cores [0, 1, 2]" in str(err)
        assert len(err.diagnostic["cores"]) == 3
        for entry in err.diagnostic["cores"]:
            assert entry["parked_since"] is not None
        assert err.diagnostic["lock_table"] == {}
        assert err.stats is machine.stats

    def test_diagnostic_dump_is_json_serializable(self, monkeypatch):
        import json

        monkeypatch.setattr(
            executor_module.CoreExecutor, "step",
            lambda self, now: (executor_module.STEP_BLOCK, "test"),
        )
        config = SimConfig.for_design("clear", num_cores=2)
        machine = Machine(
            config, make_workload("hashmap", ops_per_thread=2), seed=1
        )
        with pytest.raises(DeadlockError) as excinfo:
            machine.run()
        json.dumps(excinfo.value.diagnostic)  # must not raise


class TestCycleLimit:
    def test_diagnostic_names_unfinished_cores(self):
        config = SimConfig.for_design("baseline", num_cores=4, max_cycles=500)
        machine = Machine(
            config, make_workload("labyrinth", ops_per_thread=10), seed=1
        )
        with pytest.raises(CycleLimitExceeded) as excinfo:
            machine.run()
        err = excinfo.value
        assert err.stats.truncated
        assert any(not entry["finished"] for entry in err.diagnostic["cores"])
        assert err.diagnostic["total_commits"] == err.stats.total_commits
