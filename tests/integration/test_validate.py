"""Tests for the whole-machine invariant validator."""

import pytest

from repro.common.errors import ProtocolError
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.validate import validate_machine
from repro.workloads import ALL_NAMES, make_workload


class TestCleanMachines:
    @pytest.mark.parametrize("letter", ("B", "P", "C", "W"))
    def test_post_run_machines_validate(self, letter):
        for name in ("mwobject", "bitcoin", "bst", "labyrinth"):
            workload = make_workload(name, ops_per_thread=5)
            machine = Machine(SimConfig.for_letter(letter, num_cores=4),
                              workload, seed=4)
            machine.run()
            assert validate_machine(machine)

    def test_fresh_machine_validates(self):
        machine = Machine(SimConfig.for_letter("C", num_cores=2),
                          make_workload("mwobject", ops_per_thread=1), seed=1)
        assert validate_machine(machine)


class TestViolationsDetected:
    def make(self):
        return Machine(SimConfig.for_letter("C", num_cores=2),
                       make_workload("mwobject", ops_per_thread=1), seed=1)

    def test_unpinned_lock_detected(self):
        machine = self.make()
        machine.memsys.acquire_line_lock(0, 100)
        machine.memsys.l1[0].unpin(100)  # corrupt: lock without pin
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_pin_without_lock_detected(self):
        machine = self.make()
        machine.memsys.access(0, 100, is_write=True)
        machine.memsys.l1[0].pin(100)  # corrupt: pin without lock
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_lock_without_ownership_detected(self):
        machine = self.make()
        machine.memsys.acquire_line_lock(0, 100)
        machine.memsys.directory.drop(0, 100)  # corrupt the directory
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_writer_and_reader_coexistence_detected(self):
        machine = self.make()
        machine.fallback.try_acquire_write(0)
        machine.fallback._readers.add(1)  # corrupt: reader sneaks in
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_clean_lock_state_passes(self):
        machine = self.make()
        machine.memsys.acquire_line_lock(0, 100)
        assert validate_machine(machine)
        machine.memsys.release_all_locks(0)
        assert validate_machine(machine)
