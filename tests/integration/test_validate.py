"""Tests for the whole-machine invariant validator."""

import pytest

from repro.common.errors import ProtocolError
from repro.sim.validate import validate_machine


class TestCleanMachines:
    @pytest.mark.parametrize("letter", ("B", "P", "C", "W"))
    def test_post_run_machines_validate(self, micro_machine, letter):
        for name in ("mwobject", "bitcoin", "bst", "labyrinth"):
            machine = micro_machine(name, letter, cores=4, seed=4,
                                    ops_per_thread=5)
            machine.run()
            assert validate_machine(machine)

    def test_fresh_machine_validates(self, micro_machine):
        machine = micro_machine("mwobject", "C", ops_per_thread=1)
        assert validate_machine(machine)


class TestViolationsDetected:
    @pytest.fixture
    def machine(self, micro_machine):
        return micro_machine("mwobject", "C", ops_per_thread=1)

    def test_unpinned_lock_detected(self, machine):
        machine.memsys.acquire_line_lock(0, 100)
        machine.memsys.l1[0].unpin(100)  # corrupt: lock without pin
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_pin_without_lock_detected(self, machine):
        machine.memsys.access(0, 100, is_write=True)
        machine.memsys.l1[0].pin(100)  # corrupt: pin without lock
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_lock_without_ownership_detected(self, machine):
        machine.memsys.acquire_line_lock(0, 100)
        machine.memsys.directory.drop(0, 100)  # corrupt the directory
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_writer_and_reader_coexistence_detected(self, machine):
        machine.fallback.try_acquire_write(0)
        machine.fallback._readers.add(1)  # corrupt: reader sneaks in
        with pytest.raises(ProtocolError):
            validate_machine(machine)

    def test_clean_lock_state_passes(self, machine):
        machine.memsys.acquire_line_lock(0, 100)
        assert validate_machine(machine)
        machine.memsys.release_all_locks(0)
        assert validate_machine(machine)
