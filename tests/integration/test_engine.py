"""Engine-level behaviours: truncation, waiting accounting, finish times."""

import pytest

from repro.common.errors import CycleLimitExceeded, SimulationStallError
from repro.sim.config import SimConfig
from repro.sim.machine import Machine
from repro.sim.program import Think
from repro.workloads import make_workload
from tests.integration.test_machine_basic import ScriptedWorkload, counter_invoke


class TestTruncation:
    def test_max_cycles_raises_typed_error_with_partial_stats(self):
        config = SimConfig.for_design("baseline", num_cores=4, max_cycles=500)
        workload = make_workload("labyrinth", ops_per_thread=10)
        machine = Machine(config, workload, seed=1)
        with pytest.raises(CycleLimitExceeded) as excinfo:
            machine.run()
        err = excinfo.value
        assert isinstance(err, SimulationStallError)
        assert err.stats is machine.stats
        assert err.stats.truncated
        assert err.stats.makespan_cycles >= 500
        # The diagnostic dump names every core and the global holders.
        assert len(err.diagnostic["cores"]) == 4
        assert err.diagnostic["cycle"] >= 500
        for entry in err.diagnostic["cores"]:
            assert "phase" in entry and "counting_retries" in entry

    def test_normal_run_not_truncated(self):
        config = SimConfig.for_design("baseline", num_cores=2)
        workload = make_workload("mwobject", ops_per_thread=3)
        machine = Machine(config, workload, seed=1)
        stats = machine.run()
        assert not stats.truncated


class TestFinishTimes:
    def test_makespan_covers_slowest_thread(self):
        workload = ScriptedWorkload({0: [Think(10)], 1: [Think(5000)]})
        machine = Machine(SimConfig.for_design("baseline", num_cores=2), workload, seed=1)
        stats = machine.run()
        assert stats.makespan_cycles >= 5000

    def test_empty_scripts_finish_immediately(self):
        workload = ScriptedWorkload({})
        machine = Machine(SimConfig.for_design("baseline", num_cores=2), workload, seed=1)
        stats = machine.run()
        assert stats.total_commits == 0
        assert not stats.truncated


class TestWaitAccounting:
    def test_contended_clear_run_accumulates_wait_cycles(self):
        script = [counter_invoke() for _ in range(15)]
        workload = ScriptedWorkload({0: list(script), 1: list(script)})
        machine = Machine(SimConfig.for_design("clear", num_cores=2), workload, seed=1)
        stats = machine.run()
        waited = sum(core.wait_cycles for core in stats.cores)
        assert waited >= 0  # accounting never goes negative
        busy = sum(core.busy_cycles for core in stats.cores)
        assert busy > 0

    def test_lock_acquire_cycles_tracked_under_clear(self):
        script = [counter_invoke() for _ in range(15)]
        workload = ScriptedWorkload({0: list(script), 1: list(script)})
        machine = Machine(SimConfig.for_design("clear", num_cores=2), workload, seed=1)
        stats = machine.run()
        locked = sum(core.lock_acquire_cycles for core in stats.cores)
        assert locked > 0
