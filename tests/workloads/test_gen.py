"""The seeded workload generator: specs, namespaces, and behaviour."""

import json

import pytest

from repro.common.errors import ConfigurationError, UnknownWorkloadError
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import (
    Mutability,
    canonical_workload_name,
    make_workload,
    workload_cache_token,
)
from repro.workloads.gen import (
    GenSpec,
    GeneratedWorkload,
    load_corpus,
    parse_gen_spec,
    register_spec,
    save_gen_spec,
)


class TestGenSpec:
    def test_defaults_round_trip(self):
        spec = GenSpec()
        assert spec.canonical() == ""
        assert parse_gen_spec("") == spec
        assert GenSpec.from_dict(spec.to_dict()) == spec

    def test_canonical_omits_defaults_and_round_trips(self):
        spec = GenSpec(footprint=8, mutability="mutable", contention=0.9)
        text = spec.canonical()
        assert "footprint=8" in text and "regions" not in text
        assert parse_gen_spec(text) == spec

    def test_numeric_spellings_normalize(self):
        assert GenSpec(contention=1) == GenSpec(contention=1.0)
        assert (GenSpec(contention=1).fingerprint()
                == GenSpec(contention=1.0).fingerprint())

    def test_fingerprint_stable_and_distinct(self):
        assert GenSpec().fingerprint() == GenSpec().fingerprint()
        assert GenSpec().fingerprint() != GenSpec(footprint=8).fingerprint()

    @pytest.mark.parametrize("kwargs", [
        dict(regions=0),
        dict(footprint=0),
        dict(mutability="sometimes"),
        dict(contention=1.5),
        dict(read_fraction=-0.1),
        dict(nesting=0),
        dict(hot_lines=2, footprint=4),
        dict(private_lines=2, footprint=4),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GenSpec(**kwargs)

    def test_bad_spec_strings_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            parse_gen_spec("footprint")
        with pytest.raises(UnknownWorkloadError):
            parse_gen_spec("warp=9")
        with pytest.raises(UnknownWorkloadError):
            parse_gen_spec("footprint=lots")


class TestNamespaces:
    def test_unknown_name_is_typed_and_lists_namespaces(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            make_workload("nope")
        message = str(excinfo.value)
        assert "gen:" in message and "trace:" in message
        # Back-compat: the historical registry exception was KeyError.
        assert isinstance(excinfo.value, KeyError)

    def test_gen_name_resolves(self):
        workload = make_workload("gen:footprint=2", ops_per_thread=3)
        assert isinstance(workload, GeneratedWorkload)
        assert workload.name == "gen:footprint=2"
        assert workload.ops_per_thread == 3

    def test_canonical_name_for_builtin_and_gen(self):
        assert canonical_workload_name("hashmap") == "hashmap"
        assert (canonical_workload_name("gen:footprint=8,regions=2")
                == "gen:footprint=8")
        with pytest.raises(UnknownWorkloadError):
            canonical_workload_name("gen:warp=9")
        with pytest.raises(UnknownWorkloadError):
            canonical_workload_name("nope")

    def test_cache_token_only_for_namespaced(self):
        assert workload_cache_token("hashmap") is None
        assert (workload_cache_token("gen:footprint=8")
                == GenSpec(footprint=8).fingerprint())

    def test_fingerprint_resolution(self):
        spec = GenSpec(footprint=6, mutability="immutable")
        fingerprint = register_spec(spec)
        assert parse_gen_spec(fingerprint) == spec
        assert parse_gen_spec(fingerprint[:12]) == spec
        assert canonical_workload_name(
            "gen:" + fingerprint[:12]
        ) == "gen:" + spec.canonical()

    def test_unregistered_fingerprint_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            parse_gen_spec("0" * 16)


class TestOnDiskSpecs:
    def test_save_load_round_trip(self, tmp_path):
        spec = GenSpec(footprint=8, contention=0.9)
        save_gen_spec(spec, str(tmp_path / "kernel"))
        assert parse_gen_spec(str(tmp_path / "kernel")) == spec
        loaded = make_workload(
            "gen:" + str(tmp_path / "kernel"), ops_per_thread=2
        )
        assert loaded.spec == spec

    def test_missing_folder_rejected(self, tmp_path):
        with pytest.raises(UnknownWorkloadError):
            parse_gen_spec(str(tmp_path / "absent"))

    def test_corrupt_spec_rejected(self, tmp_path):
        folder = tmp_path / "kernel"
        save_gen_spec(GenSpec(), str(folder))
        payload = json.loads((folder / "genspec.json").read_text())
        payload["spec"]["footprint"] = 7  # fingerprint now stale
        (folder / "genspec.json").write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            parse_gen_spec(str(folder))

    def test_version_gate(self, tmp_path):
        folder = tmp_path / "kernel"
        save_gen_spec(GenSpec(), str(folder))
        payload = json.loads((folder / "genspec.json").read_text())
        payload["version"] = 99
        (folder / "genspec.json").write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            parse_gen_spec(str(folder))

    def test_load_corpus_registers_fingerprints(self, tmp_path):
        specs = [GenSpec(footprint=2), GenSpec(footprint=4)]
        for index, spec in enumerate(specs):
            save_gen_spec(spec, str(tmp_path / "k{}".format(index)))
        loaded = load_corpus(str(tmp_path))
        assert set(loaded.values()) == set(specs)
        for fingerprint in loaded:
            assert parse_gen_spec(fingerprint[:12]) in specs


class TestGeneratedWorkload:
    def test_region_mutability_classes(self):
        mixed = make_workload("gen:regions=3")
        assert [spec.mutability for spec in mixed.region_specs()] == [
            Mutability.IMMUTABLE, Mutability.LIKELY_IMMUTABLE,
            Mutability.MUTABLE,
        ]
        pure = make_workload("gen:regions=2,mutability=mutable")
        assert {spec.mutability for spec in pure.region_specs()} == {
            Mutability.MUTABLE
        }

    @pytest.mark.parametrize(
        "mutability", ["immutable", "likely_immutable", "mutable"]
    )
    def test_runs_to_completion_with_online_monitor(self, mutability):
        config = SimConfig(num_cores=4, design="clear", oracle="online")
        workload = make_workload(
            "gen:regions=2,mutability={}".format(mutability),
            ops_per_thread=4,
        )
        machine = build_machine(config, workload, seed=3)
        stats = machine.run()
        assert stats.total_commits == 4 * 4

    def test_nesting_scales_footprint(self):
        config = SimConfig(num_cores=2, design="baseline")

        def stores(nesting):
            workload = make_workload(
                "gen:regions=1,mutability=immutable,read_fraction=0.0,"
                "nesting={}".format(nesting),
                ops_per_thread=2,
            )
            machine = build_machine(config, workload, seed=1)
            machine.run()
            return machine.memory.store_count

        assert stores(3) > stores(1)

    def test_zero_contention_keeps_threads_disjoint(self):
        config = SimConfig(num_cores=4, design="baseline")
        workload = make_workload(
            "gen:regions=1,mutability=immutable,contention=0.0,"
            "read_fraction=0.0",
            ops_per_thread=4,
        )
        machine = build_machine(config, workload, seed=2)
        stats = machine.run()
        assert stats.total_commits == 16
        assert stats.total_aborts == 0
