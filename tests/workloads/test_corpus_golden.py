"""Golden-pinned corpus smoke: the committed kernel + trace, every design.

``tests/workloads/corpus/`` commits one generated kernel folder and one
recorded mwobject trace. This suite replays both through
``api.simulate`` across every registered design with the online
serializability monitor armed and pins the results byte-for-byte
against ``tests/goldens/corpus_micro.json`` — so the on-disk formats,
the namespace resolution, and the designs' behaviour on corpus
workloads are all frozen together. Refresh intentionally moved results
with ``scripts/refresh_goldens.py --only corpus --apply``.
"""

import hashlib
import json
import os

import pytest

from repro import api
from repro.htm.design import DESIGN_REGISTRY
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import make_workload
from repro.workloads.gen import load_gen_spec
from repro.workloads.trace import read_manifest

TESTS_DIR = os.path.join(os.path.dirname(__file__), "..")
CORPUS_DIR = os.path.join(TESTS_DIR, "workloads", "corpus")
GOLDEN_PATH = os.path.join(TESTS_DIR, "goldens", "corpus_micro.json")

TARGETS = {
    "gen": "gen:" + os.path.join(CORPUS_DIR, "kernel"),
    "trace": "trace:" + os.path.join(CORPUS_DIR, "trace"),
}


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _digest(obj):
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def test_golden_covers_every_design_and_target():
    golden = load_golden()
    for label in TARGETS:
        assert set(golden["results"][label]) == set(DESIGN_REGISTRY)


def test_committed_folders_are_intact():
    # Loading performs the full format/digest validation for each
    # on-disk format.
    spec = load_gen_spec(os.path.join(CORPUS_DIR, "kernel"))
    assert spec.regions == 2
    manifest = read_manifest(os.path.join(CORPUS_DIR, "trace"))
    assert manifest["workload"] == "mwobject"


@pytest.mark.parametrize("label", sorted(TARGETS))
@pytest.mark.parametrize("design", sorted(DESIGN_REGISTRY))
def test_corpus_cell_matches_golden(label, design):
    golden = load_golden()
    pinned = golden["results"][label][design]
    config = SimConfig.for_design(
        design, num_cores=golden["num_cores"], oracle="online"
    )
    report = api.simulate(
        TARGETS[label], config, seeds=golden["seed"],
        ops_per_thread=golden["ops_per_thread"],
    )
    stats = report.runs[0].stats
    assert stats.total_commits == pinned["commits"]
    assert stats.makespan_cycles == pinned["cycles"]
    assert _digest(stats.to_dict()) == pinned["stats_sha256"]

    machine = build_machine(
        config,
        make_workload(TARGETS[label],
                      ops_per_thread=golden["ops_per_thread"]),
        seed=golden["seed"],
    )
    machine.run()
    memory = sorted(machine.memory.snapshot().items())
    assert _digest(memory) == pinned["memory_sha256"]
