"""Unit tests for the workload base class and registry."""

import pytest

from repro.common.rng import DeterministicRng
from repro.memory.shared import Allocator, SharedMemory
from repro.sim.program import Invoke, Think
from repro.workloads import (
    ALL_NAMES,
    DATASTRUCTURE_NAMES,
    STAMP_NAMES,
    make_workload,
)
from repro.workloads.base import Mutability


def setup_workload(name, threads=2, ops=3):
    workload = make_workload(name, ops_per_thread=ops)
    workload.setup(SharedMemory(), Allocator(), threads, DeterministicRng(1))
    return workload


class TestRegistry:
    def test_all_nineteen_present(self):
        assert len(ALL_NAMES) == 19
        assert len(DATASTRUCTURE_NAMES) == 9
        assert len(STAMP_NAMES) == 10

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_workload("nope")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_factory_name_matches(self, name):
        assert make_workload(name).name == name


class TestActionStream:
    def test_alternates_think_and_invoke(self):
        workload = setup_workload("arrayswap", ops=2)
        rng = DeterministicRng(2)
        actions = [workload.next_action(0, rng) for _ in range(4)]
        assert isinstance(actions[0], Think)
        assert isinstance(actions[1], Invoke)
        assert isinstance(actions[2], Think)
        assert isinstance(actions[3], Invoke)

    def test_quota_enforced(self):
        workload = setup_workload("arrayswap", ops=2)
        rng = DeterministicRng(2)
        for _ in range(4):
            assert workload.next_action(0, rng) is not None
        assert workload.next_action(0, rng) is None

    def test_threads_independent(self):
        workload = setup_workload("arrayswap", threads=2, ops=1)
        rng = DeterministicRng(2)
        workload.next_action(0, rng)
        workload.next_action(0, rng)
        assert workload.next_action(0, rng) is None
        assert workload.next_action(1, rng) is not None

    def test_next_action_before_setup_raises(self):
        workload = make_workload("arrayswap")
        with pytest.raises(RuntimeError):
            workload.next_action(0, DeterministicRng(1))


class TestRegionSpecs:
    # Table 1 of the paper: (#ARs, immutable, likely immutable, mutable).
    TABLE_1 = {
        "arrayswap": (2, 2, 0, 0),
        "bitcoin": (1, 0, 1, 0),
        "bst": (3, 0, 0, 3),
        "deque": (2, 0, 1, 1),
        "hashmap": (3, 0, 0, 3),
        "mwobject": (1, 1, 0, 0),
        "queue": (2, 0, 1, 1),
        "stack": (2, 0, 1, 1),
        "sorted-list": (3, 1, 0, 2),
        "bayes": (14, 0, 5, 9),
        "genome": (5, 0, 0, 5),
        "intruder": (3, 0, 2, 1),
        "kmeans-h": (3, 1, 2, 0),
        "kmeans-l": (3, 1, 2, 0),
        "labyrinth": (3, 0, 0, 3),
        "ssca2": (3, 2, 1, 0),
        "vacation-h": (3, 0, 1, 2),
        "vacation-l": (3, 0, 1, 2),
        "yada": (6, 1, 0, 5),
    }

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_declared_specs_match_table_1(self, name):
        workload = make_workload(name)
        specs = workload.region_specs()
        counts = {m: 0 for m in Mutability}
        for spec in specs:
            counts[spec.mutability] += 1
        expected = self.TABLE_1[name]
        assert (
            len(specs),
            counts[Mutability.IMMUTABLE],
            counts[Mutability.LIKELY_IMMUTABLE],
            counts[Mutability.MUTABLE],
        ) == expected

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_region_names_unique(self, name):
        specs = make_workload(name).region_specs()
        names = [spec.name for spec in specs]
        assert len(set(names)) == len(names)

    def test_spec_by_name(self):
        workload = make_workload("bitcoin")
        assert workload.spec_by_name("transfer").mutability is Mutability.LIKELY_IMMUTABLE
        with pytest.raises(KeyError):
            workload.spec_by_name("missing")


class TestInvocations:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_invocations_name_declared_regions(self, name):
        workload = setup_workload(name, threads=2, ops=50)
        declared = {spec.name for spec in workload.region_specs()}
        rng = DeterministicRng(3)
        for _ in range(40):
            invocation = workload.make_invocation(0, rng)
            assert invocation.region_id[0] == name
            assert invocation.region_id[1] in declared
