"""Behavioural tests for the data-structure benchmarks (single-threaded
semantics via the characterization probe)."""

from repro.analysis.characterize import probe_body
from repro.common.rng import DeterministicRng
from repro.memory.shared import Allocator, SharedMemory
from repro.workloads import make_workload


def setup(name, **kwargs):
    workload = make_workload(name, **kwargs)
    memory = SharedMemory()
    workload.setup(memory, Allocator(), num_threads=2, rng=DeterministicRng(1))
    return workload, memory


def run_invocations(workload, memory, count, seed=9):
    rng = DeterministicRng(seed)
    for _ in range(count):
        invocation = workload.make_invocation(0, rng)
        probe_body(invocation.body_factory, memory, commit=True)


class TestArraySwap:
    def test_swaps_preserve_multiset(self):
        workload, memory = setup("arrayswap", ops_per_thread=50)
        before = sorted(
            memory.peek(workload._slot(i)) for i in range(workload.num_elements)
        )
        run_invocations(workload, memory, 50)
        after = sorted(
            memory.peek(workload._slot(i)) for i in range(workload.num_elements)
        )
        assert before == after

    def test_bodies_are_untainted(self):
        workload, memory = setup("arrayswap")
        rng = DeterministicRng(2)
        for _ in range(10):
            invocation = workload.make_invocation(0, rng)
            result = probe_body(invocation.body_factory, memory, commit=True)
            assert not result.indirection_seen


class TestBitcoin:
    def test_balance_conserved(self):
        workload, memory = setup("bitcoin", ops_per_thread=50)
        initial = workload.total_balance(memory)
        run_invocations(workload, memory, 50)
        assert workload.total_balance(memory) == initial

    def test_transfer_is_tainted_but_stable(self):
        workload, memory = setup("bitcoin")
        invocation = workload.make_invocation(0, DeterministicRng(2))
        first = probe_body(invocation.body_factory, memory, commit=False)
        second = probe_body(invocation.body_factory, memory, commit=False)
        assert first.indirection_seen
        assert first.footprint == second.footprint  # likely immutable


class TestMwObject:
    def test_four_fields_updated(self):
        workload, memory = setup("mwobject", ops_per_thread=10)
        run_invocations(workload, memory, 10)
        assert all(value == 10 for value in workload.field_values(memory))

    def test_single_line_footprint(self):
        workload, memory = setup("mwobject")
        invocation = workload.make_invocation(0, DeterministicRng(2))
        result = probe_body(invocation.body_factory, memory)
        assert result.footprint_size == 1


class TestBst:
    def test_inserts_are_findable(self):
        workload, memory = setup("bst", ops_per_thread=100)
        run_invocations(workload, memory, 100)
        workload.inorder_keys(memory)  # raises on property violation

    def test_insert_body_adds_key(self):
        workload, memory = setup("bst", initial_keys=0, ops_per_thread=5)
        node = workload._fresh_node(0, 42)
        probe_body(workload._insert_body(42, node), memory, commit=True)
        assert 42 in workload.inorder_keys(memory)

    def test_remove_leaf(self):
        workload, memory = setup("bst", initial_keys=0, ops_per_thread=5)
        for key in (10, 5):
            node = workload._fresh_node(0, key)
            probe_body(workload._insert_body(key, node), memory, commit=True)
        probe_body(workload._remove_body(5), memory, commit=True)
        assert workload.inorder_keys(memory) == [10]

    def test_remove_two_children_successor_swap(self):
        workload, memory = setup("bst", initial_keys=0, ops_per_thread=8)
        for key in (10, 5, 15, 12, 20):
            node = workload._fresh_node(0, key)
            probe_body(workload._insert_body(key, node), memory, commit=True)
        probe_body(workload._remove_body(10), memory, commit=True)
        assert workload.inorder_keys(memory) == [5, 12, 15, 20]

    def test_remove_root_with_one_child(self):
        workload, memory = setup("bst", initial_keys=0, ops_per_thread=8)
        for key in (10, 5):
            node = workload._fresh_node(0, key)
            probe_body(workload._insert_body(key, node), memory, commit=True)
        probe_body(workload._remove_body(10), memory, commit=True)
        assert workload.inorder_keys(memory) == [5]

    def test_traversal_tainted(self):
        workload, memory = setup("bst")
        result = probe_body(workload._contains_body(1, None), memory)
        assert result.indirection_seen


class TestHashmap:
    def test_chains_stay_consistent(self):
        workload, memory = setup("hashmap", ops_per_thread=100)
        run_invocations(workload, memory, 100)
        for bucket in range(workload.num_buckets):
            workload.chain_keys(memory, bucket)

    def test_put_then_remove(self):
        workload, memory = setup("hashmap", initial_keys=0, ops_per_thread=5)
        node = workload._fresh_node(0, 7, 70)
        probe_body(workload._put_body(7, 70, node), memory, commit=True)
        assert 7 in workload.chain_keys(memory, 7 % workload.num_buckets)
        probe_body(workload._remove_body(7), memory, commit=True)
        assert 7 not in workload.chain_keys(memory, 7 % workload.num_buckets)

    def test_put_updates_existing(self):
        workload, memory = setup("hashmap", initial_keys=0, ops_per_thread=5)
        node_a = workload._fresh_node(0, 7, 70)
        probe_body(workload._put_body(7, 70, node_a), memory, commit=True)
        node_b = workload._fresh_node(0, 7, 71)
        probe_body(workload._put_body(7, 71, node_b), memory, commit=True)
        bucket = 7 % workload.num_buckets
        assert workload.chain_keys(memory, bucket).count(7) == 1


class TestRings:
    def test_queue_fifo_order_preserved(self):
        workload, memory = setup("queue", ops_per_thread=60)
        run_invocations(workload, memory, 60)
        assert workload.size(memory) >= 0

    def test_stack_depth_never_negative(self):
        workload, memory = setup("stack", ops_per_thread=60)
        run_invocations(workload, memory, 60)
        assert workload.depth(memory) >= 0

    def test_deque_size_never_negative(self):
        workload, memory = setup("deque", ops_per_thread=60)
        run_invocations(workload, memory, 60)
        assert workload.size(memory) >= 0

    def test_empty_pop_is_noop(self):
        workload, memory = setup("stack", ops_per_thread=5)
        memory.poke(workload.top_addr, 0)
        probe_body(workload._pop_body(), memory, commit=True)
        assert workload.depth(memory) == 0


class TestSortedList:
    def test_stays_sorted_under_churn(self):
        workload, memory = setup("sorted-list", ops_per_thread=80)
        run_invocations(workload, memory, 80)
        workload.values_in_order(memory)

    def test_insert_positions_value(self):
        workload, memory = setup("sorted-list", initial_length=0, ops_per_thread=5)
        for value in (5, 1, 3):
            node = workload._fresh_node(0, value)
            probe_body(workload._insert_body(value, node), memory, commit=True)
        assert workload.values_in_order(memory) == [1, 3, 5]

    def test_stats_region_untainted(self):
        workload, memory = setup("sorted-list")
        from repro.workloads.patterns import counter_increment

        result = probe_body(counter_increment(workload.stats_addr), memory)
        assert not result.indirection_seen
