"""Behavioural tests for the synthetic STAMP kernels."""

import pytest

from repro.analysis.characterize import probe_body
from repro.common.rng import DeterministicRng
from repro.memory.shared import Allocator, SharedMemory
from repro.workloads import STAMP_NAMES, make_workload
from repro.workloads.base import Mutability
from repro.workloads.stamp.synthetic import (
    StampRegionSpec,
    SyntheticStampWorkload,
)


def setup(name, **kwargs):
    workload = make_workload(name, **kwargs)
    memory = SharedMemory()
    workload.setup(memory, Allocator(), num_threads=2, rng=DeterministicRng(1))
    return workload, memory


class TestSyntheticMachinery:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            StampRegionSpec("x", "teleport")

    def test_needs_regions(self):
        with pytest.raises(ValueError):
            SyntheticStampWorkload([])

    def test_kind_mutability_mapping(self):
        assert StampRegionSpec("a", "counter").mutability is Mutability.IMMUTABLE
        assert StampRegionSpec("a", "indirect").mutability is Mutability.LIKELY_IMMUTABLE
        assert StampRegionSpec("a", "traverse").mutability is Mutability.MUTABLE

    def test_weighted_selection_respects_weights(self):
        regions = [
            StampRegionSpec("heavy", "counter", weight=100.0),
            StampRegionSpec("light", "counter", weight=0.0001),
        ]
        workload = SyntheticStampWorkload(regions, ops_per_thread=10)
        memory = SharedMemory()
        workload.setup(memory, Allocator(), 1, DeterministicRng(1))
        rng = DeterministicRng(5)
        picks = [workload.make_invocation(0, rng).region_id[1] for _ in range(50)]
        assert picks.count("heavy") >= 45


class TestBodiesExecute:
    @pytest.mark.parametrize("name", STAMP_NAMES)
    def test_every_region_body_runs(self, name):
        workload, memory = setup(name, ops_per_thread=100)
        rng = DeterministicRng(4)
        seen = set()
        for _ in range(300):
            invocation = workload.make_invocation(0, rng)
            result = probe_body(invocation.body_factory, memory, commit=True)
            assert result.footprint_size >= 1
            seen.add(invocation.region_id[1])
            if seen == {spec.name for spec in workload.region_specs()}:
                break
        assert seen == {spec.name for spec in workload.region_specs()}


class TestFootprintScales:
    def test_labyrinth_regions_exceed_alt(self):
        # Labyrinth's paths must overflow the 32-entry ALT to reproduce
        # its fallback-heavy behaviour.
        workload, memory = setup("labyrinth", ops_per_thread=10)
        rng = DeterministicRng(4)
        sizes = []
        for _ in range(20):
            invocation = workload.make_invocation(0, rng)
            result = probe_body(invocation.body_factory, memory, commit=True)
            sizes.append(result.footprint_size)
        assert max(sizes) > 32

    def test_kmeans_regions_are_tiny(self):
        workload, memory = setup("kmeans-h", ops_per_thread=10)
        rng = DeterministicRng(4)
        for _ in range(20):
            invocation = workload.make_invocation(0, rng)
            result = probe_body(invocation.body_factory, memory, commit=True)
            assert result.footprint_size <= 4

    def test_dynamic_scatter_mutates_between_commits(self):
        workload, memory = setup("yada", ops_per_thread=10)
        rng = DeterministicRng(4)
        for _ in range(50):
            invocation = workload.make_invocation(0, rng)
            if invocation.region_id[1] == "cavity_expand":
                first = probe_body(invocation.body_factory, memory, commit=True)
                second = probe_body(invocation.body_factory, memory, commit=True)
                assert first.footprint != second.footprint
                return
        pytest.fail("never drew cavity_expand")


class TestTaintClasses:
    @pytest.mark.parametrize("name", STAMP_NAMES)
    def test_immutable_regions_never_tainted(self, name):
        workload, memory = setup(name, ops_per_thread=50)
        immutable = {
            spec.name
            for spec in workload.region_specs()
            if spec.mutability is Mutability.IMMUTABLE
        }
        if not immutable:
            pytest.skip("no immutable regions in {}".format(name))
        rng = DeterministicRng(4)
        checked = 0
        for _ in range(200):
            invocation = workload.make_invocation(0, rng)
            if invocation.region_id[1] in immutable:
                result = probe_body(invocation.body_factory, memory, commit=True)
                assert not result.indirection_seen
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("name", STAMP_NAMES)
    def test_non_immutable_regions_are_tainted(self, name):
        workload, memory = setup(name, ops_per_thread=50)
        tainted_expected = {
            spec.name
            for spec in workload.region_specs()
            if spec.mutability is not Mutability.IMMUTABLE
        }
        rng = DeterministicRng(4)
        for _ in range(200):
            invocation = workload.make_invocation(0, rng)
            if invocation.region_id[1] in tainted_expected:
                result = probe_body(invocation.body_factory, memory, commit=True)
                assert result.indirection_seen
