"""Recorded-trace round-trips: record, replay, and damage detection."""

import json
import os
import shutil

import pytest

from repro.common.errors import ConfigurationError, UnknownWorkloadError
from repro.sim.config import SimConfig
from repro.sim.machine import build_machine
from repro.workloads import (
    canonical_workload_name,
    make_workload,
    workload_cache_token,
)
from repro.workloads.trace import (
    MANIFEST_FILENAME,
    TraceFormatError,
    TraceIntegrityError,
    TraceWorkload,
    read_manifest,
    record_trace,
)

CONFIG = SimConfig(num_cores=4, design="clear")


def live_run(name, config=CONFIG, seed=3, ops=5):
    machine = build_machine(
        config, make_workload(name, ops_per_thread=ops), seed=seed
    )
    stats = machine.run()
    return stats, dict(machine.memory.snapshot())


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One arrayswap recording shared by the read-only tests."""
    folder = str(tmp_path_factory.mktemp("trace") / "arrayswap")
    manifest = record_trace(
        "arrayswap", folder, config=CONFIG, seed=3, ops_per_thread=5
    )
    return folder, manifest


class TestRoundTrip:
    def test_replay_matches_live_run(self, recorded):
        folder, manifest = recorded
        live_stats, live_memory = live_run("arrayswap")
        assert manifest["total_commits"] == live_stats.total_commits

        replay = TraceWorkload(folder)
        machine = build_machine(CONFIG, replay, seed=3)
        replay_stats = machine.run()
        assert replay_stats.total_commits == live_stats.total_commits
        assert dict(machine.memory.snapshot()) == live_memory

    def test_replay_through_registry_with_monitor(self, recorded):
        folder, _ = recorded
        _, live_memory = live_run("arrayswap")
        config = CONFIG.replaced(oracle="online")
        workload = make_workload("trace:" + folder, ops_per_thread=99)
        machine = build_machine(config, workload, seed=3)
        machine.run()
        assert dict(machine.memory.snapshot()) == live_memory

    def test_runtime_pokes_round_trip(self, tmp_path):
        # hashmap pokes memory between ARs (rehash initialization);
        # the trace must capture and replay those writes.
        folder = str(tmp_path / "hashmap")
        record_trace(
            "hashmap", folder, config=CONFIG, seed=2, ops_per_thread=4
        )
        live_stats, live_memory = live_run("hashmap", seed=2, ops=4)
        machine = build_machine(CONFIG, TraceWorkload(folder), seed=2)
        stats = machine.run()
        assert stats.total_commits == live_stats.total_commits
        assert dict(machine.memory.snapshot()) == live_memory

    def test_extra_threads_finish_immediately(self, recorded):
        folder, manifest = recorded
        config = CONFIG.replaced(num_cores=6)
        machine = build_machine(config, TraceWorkload(folder), seed=3)
        stats = machine.run()
        assert stats.total_commits == manifest["total_commits"]

    def test_undercut_threads_rejected(self, recorded):
        folder, _ = recorded
        config = CONFIG.replaced(num_cores=2)
        with pytest.raises(ConfigurationError):
            build_machine(config, TraceWorkload(folder), seed=3)

    def test_ops_per_thread_is_ignored(self, recorded):
        folder, manifest = recorded
        workload = TraceWorkload(folder, ops_per_thread=1)
        machine = build_machine(CONFIG, workload, seed=3)
        stats = machine.run()
        assert stats.total_commits == manifest["total_commits"]

    def test_shadow_oracle_downgraded_for_recording(self, tmp_path):
        folder = str(tmp_path / "shadowed")
        record_trace(
            "arrayswap", folder, config=CONFIG.replaced(oracle="shadow"),
            seed=3, ops_per_thread=5,
        )
        # The downgrade is observable in the recorded config fingerprint.
        manifest = read_manifest(folder)
        assert manifest["config_fingerprint"] == CONFIG.fingerprint()


class TestNamespace:
    def test_canonical_name_is_absolute(self, recorded):
        folder, _ = recorded
        relative = os.path.relpath(folder)
        assert (canonical_workload_name("trace:" + relative)
                == "trace:" + os.path.abspath(folder))

    def test_cache_token_is_content_digest(self, recorded):
        folder, manifest = recorded
        assert (workload_cache_token("trace:" + folder)
                == manifest["content_digest"])

    def test_missing_folder_is_unknown_workload(self, tmp_path):
        with pytest.raises(UnknownWorkloadError):
            make_workload("trace:" + str(tmp_path / "absent"))


def _copy(recorded, tmp_path):
    folder, _ = recorded
    clone = str(tmp_path / "clone")
    shutil.copytree(folder, clone)
    return clone


class TestDamage:
    """Torn and corrupt folders must fail loudly, never replay wrong."""

    def test_torn_thread_file(self, recorded, tmp_path):
        # The journal suite's torn-tail trick: cut the file mid-record,
        # partway through its final line.
        clone = _copy(recorded, tmp_path)
        path = os.path.join(clone, "thread-00.jsonl")
        with open(path, "rb") as handle:
            intact = handle.read()
        boundary = intact.rindex(b"\n", 0, len(intact) - 1) + 1
        torn = intact[: boundary + (len(intact) - boundary) // 2]
        with open(path, "wb") as handle:
            handle.write(torn)
        with pytest.raises(TraceIntegrityError):
            TraceWorkload(clone)

    def test_flipped_byte_in_memory_image(self, recorded, tmp_path):
        clone = _copy(recorded, tmp_path)
        path = os.path.join(clone, "memory.json")
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(TraceIntegrityError):
            TraceWorkload(clone)

    def test_missing_thread_file(self, recorded, tmp_path):
        clone = _copy(recorded, tmp_path)
        os.unlink(os.path.join(clone, "thread-01.jsonl"))
        with pytest.raises(TraceIntegrityError):
            TraceWorkload(clone)

    def test_undercounted_actions(self, recorded, tmp_path):
        # Drop a whole record but keep the digest consistent by editing
        # the manifest too — the action count cross-check must fire.
        clone = _copy(recorded, tmp_path)
        path = os.path.join(clone, "thread-00.jsonl")
        with open(path, "rb") as handle:
            intact = handle.read()
        boundary = intact.rindex(b"\n", 0, len(intact) - 1) + 1
        with open(path, "wb") as handle:
            handle.write(intact[:boundary])
        manifest_path = os.path.join(clone, MANIFEST_FILENAME)
        manifest = json.loads(open(manifest_path).read())
        import hashlib

        manifest["threads"][0]["sha256"] = hashlib.sha256(
            intact[:boundary]
        ).hexdigest()
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(TraceIntegrityError):
            TraceWorkload(clone)

    def test_wrong_format_rejected(self, recorded, tmp_path):
        clone = _copy(recorded, tmp_path)
        manifest_path = os.path.join(clone, MANIFEST_FILENAME)
        manifest = json.loads(open(manifest_path).read())
        manifest["format"] = "not-a-trace"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(TraceFormatError):
            read_manifest(clone)

    def test_future_version_rejected(self, recorded, tmp_path):
        clone = _copy(recorded, tmp_path)
        manifest_path = os.path.join(clone, MANIFEST_FILENAME)
        manifest = json.loads(open(manifest_path).read())
        manifest["version"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(TraceFormatError):
            read_manifest(clone)

    def test_garbage_manifest_rejected(self, recorded, tmp_path):
        clone = _copy(recorded, tmp_path)
        with open(os.path.join(clone, MANIFEST_FILENAME), "w") as handle:
            handle.write("{not json")
        with pytest.raises(TraceFormatError):
            read_manifest(clone)
