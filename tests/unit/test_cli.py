"""Unit tests for the shared command-line flag layer (repro.cli)."""

import pytest

from repro import cli
from repro.sim.engine import DEFAULT_CACHE_DIR, ExperimentEngine


def make_parser(**flags):
    parser = cli.argparse.ArgumentParser()
    cli.add_engine_flags(parser, **flags)
    cli.add_trace_flags(parser)
    return parser


class TestEngineFlags:
    def test_defaults(self):
        args = make_parser().parse_args([])
        assert args.jobs is None
        assert args.cache_dir == DEFAULT_CACHE_DIR
        assert not args.no_cache
        assert args.trace is None
        assert args.trace_report is None

    def test_parse(self):
        args = make_parser().parse_args(
            ["--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache",
             "--trace", "out.json", "--trace-report", "out.txt"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache
        assert args.trace == "out.json"
        assert args.trace_report == "out.txt"

    def test_jobs_validated(self):
        parser = make_parser()
        args = parser.parse_args(["--jobs", "0"])
        with pytest.raises(SystemExit):
            cli.validate_engine_flags(parser, args)

    def test_valid_jobs_pass_through(self):
        parser = make_parser()
        args = parser.parse_args(["--jobs", "1"])
        assert cli.validate_engine_flags(parser, args) is args

    def test_resolve_jobs(self):
        parser = make_parser()
        assert cli.resolve_jobs(parser.parse_args(["--jobs", "3"])) == 3
        assert cli.resolve_jobs(parser.parse_args([])) >= 1

    def test_resolve_cache_dir(self):
        parser = make_parser()
        assert cli.resolve_cache_dir(parser.parse_args([])) == DEFAULT_CACHE_DIR
        assert cli.resolve_cache_dir(parser.parse_args(["--no-cache"])) is None
        assert cli.resolve_cache_dir(
            parser.parse_args(["--cache-dir", "/tmp/x"])
        ) == "/tmp/x"

    def test_build_engine(self, tmp_path):
        parser = make_parser()
        args = parser.parse_args(
            ["--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
        )
        engine = cli.build_engine(args)
        assert isinstance(engine, ExperimentEngine)
        assert engine.jobs == 2
        args = parser.parse_args(["--jobs", "1", "--no-cache"])
        engine = cli.build_engine(args)
        assert engine.jobs == 1


class TestScaleFlag:
    def test_default_and_choices(self):
        parser = cli.argparse.ArgumentParser()
        cli.add_scale_flag(parser, ("micro", "full"), default="full")
        assert parser.parse_args([]).scale == "full"
        assert parser.parse_args(["--scale", "micro"]).scale == "micro"
        with pytest.raises(SystemExit):
            parser.parse_args(["--scale", "galactic"])


class TestOracleFlag:
    def make(self, **kwargs):
        parser = cli.argparse.ArgumentParser()
        cli.add_oracle_flag(parser, **kwargs)
        return parser

    def test_default_leaves_config_alone(self):
        assert self.make().parse_args([]).oracle is None

    def test_bare_flag_means_shadow(self):
        assert self.make().parse_args(["--oracle"]).oracle == "shadow"

    def test_mode_names_accepted(self):
        parser = self.make()
        for mode in ("off", "shadow", "online", "cross-check"):
            assert parser.parse_args(["--oracle", mode]).oracle == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            self.make().parse_args(["--oracle", "sometimes"])

    def test_custom_default(self):
        assert self.make(default="online").parse_args([]).oracle == "online"


class TestWantsTrace:
    def test_wants_trace(self):
        parser = make_parser()
        assert not cli.wants_trace(parser.parse_args([]))
        assert cli.wants_trace(parser.parse_args(["--trace", "t.json"]))
        assert cli.wants_trace(parser.parse_args(["--trace-report", "t.txt"]))


class TestJournalFlags:
    def make_parser(self):
        parser = cli.argparse.ArgumentParser()
        cli.add_journal_flags(parser)
        return parser

    def test_defaults_off(self):
        parser = self.make_parser()
        args = cli.validate_journal_flags(parser, parser.parse_args([]))
        assert args.journal is None
        assert cli.resolve_journal(args) is None

    def test_journal_dir_resolves(self, tmp_path):
        parser = self.make_parser()
        args = parser.parse_args(["--journal", str(tmp_path / "job")])
        cli.validate_journal_flags(parser, args)
        journal = cli.resolve_journal(args)
        assert journal is not None
        assert journal.path == str(tmp_path / "job")

    def test_resume_requires_existing_manifest(self, tmp_path):
        parser = self.make_parser()
        args = parser.parse_args(["--resume", str(tmp_path / "nope")])
        with pytest.raises(SystemExit):
            cli.validate_journal_flags(parser, args)

    def test_resume_folds_into_journal(self, tmp_path):
        from repro.sim.engine import SCHEMA_VERSION
        from repro.sim.journal import SweepJournal

        job = str(tmp_path / "job")
        SweepJournal(job).ensure([], SCHEMA_VERSION)
        parser = self.make_parser()
        args = parser.parse_args(["--resume", job])
        cli.validate_journal_flags(parser, args)
        assert args.journal == job

    def test_conflicting_journal_and_resume_error(self, tmp_path):
        parser = self.make_parser()
        args = parser.parse_args(
            ["--journal", str(tmp_path / "a"), "--resume", str(tmp_path / "b")]
        )
        with pytest.raises(SystemExit):
            cli.validate_journal_flags(parser, args)
