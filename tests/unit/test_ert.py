"""Unit tests for the Explored Region Table."""

from repro.core.ert import SQ_FULL_COUNTER_MAX, ErtEntry, ExploredRegionTable


class TestEntryDefaults:
    def test_defaults_per_paper(self):
        # §5: "its entry is initialized with Is Convertible to one,
        # Is Immutable to one, and the SQ-Full Counter to zero".
        entry = ErtEntry("r")
        assert entry.is_convertible
        assert entry.is_immutable
        assert entry.sq_full_counter == 0
        assert entry.discovery_allowed


class TestSqFullCounter:
    def test_saturating_increment(self):
        entry = ErtEntry("r")
        for _ in range(10):
            entry.note_sq_overflow()
        assert entry.sq_full_counter == SQ_FULL_COUNTER_MAX

    def test_saturation_disables_discovery(self):
        entry = ErtEntry("r")
        for _ in range(SQ_FULL_COUNTER_MAX):
            entry.note_sq_overflow()
        assert not entry.discovery_allowed

    def test_commit_decrements(self):
        entry = ErtEntry("r")
        entry.note_sq_overflow()
        entry.note_sq_overflow()
        entry.note_commit()
        assert entry.sq_full_counter == 1

    def test_commit_floors_at_zero(self):
        entry = ErtEntry("r")
        entry.note_commit()
        assert entry.sq_full_counter == 0

    def test_commits_reenable_discovery(self):
        entry = ErtEntry("r")
        for _ in range(SQ_FULL_COUNTER_MAX):
            entry.note_sq_overflow()
        entry.note_commit()
        assert entry.discovery_allowed


class TestConvertibleBit:
    def test_non_convertible_disables_discovery(self):
        entry = ErtEntry("r")
        entry.is_convertible = False
        assert not entry.discovery_allowed


class TestTable:
    def test_lookup_missing_returns_none(self):
        assert ExploredRegionTable(4).lookup("x") is None

    def test_ensure_allocates_once(self):
        table = ExploredRegionTable(4)
        first = table.ensure("x")
        second = table.ensure("x")
        assert first is second
        assert len(table) == 1

    def test_lru_eviction(self):
        table = ExploredRegionTable(2)
        table.ensure("a")
        table.ensure("b")
        table.lookup("a")  # refresh a; b becomes LRU
        table.ensure("c")
        assert "b" not in table
        assert "a" in table
        assert table.evictions == 1

    def test_evicted_region_reset_to_defaults(self):
        table = ExploredRegionTable(1)
        entry = table.ensure("a")
        entry.is_convertible = False
        table.ensure("b")  # evicts a
        fresh = table.ensure("a")  # evicts b, reallocates a
        assert fresh.is_convertible  # state was lost with the entry

    def test_capacity_respected(self):
        table = ExploredRegionTable(3)
        for name in "abcdef":
            table.ensure(name)
        assert len(table) == 3
