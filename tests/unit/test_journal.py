"""Unit tests for the crash-safe sweep journal (repro.sim.journal)."""

import json
import os

import pytest

from repro.common.errors import JournalError, JournalSchemaError
from repro.sim.config import SimConfig
from repro.sim.engine import SCHEMA_VERSION, RunSpec
from repro.sim.journal import (
    JOURNAL_VERSION,
    MANIFEST_NAME,
    SweepJournal,
    spec_summary,
)


def tiny_spec(**overrides):
    fields = dict(
        workload="mwobject",
        config=SimConfig.for_design("baseline", num_cores=2),
        seed=1,
        ops_per_thread=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


def make_specs(n=3):
    return [tiny_spec(seed=seed) for seed in range(1, n + 1)]


class TestManifest:
    def test_ensure_creates_folder_and_manifest(self, tmp_path):
        specs = make_specs()
        journal = SweepJournal(tmp_path / "job")
        assert not journal.exists()
        journal.ensure(specs, SCHEMA_VERSION)
        assert journal.exists()
        with open(os.path.join(journal.path, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["journal_version"] == JOURNAL_VERSION
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert set(manifest["cells"]) == {s.cache_key() for s in specs}

    def test_spec_summary_is_human_readable(self):
        spec = tiny_spec()
        summary = spec_summary(spec)
        assert summary["workload"] == "mwobject"
        assert summary["seed"] == 1
        assert summary["config"] == spec.config.fingerprint()

    def test_reensure_same_specs_is_idempotent(self, tmp_path):
        specs = make_specs()
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(specs, SCHEMA_VERSION)
        before = open(journal.manifest_path, "rb").read()
        SweepJournal(journal.path).ensure(specs, SCHEMA_VERSION)
        assert open(journal.manifest_path, "rb").read() == before

    def test_ensure_merges_new_cells(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(2), SCHEMA_VERSION)
        extra = tiny_spec(seed=9)
        SweepJournal(journal.path).ensure([extra], SCHEMA_VERSION)
        with open(journal.manifest_path) as handle:
            cells = json.load(handle)["cells"]
        assert extra.cache_key() in cells
        assert len(cells) == 3

    def test_journal_version_mismatch_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(1), SCHEMA_VERSION)
        with open(journal.manifest_path) as handle:
            manifest = json.load(handle)
        manifest["journal_version"] = JOURNAL_VERSION + 1
        with open(journal.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(JournalSchemaError):
            SweepJournal(journal.path).ensure(make_specs(1), SCHEMA_VERSION)

    def test_schema_version_mismatch_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(1), SCHEMA_VERSION)
        with pytest.raises(JournalSchemaError):
            SweepJournal(journal.path).ensure(
                make_specs(1), SCHEMA_VERSION + 1
            )

    def test_corrupt_manifest_raises_journal_error(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(1), SCHEMA_VERSION)
        with open(journal.manifest_path, "wb") as handle:
            handle.write(b"\x00not json")
        with pytest.raises(JournalError):
            SweepJournal(journal.path).ensure(make_specs(1), SCHEMA_VERSION)

    def test_non_object_manifest_raises(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(1), SCHEMA_VERSION)
        with open(journal.manifest_path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(JournalError):
            SweepJournal(journal.path).ensure(make_specs(1), SCHEMA_VERSION)


class TestRecordReplay:
    def test_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(2), SCHEMA_VERSION)
        journal.record_result("k1", {"cycles": 10})
        journal.record_failure("k2", {"error": "boom"})
        fresh = SweepJournal(journal.path)
        records = fresh.replay()
        assert records["k1"]["status"] == "done"
        assert records["k1"]["result"] == {"cycles": 10}
        assert records["k2"]["status"] == "failed"
        assert records["k2"]["failure"] == {"error": "boom"}
        assert fresh.replayed_results == 1
        assert fresh.replayed_failures == 1

    def test_replay_empty_log(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure(make_specs(1), SCHEMA_VERSION)
        assert SweepJournal(journal.path).replay() == {}

    def test_last_record_per_key_wins(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.record_result("k", {"v": 1})
        journal.record_failure("k", {"error": "boom"})
        journal.record_result("k", {"v": 2})
        records = SweepJournal(journal.path).replay()
        assert records["k"]["status"] == "done"
        assert records["k"]["result"] == {"v": 2}

    def test_records_visible_through_live_instance(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        assert journal.replay() == {}
        journal.record_result("k", {"v": 1})
        assert journal.replay()["k"]["result"] == {"v": 1}
        assert journal.recorded == 1

    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.record_result("k1", {"v": 1})
        journal.record_result("k2", {"v": 2})
        with open(journal.log_path, "rb") as handle:
            intact = handle.read()
        boundary = intact.rindex(b"\n", 0, len(intact) - 1) + 1
        # Tear the final record mid-way: strict prefix, no newline.
        torn = intact[: boundary + (len(intact) - boundary) // 2]
        with open(journal.log_path, "wb") as handle:
            handle.write(torn)
        fresh = SweepJournal(journal.path)
        records = fresh.replay()
        assert set(records) == {"k1"}
        assert fresh.dropped_tail == 1
        # The repair truncated the torn bytes: appends start clean.
        assert open(journal.log_path, "rb").read() == intact[:boundary]
        fresh.record_result("k3", {"v": 3})
        again = SweepJournal(journal.path).replay()
        assert set(again) == {"k1", "k3"}

    def test_tail_missing_only_newline_is_kept(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.record_result("k1", {"v": 1})
        journal.record_result("k2", {"v": 2})
        with open(journal.log_path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.truncate()  # lose just the final newline
        fresh = SweepJournal(journal.path)
        records = fresh.replay()
        assert set(records) == {"k1", "k2"}
        assert fresh.dropped_tail == 0
        # The record was re-sealed with a newline.
        assert open(journal.log_path, "rb").read().endswith(b"}\n")

    def test_interior_corruption_skipped(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.record_result("k1", {"v": 1})
        with open(journal.log_path, "ab") as handle:
            handle.write(b"\x00garbage not json\n")
        journal.record_result("k2", {"v": 2})
        fresh = SweepJournal(journal.path)
        records = fresh.replay()
        assert set(records) == {"k1", "k2"}
        assert fresh.skipped_corrupt == 1

    @pytest.mark.parametrize(
        "line",
        [
            b'{"no": "key"}',
            b'{"key": 5, "status": "done", "result": {}}',
            b'{"key": "k", "status": "done"}',
            b'{"key": "k", "status": "failed"}',
            b'{"key": "k", "status": "unknown", "result": {}}',
            b'["not", "a", "dict"]',
        ],
    )
    def test_malformed_records_rejected(self, tmp_path, line):
        journal = SweepJournal(tmp_path / "job")
        os.makedirs(journal.path)
        with open(journal.log_path, "xb") as handle:
            handle.write(line + b"\n")
        fresh = SweepJournal(journal.path)
        assert fresh.replay() == {}
        assert fresh.skipped_corrupt == 1

    def test_counters_dict(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.record_result("k", {"v": 1})
        counters = journal.counters()
        assert counters == {
            "replayed_results": 0,
            "replayed_failures": 0,
            "recorded": 1,
            "dropped_tail": 0,
            "skipped_corrupt": 0,
        }


class TestBackendGuard:
    """A resumed sweep must run the event loop it started with."""

    def batch_spec(self, **overrides):
        return tiny_spec(
            config=SimConfig.for_design(
                "baseline", num_cores=2, backend="batch"
            ),
            **overrides,
        )

    def test_spec_summary_journals_backend(self):
        assert spec_summary(tiny_spec())["backend"] == "reference"
        assert spec_summary(self.batch_spec())["backend"] == "batch"

    def test_resume_with_other_backend_refused(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure([tiny_spec()], SCHEMA_VERSION)
        with pytest.raises(JournalSchemaError, match="mix event loops"):
            SweepJournal(journal.path).ensure(
                [self.batch_spec()], SCHEMA_VERSION
            )

    def test_resume_with_same_backend_accepted(self, tmp_path):
        journal = SweepJournal(tmp_path / "job")
        journal.ensure([self.batch_spec()], SCHEMA_VERSION)
        resumed = SweepJournal(journal.path)
        resumed.ensure([self.batch_spec(), self.batch_spec(seed=2)],
                       SCHEMA_VERSION)
        assert len(resumed.manifest["cells"]) == 2

    def test_legacy_manifest_means_reference(self, tmp_path):
        # Manifests written before the backend field journalled
        # reference-loop cells only: resuming them with the reference
        # backend works, with the batch backend refuses.
        journal = SweepJournal(tmp_path / "job")
        journal.ensure([tiny_spec()], SCHEMA_VERSION)
        manifest = json.loads(open(journal.manifest_path).read())
        for cell in manifest["cells"].values():
            del cell["backend"]
        with open(journal.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        SweepJournal(journal.path).ensure([tiny_spec(seed=2)], SCHEMA_VERSION)
        with pytest.raises(JournalSchemaError, match="mix event loops"):
            SweepJournal(journal.path).ensure(
                [self.batch_spec(seed=3)], SCHEMA_VERSION
            )
