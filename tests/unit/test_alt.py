"""Unit tests for the Addresses-to-Lock Table."""

import pytest

from repro.core.alt import AddressToLockTable, AltOverflow


def dir_set(line, sets=4):
    return line % sets


def record(alt, line, written=False, sets=4):
    return alt.record_access(line, dir_set(line, sets), written)


class TestRecording:
    def test_tracks_lines(self):
        alt = AddressToLockTable(8)
        record(alt, 5)
        assert 5 in alt
        assert len(alt) == 1

    def test_written_sets_needs_locking(self):
        alt = AddressToLockTable(8)
        record(alt, 5, written=True)
        assert alt.entry(5).needs_locking

    def test_read_does_not_set_needs_locking(self):
        alt = AddressToLockTable(8)
        record(alt, 5, written=False)
        assert not alt.entry(5).needs_locking

    def test_rewrite_upgrades_read_entry(self):
        alt = AddressToLockTable(8)
        record(alt, 5, written=False)
        record(alt, 5, written=True)
        assert alt.entry(5).needs_locking
        assert len(alt) == 1

    def test_write_then_read_stays_locking(self):
        alt = AddressToLockTable(8)
        record(alt, 5, written=True)
        record(alt, 5, written=False)
        assert alt.entry(5).needs_locking

    def test_overflow_raises(self):
        alt = AddressToLockTable(2)
        record(alt, 0)
        record(alt, 1)
        with pytest.raises(AltOverflow):
            record(alt, 2)

    def test_mark_needs_locking(self):
        alt = AddressToLockTable(8)
        record(alt, 5)
        alt.mark_needs_locking(5)
        assert alt.entry(5).needs_locking

    def test_mark_untracked_raises(self):
        with pytest.raises(KeyError):
            AddressToLockTable(8).mark_needs_locking(5)


class TestLexicographicalOrder:
    def test_entries_sorted_by_set_then_line(self):
        alt = AddressToLockTable(8)
        for line in (6, 1, 4, 3):  # sets (mod 4): 2, 1, 0, 3
            record(alt, line)
        assert alt.all_lines() == [4, 1, 6, 3]
        alt.verify_sorted()

    def test_same_set_ordered_by_line(self):
        alt = AddressToLockTable(8)
        record(alt, 9)   # set 1
        record(alt, 1)   # set 1
        record(alt, 5)   # set 1
        assert alt.all_lines() == [1, 5, 9]

    def test_conflict_bits_delimit_groups(self):
        alt = AddressToLockTable(8)
        for line in (1, 5, 2):  # sets 1, 1, 2
            record(alt, line)
        alt.finalize_groups()
        entries = alt.entries()
        # Group {1, 5}: first carries the Conflict bit, last does not.
        assert entries[0].conflict
        assert not entries[1].conflict
        assert not entries[2].conflict


class TestLockingPlan:
    def test_plan_lock_all_includes_everything(self):
        alt = AddressToLockTable(8)
        record(alt, 1, written=False)
        record(alt, 2, written=True)
        plan = alt.locking_plan(lock_all=True)
        planned = [entry.line for group in plan for entry in group]
        assert planned == [1, 2]

    def test_plan_selective_skips_reads(self):
        alt = AddressToLockTable(8)
        record(alt, 1, written=False)
        record(alt, 2, written=True)
        plan = alt.locking_plan(lock_all=False)
        planned = [entry.line for group in plan for entry in group]
        assert planned == [2]

    def test_groups_share_directory_set(self):
        alt = AddressToLockTable(8)
        for line in (1, 5, 2, 6):  # sets 1, 1, 2, 2
            record(alt, line, written=True)
        plan = alt.locking_plan(lock_all=True)
        assert [len(group) for group in plan] == [2, 2]
        for group in plan:
            assert len({entry.dir_set for entry in group}) == 1

    def test_empty_plan(self):
        alt = AddressToLockTable(8)
        record(alt, 1, written=False)
        assert alt.locking_plan(lock_all=False) == []

    def test_plan_is_ordered(self):
        alt = AddressToLockTable(16)
        for line in (13, 2, 7, 11, 4):
            record(alt, line, written=True, sets=4)
        plan = alt.locking_plan(lock_all=True)
        keys = [
            (entry.dir_set, entry.line) for group in plan for entry in group
        ]
        assert keys == sorted(keys)
