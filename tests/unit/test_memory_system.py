"""Unit tests for the assembled MemorySystem."""

import pytest

from repro.common.errors import ProtocolError
from repro.memory.locking import LockDenied
from repro.memory.system import MemorySystem


def small_memsys(cores=2):
    """Small but realistic hierarchy for tests."""
    return MemorySystem(
        num_cores=cores,
        l1_size=4 * 64 * 2,  # 4 sets x 2 ways
        l1_assoc=2,
        l2_size=16 * 64 * 4,
        l2_assoc=4,
        l3_size=64 * 64 * 8,
        l3_assoc=8,
        directory_sets=16,
    )


class TestLatencyClasses:
    def test_cold_read_misses_to_memory(self):
        memsys = small_memsys()
        result = memsys.access(0, 100, is_write=False)
        assert result.level == "MEM"
        assert result.latency == memsys.mem_latency

    def test_second_read_hits_l1(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=False)
        result = memsys.access(0, 100, is_write=False)
        assert result.level == "L1"
        assert result.latency == memsys.l1_latency

    def test_remote_read_after_miss_hits_l3(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=False)
        result = memsys.access(1, 100, is_write=False)
        assert result.level == "L3"
        assert result.latency == memsys.l3_latency

    def test_read_of_remote_modified_is_cache_to_cache(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=True)
        result = memsys.access(1, 100, is_write=False)
        assert result.level == "C2C"
        assert result.source_core == 0

    def test_write_hit_after_write(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=True)
        result = memsys.access(0, 100, is_write=True)
        assert result.level == "L1"

    def test_upgrade_when_shared_elsewhere(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=False)
        memsys.access(1, 100, is_write=False)
        result = memsys.access(0, 100, is_write=True)
        assert result.level == "UPG"
        assert 1 in result.invalidated_cores


class TestInvalidation:
    def test_write_invalidates_remote_copies(self):
        memsys = small_memsys()
        memsys.access(1, 100, is_write=False)
        memsys.access(0, 100, is_write=True)
        assert not memsys.l1[1].contains(100)
        assert not memsys.l2[1].contains(100)

    def test_write_steals_remote_modified(self):
        memsys = small_memsys()
        memsys.access(0, 100, is_write=True)
        result = memsys.access(1, 100, is_write=True)
        assert result.level == "C2C"
        assert memsys.directory.is_owner(1, 100)
        assert not memsys.l1[0].contains(100)


class TestLocking:
    def test_acquire_pins_and_locks(self):
        memsys = small_memsys()
        latency = memsys.acquire_line_lock(0, 100)
        assert latency > 0
        assert memsys.locks.holder(100) == 0
        assert memsys.l1[0].is_pinned(100)

    def test_acquire_contended_lock_denied(self):
        memsys = small_memsys()
        memsys.acquire_line_lock(0, 100)
        with pytest.raises(LockDenied):
            memsys.acquire_line_lock(1, 100)

    def test_reacquire_own_lock_ok(self):
        memsys = small_memsys()
        memsys.acquire_line_lock(0, 100)
        memsys.acquire_line_lock(0, 100)
        assert memsys.locks.holder(100) == 0

    def test_release_all_unpins(self):
        memsys = small_memsys()
        memsys.acquire_line_lock(0, 100)
        memsys.acquire_line_lock(0, 104)
        released = memsys.release_all_locks(0)
        assert released == {100, 104}
        assert not memsys.l1[0].is_pinned(100)
        assert memsys.locks.locked_line_count() == 0

    def test_write_invalidating_locked_line_is_protocol_error(self):
        memsys = small_memsys()
        memsys.acquire_line_lock(0, 100)
        # Callers must gate on the lock table; bypassing it trips the
        # protocol invariant rather than silently invalidating a lock.
        with pytest.raises(ProtocolError):
            memsys.access(1, 100, is_write=True)

    def test_lock_set_overflow_raises(self):
        memsys = small_memsys()
        # L1 has 4 sets x 2 ways: three same-set lines cannot all pin.
        memsys.acquire_line_lock(0, 0)
        memsys.acquire_line_lock(0, 4)
        with pytest.raises(OverflowError):
            memsys.acquire_line_lock(0, 8)

    def test_probe_exclusive_hit(self):
        memsys = small_memsys()
        assert not memsys.probe_exclusive_hit(0, 100)
        memsys.access(0, 100, is_write=True)
        assert memsys.probe_exclusive_hit(0, 100)
        memsys.access(1, 100, is_write=False)
        assert not memsys.probe_exclusive_hit(0, 100)


class TestEvictions:
    def test_l1_capacity_eviction_keeps_l2_copy(self):
        memsys = small_memsys()
        # Fill L1 set 0 (lines 0, 4 with 4 sets x 2 ways) then add 8.
        for line in (0, 4, 8):
            memsys.access(0, line, is_write=False)
        assert memsys.l2[0].contains(0) or memsys.l2[0].contains(4)
        # Victim evicted from L1 but still held (via L2) in the directory.
        resident = [line for line in (0, 4) if memsys.l1[0].contains(line)]
        evicted = [line for line in (0, 4) if not memsys.l1[0].contains(line)]
        assert len(resident) == 1 and len(evicted) == 1
        assert 0 in memsys.directory.holders(evicted[0])
