"""Unit tests for requester-wins conflict arbitration."""

from repro.htm.abort import AbortReason
from repro.htm.arbiter import ConflictArbiter, TxPeerView
from repro.htm.rwset import ReadWriteSets


def peer(core, reads=(), writes=(), is_power=False, is_failed=False, active=True):
    sets = ReadWriteSets(l1_sets=None, l2_sets=None)
    for line in reads:
        sets.record_read(line)
    for line in writes:
        sets.record_write(line)
    return TxPeerView(core, sets, is_power=is_power,
                      conflict_detection_active=active, is_failed=is_failed)


class TestRequesterWins:
    def test_no_peers_no_conflict(self):
        resolution = ConflictArbiter().resolve(0, 5, True, False, [])
        assert resolution.requester_proceeds
        assert list(resolution.victims) == []

    def test_write_aborts_reader(self):
        resolution = ConflictArbiter().resolve(0, 5, True, False, [peer(1, reads=[5])])
        assert resolution.victims == [1]
        assert resolution.requester_proceeds

    def test_write_aborts_writer(self):
        resolution = ConflictArbiter().resolve(0, 5, True, False, [peer(1, writes=[5])])
        assert resolution.victims == [1]

    def test_read_does_not_abort_reader(self):
        resolution = ConflictArbiter().resolve(0, 5, False, False, [peer(1, reads=[5])])
        assert list(resolution.victims) == []

    def test_read_aborts_writer(self):
        resolution = ConflictArbiter().resolve(0, 5, False, False, [peer(1, writes=[5])])
        assert resolution.victims == [1]

    def test_multiple_victims(self):
        peers = [peer(1, reads=[5]), peer(2, writes=[5]), peer(3, reads=[6])]
        resolution = ConflictArbiter().resolve(0, 5, True, False, peers)
        assert sorted(resolution.victims) == [1, 2]

    def test_requester_own_view_ignored(self):
        resolution = ConflictArbiter().resolve(0, 5, True, False, [peer(0, writes=[5])])
        assert list(resolution.victims) == []


class TestFailedModeRequests:
    def test_failed_requester_harms_nobody(self):
        # Paper §4.1: failed-mode requests are flagged as non-aborting.
        resolution = ConflictArbiter().resolve(
            0, 5, False, True, [peer(1, writes=[5])]
        )
        assert list(resolution.victims) == []
        assert resolution.requester_proceeds

    def test_failed_peer_is_skipped(self):
        resolution = ConflictArbiter().resolve(
            0, 5, True, False, [peer(1, reads=[5], is_failed=True)]
        )
        assert list(resolution.victims) == []


class TestPowerMode:
    def test_power_peer_nacks_requester(self):
        resolution = ConflictArbiter().resolve(
            0, 5, True, False, [peer(1, reads=[5], is_power=True)]
        )
        assert resolution.requester_abort_reason is AbortReason.NACKED
        assert resolution.nacking_core == 1
        assert list(resolution.victims) == []

    def test_power_nack_shields_other_victims(self):
        peers = [peer(1, reads=[5], is_power=True), peer(2, reads=[5])]
        resolution = ConflictArbiter().resolve(0, 5, True, False, peers)
        assert list(resolution.victims) == []

    def test_power_peer_without_conflict_irrelevant(self):
        resolution = ConflictArbiter().resolve(
            0, 5, True, False, [peer(1, reads=[6], is_power=True)]
        )
        assert resolution.requester_proceeds

    def test_unstoppable_requester_beats_power(self):
        # NS-CL lock acquisition cannot be nacked (completion guarantee).
        resolution = ConflictArbiter().resolve(
            0, 5, True, False, [peer(1, reads=[5], is_power=True)],
            requester_unstoppable=True,
        )
        assert resolution.requester_proceeds
        assert resolution.victims == [1]


class TestInactivePeers:
    def test_inactive_peer_ignored(self):
        resolution = ConflictArbiter().resolve(
            0, 5, True, False, [peer(1, reads=[5], active=False)]
        )
        assert list(resolution.victims) == []
