"""Unit tests for SimConfig (Table 2 defaults and design selection)."""

import warnings

import pytest

from repro.common.errors import ConfigurationError
from repro.htm.design import DESIGN_REGISTRY, LEGACY_LETTER_DESIGNS
from repro.sim.config import (
    HtmPolicy,
    ORACLE_MODES,
    SimConfig,
    resolve_oracle_mode,
)


class TestTable2Defaults:
    def test_core_count(self):
        assert SimConfig().num_cores == 32

    def test_cache_sizes(self):
        config = SimConfig()
        assert config.l1_size == 48 * 1024 and config.l1_assoc == 12
        assert config.l2_size == 512 * 1024 and config.l2_assoc == 8
        assert config.l3_size == 4 * 1024 * 1024 and config.l3_assoc == 16

    def test_latencies(self):
        config = SimConfig()
        assert (config.l1_latency, config.l2_latency) == (1, 10)
        assert (config.l3_latency, config.mem_latency) == (45, 80)

    def test_speculative_window(self):
        config = SimConfig()
        assert config.rob_entries == 352
        assert config.lq_entries == 128
        assert config.sq_entries == 72

    def test_clear_table_sizes(self):
        config = SimConfig()
        assert config.ert_entries == 16
        assert config.alt_entries == 32
        assert config.crt_entries == 64
        assert config.crt_assoc == 8


class TestDesignSelection:
    @pytest.mark.parametrize(
        "design, letter, powertm, clear",
        [
            ("baseline", "B", False, False),
            ("powertm", "P", True, False),
            ("clear", "C", False, True),
            ("clear+powertm", "W", True, True),
        ],
    )
    def test_design_round_trip(self, design, letter, powertm, clear):
        config = SimConfig.for_design(design)
        assert config.design == design
        assert config.powertm == powertm
        assert config.clear == clear
        assert config.config_letter == letter

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig(design="nonesuch")
        with pytest.raises(ConfigurationError):
            SimConfig.for_design("nonesuch")

    def test_new_designs_registered(self):
        assert "lrw" in DESIGN_REGISTRY
        assert "bigatomics" in DESIGN_REGISTRY
        assert SimConfig.for_design("lrw").design == "lrw"

    def test_new_design_letter_falls_back_to_name(self):
        assert SimConfig.for_design("lrw").config_letter == "lrw"
        assert SimConfig.for_design("bigatomics").config_letter == "bigatomics"

    def test_htm_policy(self):
        assert SimConfig.for_design("powertm").htm_policy is HtmPolicy.POWER_TM
        assert SimConfig().htm_policy is HtmPolicy.REQUESTER_WINS

    def test_design_knob_validation(self):
        for knob in ("lrw_read_lines", "lrw_write_lines",
                     "bigatomics_lines", "bigatomics_commit_cycles"):
            with pytest.raises(ConfigurationError):
                SimConfig(**{knob: 0})


class TestLegacyLetterShim:
    @pytest.mark.parametrize("letter", sorted(LEGACY_LETTER_DESIGNS))
    def test_for_letter_warns_and_maps(self, letter):
        with pytest.deprecated_call():
            config = SimConfig.for_letter(letter)
        assert config.design == LEGACY_LETTER_DESIGNS[letter]
        assert config.config_letter == letter
        assert config == SimConfig.for_design(LEGACY_LETTER_DESIGNS[letter])

    def test_unknown_letter_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig.for_letter("X")


class TestLegacyBooleanShim:
    @pytest.mark.parametrize(
        "flags, design",
        [
            (dict(powertm=False, clear=False), "baseline"),
            (dict(powertm=True), "powertm"),
            (dict(clear=True), "clear"),
            (dict(powertm=True, clear=True), "clear+powertm"),
        ],
    )
    def test_constructor_flags_warn_and_normalize(self, flags, design):
        with pytest.deprecated_call():
            config = SimConfig(num_cores=4, **flags)
        assert config.design == design
        assert config == SimConfig.for_design(design, num_cores=4)
        assert config.fingerprint() == SimConfig.for_design(
            design, num_cores=4
        ).fingerprint()

    def test_conflicting_design_and_flags_rejected(self):
        with pytest.raises(ConfigurationError), pytest.deprecated_call():
            SimConfig(design="baseline", clear=True)

    def test_consistent_design_and_flags_accepted(self):
        with pytest.deprecated_call():
            config = SimConfig(design="clear", clear=True)
        assert config.design == "clear"

    def test_reading_properties_does_not_warn(self):
        config = SimConfig.for_design("clear+powertm")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.powertm and config.clear


class TestOracleModes:
    def test_modes_accepted(self):
        for mode in ORACLE_MODES:
            config = SimConfig(oracle=mode)
            assert config.oracle == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            SimConfig(oracle="sometimes")

    def test_mode_properties(self):
        expectations = {
            "off": (False, False, False),
            "shadow": (True, True, False),
            "online": (True, False, True),
            "cross-check": (True, True, True),
        }
        for mode, (armed, shadow, online) in expectations.items():
            config = SimConfig(oracle=mode)
            assert config.oracle_armed is armed
            assert config.shadow_oracle is shadow
            assert config.online_monitor is online

    @pytest.mark.parametrize("legacy, mode", [(True, "shadow"), (False, "off")])
    def test_boolean_kwarg_warns_and_normalizes(self, legacy, mode):
        with pytest.deprecated_call():
            config = SimConfig(oracle=legacy)
        assert config.oracle == mode
        assert config == SimConfig(oracle=mode)
        assert config.fingerprint() == SimConfig(oracle=mode).fingerprint()

    @pytest.mark.parametrize("legacy, mode", [(True, "shadow"), (False, "off")])
    def test_boolean_payloads_migrate_silently(self, legacy, mode):
        data = SimConfig(oracle=mode).to_dict()
        data["oracle"] = legacy
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            migrated = SimConfig.from_dict(data)
        assert migrated.oracle == mode
        assert migrated.fingerprint() == SimConfig(oracle=mode).fingerprint()

    def test_resolve_oracle_mode(self):
        assert resolve_oracle_mode(None) is None
        assert resolve_oracle_mode("online") == "online"
        with pytest.deprecated_call():
            assert resolve_oracle_mode(True) == "shadow"
        with pytest.deprecated_call():
            assert resolve_oracle_mode(False) == "off"
        with pytest.raises(ConfigurationError):
            resolve_oracle_mode("bogus")

    def test_reading_mode_properties_does_not_warn(self):
        config = SimConfig(oracle="cross-check")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert config.oracle_armed


class TestValidation:
    def test_rejects_no_cores(self):
        with pytest.raises(ConfigurationError):
            SimConfig(num_cores=0)

    def test_rejects_zero_retries(self):
        with pytest.raises(ConfigurationError):
            SimConfig(retry_threshold=0)

    def test_rejects_empty_tables(self):
        with pytest.raises(ConfigurationError):
            SimConfig(alt_entries=0)


class TestReplaced:
    def test_override_applied(self):
        config = SimConfig().replaced(retry_threshold=7)
        assert config.retry_threshold == 7

    def test_other_fields_preserved(self):
        config = SimConfig.for_design("clear", num_cores=8).replaced(
            retry_threshold=7
        )
        assert config.num_cores == 8
        assert config.clear

    def test_replaced_keeps_design(self):
        config = SimConfig.for_design("lrw").replaced(num_cores=2)
        assert config.design == "lrw"

    def test_legacy_flag_override_warns_and_layers(self):
        base = SimConfig.for_design("powertm")
        with pytest.deprecated_call():
            config = base.replaced(clear=True)
        assert config.design == "clear+powertm"
        with pytest.deprecated_call():
            config = base.replaced(powertm=False)
        assert config.design == "baseline"

    def test_original_unchanged(self):
        original = SimConfig()
        original.replaced(num_cores=2)
        assert original.num_cores == 32


class TestDictMigration:
    def test_round_trip_serializes_design(self):
        config = SimConfig.for_design("lrw", num_cores=4)
        data = config.to_dict()
        assert data["design"] == "lrw"
        assert "powertm" not in data and "clear" not in data
        assert SimConfig.from_dict(data) == config

    @pytest.mark.parametrize(
        "powertm, clear, design",
        [
            (False, False, "baseline"),
            (True, False, "powertm"),
            (False, True, "clear"),
            (True, True, "clear+powertm"),
        ],
    )
    def test_legacy_boolean_payloads_migrate_silently(self, powertm, clear,
                                                      design):
        data = SimConfig.for_design(design, num_cores=4).to_dict()
        del data["design"]
        data["powertm"] = powertm
        data["clear"] = clear
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            migrated = SimConfig.from_dict(data)
        assert migrated.design == design
        assert migrated.fingerprint() == SimConfig.for_design(
            design, num_cores=4
        ).fingerprint()

    def test_conflicting_legacy_keys_rejected(self):
        data = SimConfig.for_design("baseline").to_dict()
        data["clear"] = True
        with pytest.raises(ConfigurationError):
            SimConfig.from_dict(data)

    def test_unknown_keys_rejected(self):
        data = SimConfig().to_dict()
        data["mystery"] = 1
        with pytest.raises(ConfigurationError):
            SimConfig.from_dict(data)
