"""Unit tests for SimConfig (Table 2 defaults and B/P/C/W mapping)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.config import HtmPolicy, SimConfig


class TestTable2Defaults:
    def test_core_count(self):
        assert SimConfig().num_cores == 32

    def test_cache_sizes(self):
        config = SimConfig()
        assert config.l1_size == 48 * 1024 and config.l1_assoc == 12
        assert config.l2_size == 512 * 1024 and config.l2_assoc == 8
        assert config.l3_size == 4 * 1024 * 1024 and config.l3_assoc == 16

    def test_latencies(self):
        config = SimConfig()
        assert (config.l1_latency, config.l2_latency) == (1, 10)
        assert (config.l3_latency, config.mem_latency) == (45, 80)

    def test_speculative_window(self):
        config = SimConfig()
        assert config.rob_entries == 352
        assert config.lq_entries == 128
        assert config.sq_entries == 72

    def test_clear_table_sizes(self):
        config = SimConfig()
        assert config.ert_entries == 16
        assert config.alt_entries == 32
        assert config.crt_entries == 64
        assert config.crt_assoc == 8


class TestConfigLetters:
    @pytest.mark.parametrize(
        "letter, powertm, clear",
        [("B", False, False), ("P", True, False), ("C", False, True), ("W", True, True)],
    )
    def test_letter_round_trip(self, letter, powertm, clear):
        config = SimConfig.for_letter(letter)
        assert config.powertm == powertm
        assert config.clear == clear
        assert config.config_letter == letter

    def test_unknown_letter_rejected(self):
        with pytest.raises(ConfigurationError):
            SimConfig.for_letter("X")

    def test_htm_policy(self):
        assert SimConfig(powertm=True).htm_policy is HtmPolicy.POWER_TM
        assert SimConfig().htm_policy is HtmPolicy.REQUESTER_WINS


class TestValidation:
    def test_rejects_no_cores(self):
        with pytest.raises(ConfigurationError):
            SimConfig(num_cores=0)

    def test_rejects_zero_retries(self):
        with pytest.raises(ConfigurationError):
            SimConfig(retry_threshold=0)

    def test_rejects_empty_tables(self):
        with pytest.raises(ConfigurationError):
            SimConfig(alt_entries=0)


class TestReplaced:
    def test_override_applied(self):
        config = SimConfig().replaced(retry_threshold=7)
        assert config.retry_threshold == 7

    def test_other_fields_preserved(self):
        config = SimConfig(num_cores=8, clear=True).replaced(retry_threshold=7)
        assert config.num_cores == 8
        assert config.clear

    def test_original_unchanged(self):
        original = SimConfig()
        original.replaced(num_cores=2)
        assert original.num_cores == 32
