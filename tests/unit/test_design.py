"""Unit tests for the pluggable HTM design protocol (repro.htm.design)."""

import inspect

import pytest

from repro.core.modes import ExecMode
from repro.htm.abort import AbortReason
from repro.htm.design import (
    DESIGN_REGISTRY,
    LEGACY_LETTER_DESIGNS,
    BigAtomicsDesign,
    HtmDesign,
    LrwDesign,
    design_name,
    register_design,
)
from repro.htm.rwset import CapacityExceeded, LimitedReadWriteSets
from repro.sim.config import SimConfig

#: Hooks of the design protocol; every argument after self must be
#: keyword-only so subclasses can override a subset without positional
#: drift.
PROTOCOL_HOOKS = (
    "build_fallback_lock",
    "make_controller",
    "build_rwsets",
    "wants_power_token",
    "select_retry_mode",
    "classify_capacity_abort",
    "conflict_nacker",
    "commit_cycles",
    "stat_annotations",
)


class TestRegistry:
    def test_all_six_designs_registered(self):
        assert set(DESIGN_REGISTRY) == {
            "baseline", "powertm", "clear", "clear+powertm",
            "lrw", "bigatomics",
        }

    def test_letters_map_to_registered_designs(self):
        for letter, name in LEGACY_LETTER_DESIGNS.items():
            assert DESIGN_REGISTRY[name].letter == letter

    def test_design_name_translates_letters_only(self):
        assert design_name("B") == "baseline"
        assert design_name("W") == "clear+powertm"
        assert design_name("lrw") == "lrw"
        assert design_name("nonesuch") == "nonesuch"

    def test_register_design_rejects_anonymous(self):
        class Nameless(HtmDesign):
            pass

        with pytest.raises(ValueError):
            register_design(Nameless)

    def test_register_design_adds_and_config_accepts(self):
        @register_design
        class Probe(HtmDesign):
            name = "probe-design"

        try:
            assert SimConfig(design="probe-design").design_class is Probe
        finally:
            del DESIGN_REGISTRY["probe-design"]

    def test_legacy_flags_match_registry(self):
        assert not DESIGN_REGISTRY["baseline"].powertm
        assert DESIGN_REGISTRY["powertm"].powertm
        assert DESIGN_REGISTRY["clear"].clear
        cw = DESIGN_REGISTRY["clear+powertm"]
        assert cw.powertm and cw.clear


class TestProtocolSignatures:
    @pytest.mark.parametrize("cls", sorted(
        DESIGN_REGISTRY.values(), key=lambda c: c.name
    ), ids=lambda c: c.name)
    @pytest.mark.parametrize("hook", PROTOCOL_HOOKS)
    def test_hook_arguments_keyword_only(self, cls, hook):
        signature = inspect.signature(getattr(cls, hook))
        parameters = list(signature.parameters.values())[1:]  # drop self
        for parameter in parameters:
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                "{}.{} parameter {!r} must be keyword-only".format(
                    cls.name, hook, parameter.name
                )
            )

    def test_exported_from_repro_and_htm(self):
        import repro
        import repro.htm

        assert repro.HtmDesign is HtmDesign
        assert repro.DESIGN_REGISTRY is DESIGN_REGISTRY
        assert repro.register_design is register_design
        assert repro.htm.HtmDesign is HtmDesign
        assert repro.htm.DESIGN_REGISTRY is DESIGN_REGISTRY

    def test_deprecated_runner_trio_no_longer_reexported(self):
        import repro

        for stale in ("run_workload", "run_seeds", "sweep_retry_threshold",
                      "trimmed_mean"):
            assert stale not in repro.__all__
            assert not hasattr(repro, stale)


class TestDefaultPolicy:
    def make(self, name="baseline", **overrides):
        config = SimConfig.for_design(name, num_cores=4, **overrides)
        return DESIGN_REGISTRY[name](config)

    def test_baseline_never_wants_power(self):
        design = self.make("baseline")
        assert not design.wants_power_token(counting_retries=0)
        assert not design.wants_power_token(counting_retries=5)

    def test_powertm_wants_power_on_retry(self):
        design = self.make("powertm")
        assert not design.wants_power_token(counting_retries=0)
        assert design.wants_power_token(counting_retries=1)

    def test_conflict_nacker_power_rule(self):
        design = self.make("powertm")
        assert design.conflict_nacker(
            power_core=3, requester_unstoppable=False
        ) == 3
        assert design.conflict_nacker(
            power_core=3, requester_unstoppable=True
        ) is None

    def test_capacity_classification(self):
        design = self.make("baseline")
        exc = CapacityExceeded("read", 7)
        assert design.classify_capacity_abort(
            executor=None, exc=exc
        ) is AbortReason.CAPACITY

    def test_early_fallback_reasons_default_empty(self):
        for name in ("baseline", "powertm", "clear", "clear+powertm",
                     "bigatomics"):
            assert not DESIGN_REGISTRY[name].early_fallback_reasons

    def test_lrw_early_fallback_is_capacity(self):
        assert LrwDesign.early_fallback_reasons == frozenset(
            {AbortReason.CAPACITY}
        )


class _FakeExecutor:
    def __init__(self, config, counting_retries=0, mode=None, rwsets=None):
        self.config = config
        self.counting_retries = counting_retries
        self.mode = mode
        self.rwsets = rwsets


class TestRetryModeSelection:
    def test_default_respects_threshold(self):
        config = SimConfig.for_design("baseline", num_cores=4,
                                      retry_threshold=3)
        design = DESIGN_REGISTRY["baseline"](config)
        below = _FakeExecutor(config, counting_retries=2)
        at = _FakeExecutor(config, counting_retries=3)
        assert design.select_retry_mode(
            executor=below, reason=AbortReason.MEMORY_CONFLICT,
            proposed=ExecMode.SPECULATIVE,
        ) is ExecMode.SPECULATIVE
        assert design.select_retry_mode(
            executor=at, reason=AbortReason.MEMORY_CONFLICT,
            proposed=ExecMode.SPECULATIVE,
        ) is ExecMode.FALLBACK

    def test_lrw_capacity_goes_straight_to_fallback(self):
        config = SimConfig.for_design("lrw", num_cores=4, retry_threshold=5)
        design = LrwDesign(config)
        fresh = _FakeExecutor(config, counting_retries=0)
        assert design.select_retry_mode(
            executor=fresh, reason=AbortReason.CAPACITY,
            proposed=ExecMode.SPECULATIVE,
        ) is ExecMode.FALLBACK
        assert design.select_retry_mode(
            executor=fresh, reason=AbortReason.MEMORY_CONFLICT,
            proposed=ExecMode.SPECULATIVE,
        ) is ExecMode.SPECULATIVE


class TestBigAtomicsCommit:
    def make(self, **overrides):
        config = SimConfig.for_design("bigatomics", num_cores=4, **overrides)
        return config, BigAtomicsDesign(config)

    class _Sets:
        def __init__(self, lines):
            self._lines = set(lines)

        def touched_lines(self):
            return set(self._lines)

    def test_small_speculative_footprint_commits_multiword(self):
        config, design = self.make(bigatomics_lines=4,
                                   bigatomics_commit_cycles=6)
        executor = _FakeExecutor(config, mode=ExecMode.SPECULATIVE,
                                 rwsets=self._Sets({1, 2, 3}))
        assert design.commit_cycles(executor=executor) == 6
        assert design.multiword_commits == 1
        assert design.stat_annotations(machine=None) == {
            "multiword_commits": 1
        }

    def test_large_footprint_pays_full_commit(self):
        config, design = self.make(bigatomics_lines=2)
        executor = _FakeExecutor(config, mode=ExecMode.SPECULATIVE,
                                 rwsets=self._Sets({1, 2, 3}))
        assert design.commit_cycles(executor=executor) \
            == config.tx_commit_cycles
        assert design.multiword_commits == 0
        assert design.stat_annotations(machine=None) == {}

    def test_non_speculative_modes_pay_full_commit(self):
        config, design = self.make(bigatomics_lines=8)
        for mode in (ExecMode.NS_CL, ExecMode.S_CL, ExecMode.FALLBACK):
            executor = _FakeExecutor(config, mode=mode,
                                     rwsets=self._Sets({1}))
            assert design.commit_cycles(executor=executor) \
                == config.tx_commit_cycles
        assert design.multiword_commits == 0


class TestLimitedReadWriteSets:
    def make(self, reads=2, writes=2):
        return LimitedReadWriteSets(
            max_read_lines=reads, max_write_lines=writes,
            l1_sets=None, l2_sets=None,
        )

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            self.make(reads=0)
        with pytest.raises(ValueError):
            self.make(writes=0)

    def test_read_budget_enforced(self):
        sets = self.make(reads=2)
        sets.record_read(1)
        sets.record_read(2)
        sets.record_read(1)  # already tracked: free
        with pytest.raises(CapacityExceeded) as excinfo:
            sets.record_read(3)
        assert excinfo.value.which == "read"
        assert excinfo.value.line == 3

    def test_write_budget_enforced(self):
        sets = self.make(writes=1)
        sets.record_write(1)
        sets.record_write(1)
        with pytest.raises(CapacityExceeded) as excinfo:
            sets.record_write(2)
        assert excinfo.value.which == "write"

    def test_rejected_line_never_tracked(self):
        sets = self.make(reads=1)
        sets.record_read(1)
        with pytest.raises(CapacityExceeded):
            sets.record_read(2)
        assert 2 not in sets.read_set
        assert sets.counters_consistent()

    def test_budgets_independent(self):
        sets = self.make(reads=1, writes=2)
        sets.record_read(1)
        sets.record_write(2)
        sets.record_write(3)
        with pytest.raises(CapacityExceeded):
            sets.record_read(4)
