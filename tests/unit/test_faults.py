"""Unit tests for the chaos layer's FaultPlan and its config knobs."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.htm.abort import (
    INJECTED_REASONS,
    NON_COUNTING_REASONS,
    NON_MEMORY_REASONS,
    AbortCategory,
    AbortReason,
    categorize_abort,
)
from repro.sim.config import SimConfig
from repro.sim.faults import INJECT_WINDOW_OPS, FaultPlan


def chaos_config(**overrides):
    fields = dict(
        fault_spurious_rate=0.2,
        fault_capacity_rate=0.1,
        fault_jitter_cycles=6,
        fault_wakeup_delay_cycles=9,
    )
    fields.update(overrides)
    return SimConfig.for_design("baseline", num_cores=4, **fields)


class TestConfigKnobs:
    def test_defaults_disable_chaos(self):
        config = SimConfig.for_design("baseline", num_cores=4)
        assert not config.chaos_enabled
        assert FaultPlan.from_config(config, DeterministicRng(1), 4) is None

    def test_any_knob_enables_chaos(self):
        for field in ("fault_spurious_rate", "fault_capacity_rate"):
            assert SimConfig.for_design("baseline", num_cores=4, **{field: 0.1}
            ).chaos_enabled
        for field in ("fault_jitter_cycles", "fault_wakeup_delay_cycles"):
            assert SimConfig.for_design("baseline", num_cores=4, **{field: 3}
            ).chaos_enabled

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            SimConfig.for_design("baseline", num_cores=4, fault_spurious_rate=-0.1)
        with pytest.raises(ConfigurationError):
            SimConfig.for_design("baseline", num_cores=4, fault_spurious_rate=1.5)
        with pytest.raises(ConfigurationError):
            SimConfig.for_design("baseline", num_cores=4,
                fault_spurious_rate=0.7, fault_capacity_rate=0.7,
            )
        with pytest.raises(ConfigurationError):
            SimConfig.for_design("baseline", num_cores=4, fault_jitter_cycles=-1)

    def test_chaos_knobs_change_fingerprint(self):
        base = SimConfig.for_design("baseline", num_cores=4)
        assert chaos_config().fingerprint() != base.fingerprint()

    def test_config_roundtrip_keeps_chaos_fields(self):
        config = chaos_config()
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_old_config_dicts_default_to_no_chaos(self):
        # Cached results written before the chaos fields existed must
        # still deserialize (schema back-compat).
        data = SimConfig.for_design("baseline", num_cores=4).to_dict()
        for field in (
            "fault_spurious_rate", "fault_capacity_rate",
            "fault_jitter_cycles", "fault_wakeup_delay_cycles",
            "oracle", "oracle_validate_interval", "watchdog_cycles",
        ):
            data.pop(field, None)
        assert not SimConfig.from_dict(data).chaos_enabled


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        config = chaos_config()
        plans = [
            FaultPlan(config, DeterministicRng(7), 4) for _ in range(2)
        ]
        for core in range(4):
            draws_a = [plans[0].plan_attempt(core) for _ in range(50)]
            draws_b = [plans[1].plan_attempt(core) for _ in range(50)]
            assert draws_a == draws_b
        assert [plans[0].jitter(1) for _ in range(50)] == [
            plans[1].jitter(1) for _ in range(50)
        ]
        assert [plans[0].wakeup_delay(0) for _ in range(50)] == [
            plans[1].wakeup_delay(0) for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        config = chaos_config(fault_spurious_rate=0.5)
        plan_a = FaultPlan(config, DeterministicRng(1), 2)
        plan_b = FaultPlan(config, DeterministicRng(2), 2)
        draws_a = [plan_a.plan_attempt(0) for _ in range(100)]
        draws_b = [plan_b.plan_attempt(0) for _ in range(100)]
        assert draws_a != draws_b

    def test_plan_attempt_respects_rates(self):
        config = chaos_config(fault_spurious_rate=0.0, fault_capacity_rate=0.0)
        plan = FaultPlan(config, DeterministicRng(3), 1)
        assert all(plan.plan_attempt(0) is None for _ in range(200))

        config = chaos_config(fault_spurious_rate=1.0, fault_capacity_rate=0.0)
        plan = FaultPlan(config, DeterministicRng(3), 1)
        for _ in range(50):
            reason, op_index = plan.plan_attempt(0)
            assert reason is AbortReason.INJECTED_SPURIOUS
            assert 1 <= op_index <= INJECT_WINDOW_OPS

    def test_mixed_rates_produce_both_reasons(self):
        config = chaos_config(fault_spurious_rate=0.4, fault_capacity_rate=0.4)
        plan = FaultPlan(config, DeterministicRng(5), 1)
        reasons = set()
        for _ in range(300):
            planned = plan.plan_attempt(0)
            if planned is not None:
                reasons.add(planned[0])
        assert reasons == {
            AbortReason.INJECTED_SPURIOUS, AbortReason.INJECTED_CAPACITY,
        }

    def test_zero_cycle_knobs_draw_nothing(self):
        config = chaos_config(
            fault_jitter_cycles=0, fault_wakeup_delay_cycles=0
        )
        plan = FaultPlan(config, DeterministicRng(9), 2)
        assert all(plan.jitter(0) == 0 for _ in range(20))
        assert all(plan.wakeup_delay(1) == 0 for _ in range(20))
        assert plan.jitter_events == 0
        assert plan.wakeup_delays == 0

    def test_log_and_summary(self):
        config = chaos_config()
        plan = FaultPlan(config, DeterministicRng(11), 2)
        plan.note_injected(1, AbortReason.INJECTED_SPURIOUS, 3)
        assert plan.injected_abort_count() == 1
        assert plan.log == [("injected_spurious", 1, 3)]
        summary = plan.summary()
        assert summary["injected_aborts"] == [("injected_spurious", 1, 3)]


class TestAbortTaxonomy:
    def test_injected_reasons_categorize_as_injected(self):
        for reason in INJECTED_REASONS:
            assert categorize_abort(reason) is AbortCategory.INJECTED

    def test_injected_reasons_count_toward_retry_limit(self):
        # Otherwise chaos could starve the fallback completion guarantee.
        assert not (INJECTED_REASONS & NON_COUNTING_REASONS)

    def test_injected_reasons_are_non_memory(self):
        # S-CL treats them like interrupts: stop retrying CL (§4.4.2).
        assert INJECTED_REASONS <= NON_MEMORY_REASONS
