"""Unit tests for the AR operation vocabulary."""

import pytest

from repro.core.indirection import TaintedValue
from repro.sim.program import AbortOp, Branch, Compute, Invoke, Load, Store, Think


class TestLoad:
    def test_plain_address(self):
        op = Load(100)
        assert op.word_addr == 100
        assert not op.addr_tainted

    def test_tainted_address(self):
        op = Load(TaintedValue(100))
        assert op.word_addr == 100
        assert op.addr_tainted

    def test_untainted_wrapper(self):
        assert not Load(TaintedValue(100, tainted=False)).addr_tainted


class TestStore:
    def test_plain(self):
        op = Store(100, 7)
        assert op.word_addr == 100
        assert op.store_value == 7
        assert not op.addr_tainted

    def test_tainted_address(self):
        assert Store(TaintedValue(100), 7).addr_tainted

    def test_tainted_value_does_not_taint(self):
        # §3 / Listing 1: storing loaded *data* to a fixed address keeps
        # the AR immutable — only address taint matters.
        op = Store(100, TaintedValue(7))
        assert not op.addr_tainted
        assert op.store_value == 7


class TestComputeAndBranch:
    def test_compute_defaults(self):
        op = Compute(5)
        assert op.cycles == 5
        assert op.ops == 5

    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_branch_taint(self):
        assert Branch(TaintedValue(1)).condition_tainted
        assert not Branch(True).condition_tainted
        assert not Branch(TaintedValue(1, tainted=False)).condition_tainted


class TestThreadActions:
    def test_invoke_holds_region_and_factory(self):
        factory = lambda: iter(())
        invoke = Invoke(("wl", "r"), factory)
        assert invoke.region_id == ("wl", "r")
        assert invoke.body_factory is factory

    def test_think_rejects_negative(self):
        with pytest.raises(ValueError):
            Think(-5)

    def test_abort_op_repr(self):
        assert "AbortOp" in repr(AbortOp())
