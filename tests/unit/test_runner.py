"""Unit tests for run orchestration (trimmed mean, aggregation, sweep)."""

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import (
    AggregateResult,
    run_seeds,
    run_workload,
    sweep_retry_threshold,
    trimmed_mean,
)
from repro.workloads import make_workload


class TestTrimmedMean:
    def test_plain_mean_when_few_values_warns(self):
        # Too few values to trim: falls back to a plain mean, loudly.
        with pytest.warns(RuntimeWarning, match="un-trimmed"):
            assert trimmed_mean([2.0, 4.0], trim=3) == 3.0

    def test_removes_three_outliers(self):
        # 10 values as in the paper: drop 2 high + 1 low.
        values = [1000.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 900.0, 0.0]
        assert trimmed_mean(values, trim=3) == 5.0

    def test_paper_settings_pin_drop_2_high_1_low(self):
        # Regression pin at the paper's exact shape (10 seeds, trim=3):
        # sorted 0..9 must drop {8, 9} high and {0} low -> mean(1..7).
        values = [9.0, 0.0, 3.0, 7.0, 1.0, 5.0, 8.0, 2.0, 6.0, 4.0]
        assert trimmed_mean(values, trim=3) == 4.0

    def test_exact_ten_values_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trimmed_mean([float(v) for v in range(10)], trim=3)

    def test_boundary_equal_counts_warn(self):
        # len(values) == trim is the silent un-trim the paper settings
        # never hit; it must be flagged.
        with pytest.warns(RuntimeWarning, match="3 value"):
            assert trimmed_mean([1.0, 2.0, 3.0], trim=3) == 2.0

    def test_trim_zero_is_mean(self):
        assert trimmed_mean([1.0, 2.0, 3.0], trim=0) == 2.0

    def test_empty_is_zero(self):
        assert trimmed_mean([], trim=3) == 0.0

    def test_single_value(self):
        with pytest.warns(RuntimeWarning):
            assert trimmed_mean([7.0], trim=3) == 7.0


def quick_factory(name="mwobject", ops=6):
    return lambda: make_workload(name, ops_per_thread=ops)


def quick_config(**overrides):
    return SimConfig.for_design("baseline", num_cores=4, **overrides)


class TestRunWorkload:
    def test_returns_populated_result(self):
        result = run_workload(quick_factory(), quick_config(), seed=1)
        assert result.cycles > 0
        assert result.stats.total_commits == 4 * 6
        assert result.energy.total > 0
        assert result.workload_name == "mwobject"

    def test_deterministic_for_same_seed(self):
        first = run_workload(quick_factory(), quick_config(), seed=5)
        second = run_workload(quick_factory(), quick_config(), seed=5)
        assert first.cycles == second.cycles
        assert first.stats.total_aborts == second.stats.total_aborts

    def test_different_seeds_differ(self):
        first = run_workload(quick_factory(), quick_config(), seed=1)
        second = run_workload(quick_factory(), quick_config(), seed=2)
        # Not guaranteed in principle, but overwhelmingly likely here.
        assert (first.cycles, first.stats.total_aborts) != (
            second.cycles,
            second.stats.total_aborts,
        )


class TestRunSeeds:
    def test_aggregates_over_seeds(self):
        aggregate = run_seeds(quick_factory(), quick_config(), seeds=(1, 2, 3), trim=0)
        assert len(aggregate.runs) == 3
        assert aggregate.cycles > 0
        individual = sorted(run.cycles for run in aggregate.runs)
        assert individual[0] <= aggregate.cycles <= individual[-1]

    def test_mode_shares_cover_all_modes(self):
        aggregate = run_seeds(quick_factory(), quick_config(), seeds=(1,), trim=0)
        shares = aggregate.commit_mode_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            AggregateResult("x", quick_config(), [])


class TestKeywordOnlyParams:
    def test_run_workload_rejects_positional_seed(self):
        with pytest.raises(TypeError):
            run_workload(quick_factory(), quick_config(), 1)

    def test_run_seeds_rejects_positional_seeds(self):
        with pytest.raises(TypeError):
            run_seeds(quick_factory(), quick_config(), (1, 2))


class TestRetrySweep:
    def test_sweep_returns_best(self):
        best, threshold = sweep_retry_threshold(
            quick_factory(ops=4), quick_config(), thresholds=(1, 4), seeds=(1,), trim=0
        )
        assert threshold in (1, 4)
        alternatives = [
            run_seeds(
                quick_factory(ops=4),
                quick_config(retry_threshold=candidate),
                seeds=(1,),
                trim=0,
            ).cycles
            for candidate in (1, 4)
        ]
        assert best.cycles == min(alternatives)

    def test_named_workload_sweeps_through_engine(self):
        # The engine path (workload given by name) must agree with the
        # legacy factory path cell for cell.
        by_factory = sweep_retry_threshold(
            quick_factory(ops=4), quick_config(), thresholds=(1, 4),
            seeds=(1,), trim=0,
        )
        by_name = sweep_retry_threshold(
            "mwobject", quick_config(), thresholds=(1, 4), seeds=(1,),
            trim=0, ops_per_thread=4,
        )
        assert by_factory[1] == by_name[1]
        assert by_factory[0].cycles == by_name[0].cycles
        assert by_factory[0].to_dict() == by_name[0].to_dict()
